//! Offline no-op shim for `serde_derive`.
//!
//! The workspace only *annotates* plain-data types with
//! `#[derive(Serialize, Deserialize)]`; it never instantiates a serde
//! serializer (all JSON/CSV output is hand-rolled in `triad-comm`). These
//! derives therefore expand to nothing, keeping the annotations compiling
//! without a serde runtime.

// Vendored shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]
#![deny(missing_docs)]

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
