//! Offline shim for the `crossbeam` crate.
//!
//! The workspace uses exactly one piece of crossbeam: unbounded MPSC
//! channels for the threaded coordinator transport. This shim maps that
//! surface onto `std::sync::mpsc`, which has identical semantics for the
//! single-consumer pattern used here.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Multi-producer channels (the `crossbeam-channel` subset in use).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    pub use std::sync::mpsc::{RecvError, SendError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives, failing if all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns immediately with a value if one is queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            handle.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
