//! Offline shim for the `crossbeam` crate.
//!
//! The workspace uses two pieces of crossbeam: unbounded MPSC channels
//! for the threaded coordinator transport, and scoped threads for the
//! deterministic parallel execution engine (`triad-comm::pool`). This
//! shim maps the channel surface onto `std::sync::mpsc` (identical
//! semantics for the single-consumer pattern used here) and the scoped
//! thread surface onto `std::thread::scope`.

// Vendored shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Scoped threads (the `crossbeam-utils` subset in use).
///
/// One documented deviation from upstream: [`thread::scope`] never
/// returns `Err` — a panicking child propagates its panic when the scope
/// joins (the `std::thread::scope` behaviour) instead of being collected
/// into the result. The workspace treats a worker panic as fatal either
/// way.
pub mod thread {
    use std::thread as stdthread;

    /// The result type of [`scope`], mirroring upstream's signature.
    pub type Result<T> = stdthread::Result<T>;

    /// A handle to a thread spawned inside a [`scope`].
    pub type ScopedJoinHandle<'scope, T> = stdthread::ScopedJoinHandle<'scope, T>;

    /// A scope in which borrowed threads can be spawned (upstream's
    /// `crossbeam::thread::Scope`, backed by `std::thread::Scope`).
    #[derive(Debug, Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread that may borrow from the enclosing scope. The
        /// closure receives the scope again so workers can spawn
        /// siblings, as in upstream crossbeam.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope handle; every thread spawned through the
    /// handle is joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (see the module docs): a child panic
    /// propagates as a panic at join time instead.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(stdthread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let total = super::scope(|s| {
                let handles: Vec<_> = data.iter().map(|x| s.spawn(move |_| *x * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
            })
            .unwrap();
            assert_eq!(total, 100);
        }

        #[test]
        fn workers_can_spawn_siblings() {
            let n = super::scope(|s| {
                s.spawn(|s2| s2.spawn(|_| 7u32).join().unwrap())
                    .join()
                    .unwrap()
            })
            .unwrap();
            assert_eq!(n, 7);
        }
    }
}

/// Multi-producer channels (the `crossbeam-channel` subset in use).
pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side has hung up.
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends `value`, failing only if the receiver was dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a value arrives, failing if all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Returns immediately with a value if one is queued.
        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a value arrives or `timeout` elapses,
        /// distinguishing deadline expiry from sender hang-up.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_across_threads() {
            let (tx, rx) = unbounded::<u32>();
            let handle = std::thread::spawn(move || {
                for i in 0..10 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<u32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            handle.join().unwrap();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_fails_after_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
