//! Offline shim for the `rand_chacha` crate: ChaCha-keystream RNGs.
//!
//! This is a genuine ChaCha implementation (djb variant: 64-bit block
//! counter, zero nonce) at 8, 12, and 20 rounds, seeded through
//! [`rand::SeedableRng`]. It is deterministic and statistically strong,
//! but the word order of its keystream is **not** guaranteed to be
//! bit-identical to upstream `rand_chacha`'s buffered stream; this
//! workspace only relies on determinism, not on upstream-exact values.

// Vendored shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use rand::{RngCore, SeedableRng};

/// A ChaCha keystream generator with `R` double-round pairs (`R` = the
/// conventional round count: 8, 12, or 20).
#[derive(Clone, Debug)]
pub struct ChaChaRng<const R: usize> {
    key: [u32; 8],
    counter: u64,
    block: [u32; 16],
    next_word: usize,
}

/// 8-round ChaCha RNG.
pub type ChaCha8Rng = ChaChaRng<8>;
/// 12-round ChaCha RNG.
pub type ChaCha12Rng = ChaChaRng<12>;
/// 20-round ChaCha RNG.
pub type ChaCha20Rng = ChaChaRng<20>;

/// "expand 32-byte k" — the standard ChaCha constants.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl<const R: usize> ChaChaRng<R> {
    /// Computes the keystream block for the current counter.
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14..16] = zero nonce.
        let input = state;
        for _ in 0..R / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, inp) in state.iter_mut().zip(input.iter()) {
            *word = word.wrapping_add(*inp);
        }
        self.block = state;
        self.next_word = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.next_word == 16 {
            self.refill();
        }
        let w = self.block[self.next_word];
        self.next_word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // `next_word = 16` forces a refill on first use.
        ChaChaRng {
            key,
            counter: 0,
            block: [0; 16],
            next_word: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn rounds_parameter_changes_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha12Rng::seed_from_u64(5);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha12Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64 000 bits, expect ~32 000 ones.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha20Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
