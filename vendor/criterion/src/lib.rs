//! Offline shim for `criterion`: a minimal wall-clock benchmark harness.
//!
//! Implements the API subset the workspace's bench targets use
//! ([`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`]/[`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`]/
//! [`criterion_main!`]). Each benchmark runs `sample_size` timed samples
//! after one warm-up call and prints the mean time per iteration — no
//! statistics, plots, or saved baselines. Positional CLI arguments filter
//! benchmarks by substring, as with the real harness.

// Vendored shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <substr>` filters by id substring; flags (e.g.
        // `--bench`, inserted by cargo itself) are ignored.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion { filters }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }
}

/// A named benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            repr: format!("{function}/{parameter}"),
        }
    }

    /// An id naming only the parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.repr)
    }
}

/// A group of benchmarks sharing a name prefix and sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.selected(&full) {
            let mut b = Bencher {
                samples: self.sample_size,
                total_nanos: 0,
                iters: 0,
            };
            f(&mut b);
            b.report(&full);
        }
        self
    }

    /// Runs a benchmark that borrows a fixed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API parity; nothing to flush).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    total_nanos: u128,
    iters: u64,
}

impl Bencher {
    /// Times `samples` calls of `f` (after one untimed warm-up call).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.total_nanos += start.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    fn report(&self, id: &str) {
        if self.iters == 0 {
            println!("{id}: no iterations recorded");
        } else {
            let mean = self.total_nanos / u128::from(self.iters);
            println!("{id}: mean {mean} ns/iter ({} samples)", self.iters);
        }
    }
}

/// Bundles benchmark functions into one runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` invoking each [`criterion_group!`] runner.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_with_input_runs_closure() {
        let mut c = Criterion { filters: vec![] };
        let mut ran = 0u32;
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("f", 1), &5u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn filter_skips_unmatched() {
        let c = Criterion {
            filters: vec!["other".into()],
        };
        assert!(!c.selected("g/f"));
        assert!(c.selected("g/other/1"));
    }
}
