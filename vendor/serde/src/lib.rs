//! Offline shim for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* (marker traits plus
//! no-op derive macros) so that derive annotations on plain-data types
//! compile. No serializer exists; the workspace hand-rolls all of its
//! JSON/CSV output (see `docs/OBSERVABILITY.md`).

// Vendored shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// Marker stand-in for `serde::Serialize`; never used as a bound here.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`; never used as a bound here.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
