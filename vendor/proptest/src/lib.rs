//! Offline shim for `proptest`: a deterministic property-test runner.
//!
//! Supports the subset this workspace uses — the [`proptest!`] macro,
//! range / tuple / [`collection::vec`] / [`arbitrary::any`] strategies,
//! [`strategy::Strategy::prop_map`], `prop_assert!`/`prop_assert_eq!`,
//! and [`test_runner::ProptestConfig::with_cases`]. Inputs are generated
//! from a rng seeded by the test name and case index, so every run (and
//! every failure) is reproducible. There is no shrinking: a failing case
//! panics immediately with the normal assertion message.

// Vendored shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Asserts a condition inside a [`proptest!`] body (no shrinking; maps
/// directly onto `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Equality assertion inside a [`proptest!`] body (maps onto `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Inequality assertion inside a [`proptest!`] body (maps onto `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` against `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases as u64 {
                    let mut __rng =
                        $crate::test_runner::TestRng::deterministic(stringify!($name), __case);
                    $( let $arg =
                        $crate::strategy::Strategy::new_value(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}
