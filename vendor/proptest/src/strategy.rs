//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use core::ops::Range;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(width) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_respects_bounds() {
        let mut rng = TestRng::deterministic("range", 0);
        for _ in 0..1000 {
            let v = (10u32..20).new_value(&mut rng);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic("map", 0);
        let v = (0u64..5).prop_map(|x| x * 2).new_value(&mut rng);
        assert!(v % 2 == 0 && v < 10);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = TestRng::deterministic("tuple", 0);
        let (a, b) = (0u32..4, 4u32..8).new_value(&mut rng);
        assert!(a < 4 && (4..8).contains(&b));
    }
}
