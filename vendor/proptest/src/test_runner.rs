//! Runner configuration and the deterministic generation rng.

/// Configuration for a `proptest!` block. Only `cases` is honoured.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 generator seeded from `(test name, case index)` so every
/// case is reproducible without any persisted state.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The rng for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let mut rng = TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        };
        rng.next_u64(); // decorrelate nearby case indices
        rng
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, width)` (rejection sampling; `width > 0`).
    pub fn below(&mut self, width: u64) -> u64 {
        debug_assert!(width > 0);
        let zone = u64::MAX - (u64::MAX % width + 1) % width;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % width;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_case_reproduce() {
        let mut a = TestRng::deterministic("t", 3);
        let mut b = TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn cases_decorrelate() {
        let mut a = TestRng::deterministic("t", 0);
        let mut b = TestRng::deterministic("t", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
