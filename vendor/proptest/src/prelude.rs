//! The glob-import surface (`use proptest::prelude::*`).

pub use crate::arbitrary::any;
pub use crate::strategy::Strategy;
pub use crate::test_runner::ProptestConfig;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Namespaced strategy modules, mirroring upstream's `prelude::prop`.
pub mod prop {
    pub use crate::collection;
}
