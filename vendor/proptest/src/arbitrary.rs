//! `any::<T>()` — whole-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one uniform value of the type.
    fn generate(rng: &mut TestRng) -> Self;
}

/// The whole-domain strategy for `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::generate(rng)
    }
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn generate(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn generate(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_takes_both_values() {
        let mut seen = [false, false];
        for case in 0..64 {
            let mut rng = TestRng::deterministic("bool", case);
            seen[usize::from(any::<bool>().new_value(&mut rng))] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
