//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use core::ops::Range;

/// A length distribution for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            lo: r.start,
            hi: r.end.max(r.start + 1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// A strategy producing `Vec`s whose elements come from `element` and
/// whose lengths are uniform over `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_is_within_size_range() {
        let strat = vec(0u32..10, 2..7);
        for case in 0..200 {
            let mut rng = TestRng::deterministic("len", case);
            let v = strat.new_value(&mut rng);
            assert!((2..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn exact_size_supported() {
        let strat = vec(0u64..3, 5usize);
        let mut rng = TestRng::deterministic("exact", 0);
        assert_eq!(strat.new_value(&mut rng).len(), 5);
    }
}
