//! Offline shim for the `rand` crate.
//!
//! Implements exactly the trait surface this workspace uses — [`RngCore`],
//! [`SeedableRng`], [`Rng`] (`gen_range`/`gen_bool`) and
//! [`seq::SliceRandom::shuffle`] — with the same semantics as upstream
//! `rand 0.8` for that subset. See `vendor/README.md` for scope and caveats.

// Vendored shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]
#![forbid(unsafe_code)]
#![deny(missing_docs)]

use core::ops::Range;

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with uniformly random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it to a full seed with
    /// the SplitMix64 sequence (the same expansion rule upstream uses, so
    /// seeds remain stable if the real crate is restored).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open; panics if empty).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A Bernoulli(`p`) coin flip (panics unless `0 ≤ p ≤ 1`).
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A 53-bit uniform double in `[0, 1)` from 64 raw bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-sampled uniform draw in `[0, width)` — no modulo bias.
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    // Largest multiple of `width` representable in u64 arithmetic; reject
    // draws at or above it so every residue is equally likely.
    let zone = u64::MAX - (u64::MAX % width + 1) % width;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % width;
        }
    }
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, width) as $t
            }
        }
    )*};
}

int_range_impl!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let x = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard the half-open contract against floating-point rounding.
        if x < self.start || x >= self.end {
            self.start
        } else {
            x
        }
    }
}

/// Random operations on slices.
pub mod seq {
    use super::RngCore;

    /// Shuffling (the only slice operation this workspace uses).
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = Counter(9);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(v >= f64::MIN_POSITIVE && v < 1.0);
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = Counter(11);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count() as f64;
        assert!((hits / 20_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "100 elements should not shuffle to identity");
    }
}
