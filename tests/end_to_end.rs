//! Cross-crate end-to-end tests: generators → partitions → protocols.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::{dense_core, far_graph, gnp_with_average_degree};
use triad::graph::partition::{by_vertex, random_disjoint, with_duplication};
use triad::graph::{distance, Graph};
use triad::protocols::baseline::run_send_everything;
use triad::protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

#[test]
fn full_pipeline_on_planted_far_graph() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = far_graph(500, 8.0, 0.2, &mut rng).unwrap();
    assert!(distance::is_certifiably_far(&g, 0.2));
    let tuning = Tuning::practical(0.2);
    for (pi, parts) in [
        random_disjoint(&g, 5, &mut rng),
        with_duplication(&g, 5, 0.3, &mut rng),
        by_vertex(&g, 5),
    ]
    .into_iter()
    .enumerate()
    {
        assert!(parts.covers(&g));
        let run = UnrestrictedTester::new(tuning)
            .run(&g, &parts, 100 + pi as u64)
            .unwrap();
        let t = run
            .outcome
            .triangle()
            .unwrap_or_else(|| panic!("partition #{pi} failed to expose a triangle"));
        assert!(t.exists_in(&g));
    }
}

#[test]
fn all_testers_agree_with_exact_baseline_on_far_inputs() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = far_graph(400, 10.0, 0.2, &mut rng).unwrap();
    let parts = random_disjoint(&g, 4, &mut rng);
    let exact = run_send_everything(&g, &parts, 0).unwrap();
    assert!(exact.outcome.found_triangle());
    let tuning = Tuning::practical(0.2);
    // Majority vote over seeds: each randomized tester should find the
    // triangle most of the time.
    for kind in [
        SimProtocolKind::Low { avg_degree: 10.0 },
        SimProtocolKind::High { avg_degree: 10.0 },
        SimProtocolKind::Oblivious,
    ] {
        let tester = SimultaneousTester::new(tuning, kind);
        let hits = (0..10)
            .filter(|s| tester.run(&g, &parts, *s).unwrap().outcome.found_triangle())
            .count();
        assert!(
            hits >= 6,
            "{kind:?} found the triangle only {hits}/10 times"
        );
    }
}

#[test]
fn dense_core_is_cracked_by_every_tester() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let dc = dense_core(600, 5, &mut rng).unwrap();
    let parts = random_disjoint(dc.graph(), 4, &mut rng);
    let tuning = Tuning::practical(0.2);
    let unrestricted = UnrestrictedTester::new(tuning)
        .run(dc.graph(), &parts, 5)
        .unwrap();
    assert!(
        unrestricted.outcome.found_triangle(),
        "bucketed search must find hubs"
    );
    let low = SimultaneousTester::new(tuning, SimProtocolKind::Oblivious);
    let hits = (0..10).filter(|s| {
        low.run(dc.graph(), &parts, *s)
            .unwrap()
            .outcome
            .found_triangle()
    });
    assert!(hits.count() >= 6);
}

#[test]
fn sparse_random_graphs_with_no_triangles_always_accept() {
    // G(n, d/n) with d = 1.2 is triangle-free with decent probability;
    // condition on that and check no tester ever "finds" anything.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let tuning = Tuning::practical(0.2);
    let mut checked = 0;
    for _ in 0..20 {
        let g = gnp_with_average_degree(300, 1.2, &mut rng);
        if !distance::is_triangle_free(&g) {
            continue;
        }
        checked += 1;
        let parts = random_disjoint(&g, 3, &mut rng);
        assert!(UnrestrictedTester::new(tuning)
            .run(&g, &parts, 9)
            .unwrap()
            .outcome
            .accepts());
        for kind in [
            SimProtocolKind::Low { avg_degree: 1.2 },
            SimProtocolKind::High { avg_degree: 1.2 },
            SimProtocolKind::Oblivious,
        ] {
            let run = SimultaneousTester::new(tuning, kind)
                .run(&g, &parts, 9)
                .unwrap();
            assert!(run.outcome.accepts(), "{kind:?} invented a triangle");
        }
    }
    assert!(
        checked >= 3,
        "too few triangle-free samples ({checked}) to be meaningful"
    );
}

#[test]
fn witnesses_are_always_real_triangles() {
    // Sweep many seeds on a mixed graph; every returned triangle must
    // exist in the input (the one-sided guarantee, exhaustively).
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = far_graph(300, 6.0, 0.15, &mut rng).unwrap();
    let parts = with_duplication(&g, 4, 0.5, &mut rng);
    let tuning = Tuning::practical(0.15);
    for seed in 0..15 {
        for outcome in [
            UnrestrictedTester::new(tuning)
                .run(&g, &parts, seed)
                .unwrap()
                .outcome,
            SimultaneousTester::new(tuning, SimProtocolKind::Oblivious)
                .run(&g, &parts, seed)
                .unwrap()
                .outcome,
        ] {
            if let Some(t) = outcome.triangle() {
                assert!(t.exists_in(&g), "fabricated witness {t} at seed {seed}");
            }
        }
    }
}

#[test]
fn single_player_holds_everything() {
    // k = 1 degenerate case: the lone player is the graph.
    let g = Graph::from_edges(10, [(0, 1), (1, 2), (0, 2), (3, 4)]);
    let parts = triad::graph::partition::Partition::new(vec![g.edges().to_vec()]);
    let tuning = Tuning::practical(0.2);
    let run = UnrestrictedTester::new(tuning).run(&g, &parts, 1).unwrap();
    assert!(run.outcome.found_triangle());
}
