//! The coverage matrix: every tester × every workload family × every
//! partition scheme, checked for soundness (never a fake witness) and
//! completeness (finds witnesses on far inputs at a healthy rate).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::{dense_core, far_graph, ChungLu};
use triad::graph::partition::{
    adversarial_triangle_split, by_vertex, random_disjoint, with_duplication, Partition,
};
use triad::graph::{distance, Graph};
use triad::protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

fn workloads(rng: &mut ChaCha8Rng) -> Vec<(&'static str, Graph)> {
    vec![
        ("planted_far", far_graph(400, 8.0, 0.2, rng).unwrap()),
        (
            "dense_core",
            dense_core(400, 4, rng).unwrap().graph().clone(),
        ),
        (
            "power_law",
            ChungLu::new(400, 10.0, 2.2).unwrap().sample(rng),
        ),
    ]
}

fn partitions(g: &Graph, rng: &mut ChaCha8Rng) -> Vec<(&'static str, Partition)> {
    vec![
        ("disjoint", random_disjoint(g, 4, rng)),
        ("duplicated", with_duplication(g, 4, 0.4, rng)),
        ("by_vertex", by_vertex(g, 4)),
        ("adversarial", adversarial_triangle_split(g, 4, rng)),
    ]
}

#[test]
fn completeness_matrix_on_far_workloads() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let tuning = Tuning::practical(0.2);
    for (wname, g) in workloads(&mut rng) {
        // Every workload here is triangle-rich; confirm the premise.
        assert!(
            !distance::is_triangle_free(&g),
            "workload {wname} unexpectedly triangle-free"
        );
        let d = g.average_degree();
        for (pname, parts) in partitions(&g, &mut rng) {
            type SeededTester<'a> = Box<dyn Fn(u64) -> bool + 'a>;
            let testers: Vec<(&str, SeededTester)> = vec![
                (
                    "unrestricted",
                    Box::new(|s| {
                        UnrestrictedTester::new(tuning)
                            .run(&g, &parts, s)
                            .unwrap()
                            .outcome
                            .found_triangle()
                    }),
                ),
                (
                    "oblivious",
                    Box::new(|s| {
                        SimultaneousTester::new(tuning, SimProtocolKind::Oblivious)
                            .run(&g, &parts, s)
                            .unwrap()
                            .outcome
                            .found_triangle()
                    }),
                ),
                (
                    "alg_low",
                    Box::new(|s| {
                        SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d })
                            .run(&g, &parts, s)
                            .unwrap()
                            .outcome
                            .found_triangle()
                    }),
                ),
            ];
            for (tname, run) in testers {
                let hits = (0..8).filter(|s| run(*s)).count();
                assert!(
                    hits >= 5,
                    "{tname} on {wname}/{pname}: only {hits}/8 successes"
                );
            }
        }
    }
}

#[test]
fn soundness_matrix_on_triangle_free_workloads() {
    let mut rng = ChaCha8Rng::seed_from_u64(78);
    let tuning = Tuning::practical(0.2);
    // Three triangle-free families: path, star, bipartite.
    let frees: Vec<(&str, Graph)> = vec![
        (
            "path",
            Graph::from_edges(200, (0..199).map(|i| (i as u32, i as u32 + 1))),
        ),
        (
            "star",
            Graph::from_edges(200, (1..200).map(|i| (0u32, i as u32))),
        ),
        (
            "bipartite",
            Graph::from_edges(200, (0..100).map(|i| (i as u32, i as u32 + 100))),
        ),
    ];
    for (wname, g) in frees {
        assert!(distance::is_triangle_free(&g));
        for (pname, parts) in partitions(&g, &mut rng) {
            for seed in 0..4 {
                let u = UnrestrictedTester::new(tuning)
                    .run(&g, &parts, seed)
                    .unwrap();
                assert!(
                    u.outcome.accepts(),
                    "unrestricted fabricated on {wname}/{pname}"
                );
                for kind in [
                    SimProtocolKind::Low { avg_degree: 2.0 },
                    SimProtocolKind::High { avg_degree: 2.0 },
                    SimProtocolKind::Oblivious,
                ] {
                    let r = SimultaneousTester::new(tuning, kind)
                        .run(&g, &parts, seed)
                        .unwrap();
                    assert!(
                        r.outcome.accepts(),
                        "{kind:?} fabricated on {wname}/{pname}"
                    );
                }
            }
        }
    }
}
