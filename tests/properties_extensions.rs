//! Property-based tests for the extension machinery: subgraph search is
//! checked against brute force, IO against roundtrips, streaming against
//! its spec, CONGEST against the bandwidth cap.

use proptest::prelude::*;
use std::collections::HashSet;
use triad::comm::streaming::{run_stream, EdgeReservoir};
use triad::comm::SharedRandomness;
use triad::graph::subgraphs::{find_copy, Pattern};
use triad::graph::{io, Edge, Graph, GraphBuilder, VertexId};

fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
        .prop_map(|pairs| pairs.into_iter().filter(|(a, b)| a != b).collect())
}

fn build(n: usize, pairs: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for (a, bb) in pairs {
        b.add_edge(Edge::new(VertexId(*a), VertexId(*bb)));
    }
    b.build()
}

/// Brute-force (non-induced) subgraph containment: try every injective
/// assignment of pattern vertices to host vertices.
fn brute_force_contains(g: &Graph, h: &Pattern) -> bool {
    let hv = h.vertices();
    let n = g.vertex_count();
    let mut assignment = vec![VertexId(0); hv];
    fn rec(g: &Graph, h: &Pattern, depth: usize, assignment: &mut Vec<VertexId>, n: usize) -> bool {
        if depth == assignment.len() {
            return h.graph().edges().iter().all(|e| {
                g.has_edge(Edge::new(
                    assignment[e.u().index()],
                    assignment[e.v().index()],
                ))
            });
        }
        for cand in 0..n as u32 {
            let cand = VertexId(cand);
            if assignment[..depth].contains(&cand) {
                continue;
            }
            assignment[depth] = cand;
            if rec(g, h, depth + 1, assignment, n) {
                return true;
            }
        }
        false
    }
    rec(g, h, 0, &mut assignment, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn find_copy_matches_brute_force(pairs in edge_list(7, 16)) {
        let g = build(7, &pairs);
        for pattern in [Pattern::triangle(), Pattern::cycle(4), Pattern::clique(4)] {
            let fast = find_copy(&g, &pattern).is_some();
            let slow = brute_force_contains(&g, &pattern);
            prop_assert_eq!(fast, slow, "pattern {:?} on {:?}", pattern, g.edges());
        }
    }

    #[test]
    fn find_copy_witness_is_valid(pairs in edge_list(10, 30)) {
        let g = build(10, &pairs);
        for pattern in [Pattern::triangle(), Pattern::cycle(5)] {
            if let Some(hosts) = find_copy(&g, &pattern) {
                let uniq: HashSet<_> = hosts.iter().collect();
                prop_assert_eq!(uniq.len(), hosts.len(), "mapping must be injective");
                for e in pattern.graph().edges() {
                    prop_assert!(g.has_edge(Edge::new(
                        hosts[e.u().index()],
                        hosts[e.v().index()]
                    )));
                }
            }
        }
    }

    #[test]
    fn io_roundtrip_is_identity(pairs in edge_list(50, 120)) {
        let g = build(50, &pairs);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let back = io::read_edge_list(buf.as_slice()).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn reservoir_keeps_lowest_ranks(
        pairs in edge_list(40, 60),
        capacity in 1usize..12,
        seed in any::<u64>(),
    ) {
        let g = build(40, &pairs);
        let shared = SharedRandomness::new(seed);
        let tag = 3;
        let alg = EdgeReservoir::new(shared, tag, capacity);
        let run = run_stream(alg, 40, g.edges().iter().copied());
        // Spec: exactly the min(capacity, m) lowest-ranked distinct edges.
        let mut ranks: Vec<(u64, Edge)> =
            g.edges().iter().map(|e| (shared.edge_rank(tag, *e).0, *e)).collect();
        ranks.sort_unstable();
        let expected: HashSet<Edge> =
            ranks.iter().take(capacity).map(|(_, e)| *e).collect();
        let got: HashSet<Edge> = run.output.into_iter().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn counting_estimator_never_negative_and_exact_at_one(pairs in edge_list(24, 60)) {
        let g = build(24, &pairs);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        use rand::SeedableRng;
        let parts = triad::graph::partition::random_disjoint(&g, 3, &mut rng);
        let run =
            triad::protocols::counting::estimate_triangles(&g, &parts, 1.0, 7).unwrap();
        prop_assert_eq!(
            run.output.sampled_triangles,
            triad::graph::triangles::count_triangles(&g)
        );
        let run =
            triad::protocols::counting::estimate_triangles(&g, &parts, 0.5, 7).unwrap();
        prop_assert!(run.output.estimate >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn congest_tester_sound_on_arbitrary_graphs(pairs in edge_list(30, 80), seed in 0u64..500) {
        use triad::congest::{network::Network, triangle::TriangleTester};
        let g = build(30, &pairs);
        let mut net = Network::new(&g, seed);
        // run_until asserts witness validity and the bandwidth cap
        // internally; soundness additionally demands silence on
        // triangle-free inputs.
        let out = net.run_until(&TriangleTester::new(), 30);
        if !triad::graph::triangles::contains_triangle(&g) {
            prop_assert!(out.witness.is_none());
        }
        prop_assert!(
            out.max_edge_round_bits <= triad::congest::message::Msg::bandwidth_cap(30)
        );
    }

    #[test]
    fn one_way_relay_conserves_information(pairs in edge_list(20, 40), k in 2usize..5) {
        use triad::comm::{run_one_way, OneWayProtocol, SimMessage, PlayerState, Payload};
        struct Forward;
        impl OneWayProtocol for Forward {
            type Output = usize;
            fn message(
                &self,
                player: &PlayerState,
                prior: &[SimMessage],
                _shared: &SharedRandomness,
            ) -> SimMessage<'static> {
                let mut edges: Vec<Edge> = player.edges().copied().collect();
                for m in prior {
                    edges.extend(m.edges());
                }
                edges.sort_unstable();
                edges.dedup();
                SimMessage::of(Payload::Edges(edges.into()))
            }
            fn output(
                &self,
                last: &PlayerState,
                prior: &[SimMessage],
                _shared: &SharedRandomness,
            ) -> usize {
                let mut edges: Vec<Edge> = last.edges().copied().collect();
                for m in prior {
                    edges.extend(m.edges());
                }
                edges.sort_unstable();
                edges.dedup();
                edges.len()
            }
        }
        let g = build(20, &pairs);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        use rand::SeedableRng;
        let parts = triad::graph::partition::random_disjoint(&g, k, &mut rng);
        let run = run_one_way(&Forward, 20, parts.shares(), SharedRandomness::new(0));
        prop_assert_eq!(run.output, g.edge_count());
        prop_assert_eq!(run.hop_bits.len(), k - 1);
    }
}
