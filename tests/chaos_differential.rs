//! Differential suite for the chaos (fault-injection) path.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Fault-free transparency** — `run_chaos_amplified` with
//!    [`FaultPlan::fault_free`] is byte-identical to the plain amplified
//!    sweep: same verdict, same stats, same cost rollups, field by
//!    field, at every thread count. The chaos machinery must cost
//!    nothing when no faults are injected.
//! 2. **One-sided degradation** — under omission faults at the default
//!    (unanimous) quorum, a chaos run may report the fault-free verdict
//!    or an explicit `Inconclusive`, but never the *opposite* verdict:
//!    a reported triangle always exists, and a lost quorum never decays
//!    into an accept.

use proptest::prelude::*;
use triad::comm::pool::Pool;
use triad::comm::{FaultPlan, FaultRates, PayloadRepr, Recorder, Tally};
use triad::graph::generators::gnp_with_average_degree;
use triad::graph::partition::{random_disjoint, Partition};
use triad::graph::Graph;
use triad::protocols::amplify::{run_amplified_prepared, PreparedInput};
use triad::protocols::baseline::SendEverything;
use triad::protocols::{
    run_chaos_amplified, ChaosRun, Repeatable, SimProtocolKind, SimultaneousTester, TallyRun,
    Tuning, UnrestrictedTester, DEFAULT_QUORUM,
};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small pinned workload: dense enough that protocols exchange real
/// bits, small enough that proptest cases stay fast.
fn workload(n: usize, k: usize, graph_seed: u64) -> (Graph, Partition) {
    let mut rng = ChaCha8Rng::seed_from_u64(graph_seed);
    let g = gnp_with_average_degree(n, 6.0, &mut rng);
    let parts = random_disjoint(&g, k, &mut rng);
    (g, parts)
}

/// Asserts a fault-free chaos run agrees with the plain amplified run on
/// every comparable field — the chaos decorator is observably free at
/// fault rate zero.
fn assert_transparent(label: &str, reference: &TallyRun, chaos: &ChaosRun, threads: usize) {
    assert_eq!(
        chaos.outcome.triangle(),
        reference.outcome.triangle(),
        "{label}@{threads}: outcome"
    );
    assert_eq!(chaos.stats, reference.stats, "{label}@{threads}: stats");
    let t: &Tally = &reference.transcript;
    let y: &Tally = &chaos.tally;
    assert_eq!(
        y.total_bits(),
        t.total_bits(),
        "{label}@{threads}: total bits"
    );
    assert_eq!(
        y.per_player_sent(),
        t.per_player_sent(),
        "{label}@{threads}: per-player bits"
    );
    assert_eq!(y.by_phase(), t.by_phase(), "{label}@{threads}: by_phase");
    assert_eq!(y.by_player(), t.by_player(), "{label}@{threads}: by_player");
    assert_eq!(y.by_round(), t.by_round(), "{label}@{threads}: by_round");
    assert_eq!(
        y.by_direction(),
        t.by_direction(),
        "{label}@{threads}: by_direction"
    );
    assert_eq!(y.breakdown(), t.breakdown(), "{label}@{threads}: breakdown");
    assert_eq!(chaos.failures.total(), 0, "{label}@{threads}: failures");
    assert_eq!(chaos.injected.total(), 0, "{label}@{threads}: injections");
    assert_eq!(chaos.retransmit_bits(), 0, "{label}@{threads}: retransmit");
    assert_eq!(
        chaos.survived, chaos.attempted,
        "{label}@{threads}: survivors"
    );
}

/// Runs one tester fault-free both ways at several thread counts.
fn check_transparency<T: Repeatable + Sync>(
    label: &str,
    tester: &T,
    g: &Graph,
    parts: &Partition,
    reps: u32,
    seed: u64,
) {
    let input = PreparedInput::new(g, parts).unwrap();
    let reference = run_amplified_prepared(&Pool::serial(), tester, &input, reps, seed)
        .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));
    let plan = FaultPlan::fault_free(seed ^ 0x5EED);
    for threads in [1usize, 2, 4] {
        let chaos = run_chaos_amplified(
            &Pool::new(threads),
            tester,
            &input,
            reps,
            seed,
            &plan,
            DEFAULT_QUORUM,
        );
        assert_transparent(label, &reference, &chaos, threads);
    }
}

/// The knobs of one omission-degradation case, bundled so the checker's
/// signature stays readable.
struct OmissionCase {
    reps: u32,
    seed: u64,
    rate: f64,
    fault_seed: u64,
}

/// Runs one tester under omission faults and checks the verdict can
/// degrade only to `Inconclusive`, never flip.
fn check_omission_degradation<T: Repeatable + Sync>(
    label: &str,
    tester: &T,
    g: &Graph,
    parts: &Partition,
    case: &OmissionCase,
) {
    let input = PreparedInput::new(g, parts).unwrap();
    let plain = run_amplified_prepared(&Pool::serial(), tester, &input, case.reps, case.seed)
        .unwrap_or_else(|e| panic!("{label}: plain run failed: {e}"));
    let plan = FaultPlan::new(case.fault_seed, FaultRates::omission(case.rate));
    let chaos = run_chaos_amplified(
        &Pool::serial(),
        tester,
        &input,
        case.reps,
        case.seed,
        &plan,
        DEFAULT_QUORUM,
    );
    if let Some(t) = chaos.outcome.triangle() {
        // One-sided error survives chaos: a reported witness is real.
        assert!(t.exists_in(g), "{label}: fabricated witness {t}");
    }
    if plain.outcome.found_triangle() {
        // The fault-free sweep finds a triangle; faults may hide it
        // (Inconclusive at the unanimous quorum) but can never launder
        // the loss into a confident accept.
        assert_ne!(
            chaos.outcome.as_str(),
            "accepted",
            "{label}: omission faults flipped a triangle into an accept"
        );
    } else {
        // The fault-free sweep accepts; faults can only degrade that to
        // an explicit refusal, never conjure a triangle.
        assert!(
            !chaos.outcome.found_triangle(),
            "{label}: omission faults conjured a witness"
        );
    }
}

/// Dispatches a protocol index to a concrete tester (the vendored
/// proptest shim has no trait-object strategies). `repr` selects the
/// edge-set payload representation, so every chaos property below can
/// be checked on edge lists, bitsets, and the auto gate alike.
fn with_protocol(
    idx: usize,
    d: f64,
    repr: PayloadRepr,
    f: impl FnOnce(&str, &(dyn Repeatable + Sync)),
) {
    let tuning = Tuning::practical(0.2).with_repr(repr);
    match idx {
        0 => f("exact", &SendEverything::with_repr(repr)),
        1 => f(
            "sim-low",
            &SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d }),
        ),
        2 => f(
            "sim-high",
            &SimultaneousTester::new(tuning, SimProtocolKind::High { avg_degree: d }),
        ),
        3 => f(
            "sim-oblivious",
            &SimultaneousTester::new(tuning, SimProtocolKind::Oblivious),
        ),
        _ => f("unrestricted", &UnrestrictedTester::new(tuning)),
    }
}

proptest! {
    /// For random (protocol, seed, player count), the fault-free chaos
    /// path is indistinguishable from the plain amplified sweep at 1, 2
    /// and 4 threads.
    #[test]
    fn fault_free_chaos_matches_plain_sweep(
        idx in 0..5usize,
        k in 2..6usize,
        seed in 0..1_000_000u64,
        graph_seed in 0..4u64,
    ) {
        let (g, parts) = workload(80, k, graph_seed);
        let d = g.average_degree().max(0.1);
        with_protocol(idx, d, PayloadRepr::Auto, |label, tester| {
            check_transparency(label, &tester, &g, &parts, 3, seed);
        });
    }

    /// For random (protocol, seed, drop rate), an omission-fault run at
    /// the unanimous quorum reports the fault-free verdict or an
    /// explicit `Inconclusive` — never the opposite verdict.
    #[test]
    fn omission_faults_never_flip_the_verdict(
        idx in 0..5usize,
        k in 2..6usize,
        seed in 0..1_000_000u64,
        graph_seed in 0..4u64,
        rate_pct in 0..80u32,
        fault_seed in 0..1_000_000u64,
        repr_idx in 0..3usize,
    ) {
        let (g, parts) = workload(80, k, graph_seed);
        let d = g.average_degree().max(0.1);
        let repr = [PayloadRepr::Auto, PayloadRepr::Edges, PayloadRepr::Bits][repr_idx];
        with_protocol(idx, d, repr, |label, tester| {
            check_omission_degradation(
                label,
                &tester,
                &g,
                &parts,
                &OmissionCase {
                    reps: 4,
                    seed,
                    rate: f64::from(rate_pct) / 100.0,
                    fault_seed,
                },
            );
        });
    }
}

/// Deterministic anchor for the transparency property: every protocol at
/// a pinned workload, so a differential failure reproduces without a
/// proptest seed.
#[test]
fn every_protocol_is_chaos_transparent_at_pinned_seed() {
    let (g, parts) = workload(150, 4, 9);
    let d = g.average_degree().max(0.1);
    for idx in 0..5 {
        for repr in [PayloadRepr::Edges, PayloadRepr::Bits] {
            with_protocol(idx, d, repr, |label, tester| {
                check_transparency(label, &tester, &g, &parts, 4, 42);
            });
        }
    }
}

/// Deterministic anchor for the degradation property, sweeping drop
/// rates from mild to total blackout.
#[test]
fn omission_sweep_never_flips_at_pinned_seed() {
    let (g, parts) = workload(150, 4, 9);
    let d = g.average_degree().max(0.1);
    for idx in 0..5 {
        for rate in [0.05, 0.3, 1.0] {
            with_protocol(idx, d, PayloadRepr::Bits, |label, tester| {
                let case = OmissionCase {
                    reps: 4,
                    seed: 42,
                    rate,
                    fault_seed: 7,
                };
                check_omission_degradation(label, &tester, &g, &parts, &case);
            });
        }
    }
}

/// Corruption of bitset frames is detected, typed, and one-sided: a
/// dense workload forced onto (or auto-gated into) the packed
/// representation, under a corruption-only fault plan, kills exactly
/// the corrupted repetitions with `RunError::Corrupt` — and the
/// quorum verdict may degrade but never flip relative to the
/// fault-free sweep.
#[test]
fn bitset_frame_corruption_is_typed_and_never_flips() {
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let g = gnp_with_average_degree(120, 40.0, &mut rng);
    let parts = random_disjoint(&g, 3, &mut rng);
    let d = g.average_degree().max(0.1);
    let input = PreparedInput::new(&g, &parts).unwrap();
    let seed = 42u64;
    for repr in [PayloadRepr::Bits, PayloadRepr::Auto] {
        with_protocol(0, d, repr, |label, tester| {
            let plain = run_amplified_prepared(&Pool::serial(), &tester, &input, 4, seed)
                .unwrap_or_else(|e| panic!("{label}: plain run failed: {e}"));
            for rate in [0.3, 1.0] {
                let plan = FaultPlan::new(
                    9,
                    FaultRates {
                        corrupt: rate,
                        ..FaultRates::none()
                    },
                );
                let chaos = run_chaos_amplified(
                    &Pool::serial(),
                    &tester,
                    &input,
                    4,
                    seed,
                    &plan,
                    DEFAULT_QUORUM,
                );
                // Every kill is a typed Corrupt — corruption of a
                // tag-10 bitset body never surfaces as a panic, a
                // timeout, or (worst) a silently wrong verdict.
                assert_eq!(
                    chaos.failures.total(),
                    chaos.failures.corrupt,
                    "{label}@{rate}: only Corrupt failures expected"
                );
                assert_eq!(
                    chaos.injected.drops + chaos.injected.crashes,
                    0,
                    "{label}@{rate}: corruption-only plan"
                );
                if rate == 1.0 {
                    assert!(
                        chaos.failures.corrupt > 0,
                        "{label}: total corruption must kill repetitions"
                    );
                }
                if let Some(t) = chaos.outcome.triangle() {
                    assert!(t.exists_in(&g), "{label}@{rate}: fabricated witness");
                }
                if plain.outcome.found_triangle() {
                    assert_ne!(
                        chaos.outcome.as_str(),
                        "accepted",
                        "{label}@{rate}: corruption flipped a triangle into an accept"
                    );
                } else {
                    assert!(
                        !chaos.outcome.found_triangle(),
                        "{label}@{rate}: corruption conjured a witness"
                    );
                }
            }
        });
    }
}
