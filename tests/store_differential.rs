//! The out-of-core CSR differential campaign.
//!
//! The contract under test (docs/IO.md + docs/KERNELS.md): a graph
//! served from a `.csr` file — memory-mapped or decoded into owned
//! vectors — is **observably identical** to the same graph materialized
//! in memory. Same triangle counts, same witnesses, same protocol
//! verdicts, same `CommStats`, same per-phase/player tallies, bit for
//! bit, across
//!
//!   protocol × seed × threads × {mapped, owned, in-memory}.
//!
//! The suite also pins the file format itself: a proptest round-trip
//! (arbitrary graph → file → store → graph) and a rejection battery
//! that corrupts one field at a time and demands the precise
//! `StoreError` *before* any kernel or protocol ever sees the bytes.

use std::path::{Path, PathBuf};

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use triad::comm::pool::Pool;
use triad::graph::kernels::{self, Forward};
use triad::graph::partition::{random_disjoint, Partition};
use triad::graph::store::{
    write_csr, FarStream, GnpStream, StoreError, HEADER_BYTES, MAGIC, VERSION,
};
use triad::graph::{CsrStore, Graph};
use triad::protocols::amplify::{run_amplified_prepared, PreparedInput};
use triad::protocols::baseline::SendEverything;
use triad::protocols::{
    run_chaos_amplified, Repeatable, SimProtocolKind, SimultaneousTester, TallyRun, Tuning,
    UnrestrictedTester, DEFAULT_QUORUM,
};

const EPS: f64 = 0.2;
const REPS: u32 = 3;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("triad-store-diff-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every tester the CLI exposes, by its `--protocol` name.
fn testers(d: f64) -> Vec<(&'static str, Box<dyn Repeatable + Sync>)> {
    let tuning = Tuning::practical(EPS);
    vec![
        (
            "unrestricted",
            Box::new(UnrestrictedTester::new(tuning)) as Box<dyn Repeatable + Sync>,
        ),
        (
            "low",
            Box::new(SimultaneousTester::new(
                tuning,
                SimProtocolKind::Low { avg_degree: d },
            )),
        ),
        (
            "high",
            Box::new(SimultaneousTester::new(
                tuning,
                SimProtocolKind::High { avg_degree: d },
            )),
        ),
        (
            "oblivious",
            Box::new(SimultaneousTester::new(tuning, SimProtocolKind::Oblivious)),
        ),
        ("exact", Box::new(SendEverything::default())),
    ]
}

fn assert_runs_identical(label: &str, a: &TallyRun, b: &TallyRun) {
    assert_eq!(a.outcome, b.outcome, "{label}: verdicts diverged");
    assert_eq!(a.stats, b.stats, "{label}: stats diverged");
    assert_eq!(a.transcript, b.transcript, "{label}: tallies diverged");
}

// ---------------------------------------------------------------------
// Mapped vs owned vs in-memory: the protocol matrix.
// ---------------------------------------------------------------------

/// One workload: write the stream to disk, open it both ways, and run
/// the full protocol × seed × threads matrix over (a) the materialized
/// graph, (b) the mapped store, (c) the owned-backing store — all three
/// must agree bit for bit. The partitions are built from each backing
/// independently with the same seed, which also pins edge-enumeration
/// order across backings.
fn protocol_matrix_over(tag: &str, stream: &dyn triad::graph::store::EdgeStream, k: usize) {
    let dir = tempdir(tag);
    let path = dir.join("g.csr");
    write_csr(&path, stream).unwrap();

    let mapped = CsrStore::open(&path).unwrap();
    let owned = CsrStore::open_owned(&path).unwrap();
    assert!(!owned.mapped());
    let g = mapped.to_graph();
    assert_eq!(g.vertex_count(), mapped.vertex_count());
    assert_eq!(g.edge_count(), mapped.edge_count());

    let parts_g = random_disjoint(&g, k, &mut ChaCha8Rng::seed_from_u64(5));
    let parts_mapped = random_disjoint(&mapped, k, &mut ChaCha8Rng::seed_from_u64(5));
    let parts_owned = random_disjoint(&owned, k, &mut ChaCha8Rng::seed_from_u64(5));
    assert_eq!(
        parts_g.shares(),
        parts_mapped.shares(),
        "{tag}: partitioning a store must enumerate edges exactly like the graph"
    );
    assert_eq!(parts_mapped.shares(), parts_owned.shares());

    let in_memory = PreparedInput::new(&g, &parts_g).unwrap();
    let graph_free = PreparedInput::from_partition(mapped.vertex_count(), &parts_mapped).unwrap();
    assert!(graph_free.graph().is_none());

    let d = mapped.average_degree();
    for (name, tester) in &testers(d) {
        for seed in [1u64, 9] {
            for threads in [1usize, 2, 4] {
                let pool = Pool::new(threads);
                let label = format!("{tag}/{name}/seed{seed}/t{threads}");
                let reference =
                    run_amplified_prepared(&pool, &&**tester, &in_memory, REPS, seed).unwrap();
                let over_store =
                    run_amplified_prepared(&pool, &&**tester, &graph_free, REPS, seed).unwrap();
                assert_runs_identical(&label, &reference, &over_store);
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocols_are_backing_invariant_on_a_triangle_rich_input() {
    protocol_matrix_over(
        "gnp",
        &GnpStream::with_average_degree(220, 7.0, 31).unwrap(),
        4,
    );
}

#[test]
fn protocols_are_backing_invariant_on_a_far_input() {
    protocol_matrix_over("far", &FarStream::new(180, 6.0, EPS, 13).unwrap(), 3);
}

#[test]
fn chaos_runs_are_backing_invariant() {
    let dir = tempdir("chaos");
    let path = dir.join("g.csr");
    write_csr(
        &path,
        &GnpStream::with_average_degree(200, 6.0, 17).unwrap(),
    )
    .unwrap();
    let store = CsrStore::open(&path).unwrap();
    let g = store.to_graph();
    let parts = random_disjoint(&store, 4, &mut ChaCha8Rng::seed_from_u64(3));
    let in_memory = PreparedInput::new(&g, &parts).unwrap();
    let graph_free = PreparedInput::from_partition(store.vertex_count(), &parts).unwrap();
    let tester = SimultaneousTester::new(
        Tuning::practical(EPS),
        SimProtocolKind::Low {
            avg_degree: store.average_degree(),
        },
    );
    let plan = triad::comm::FaultPlan::new(29, triad::comm::FaultRates::mixed(0.15));
    for threads in [1usize, 4] {
        let pool = Pool::new(threads);
        let a = run_chaos_amplified(&pool, &tester, &in_memory, 6, 11, &plan, DEFAULT_QUORUM);
        let b = run_chaos_amplified(&pool, &tester, &graph_free, 6, 11, &plan, DEFAULT_QUORUM);
        assert_eq!(
            format!("{a:?}"),
            format!("{b:?}"),
            "t{threads}: chaos runs diverged across backings"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kernels_agree_across_backings_and_thread_counts() {
    let dir = tempdir("kernels");
    let path = dir.join("g.csr");
    write_csr(
        &path,
        &GnpStream::with_average_degree(300, 9.0, 41).unwrap(),
    )
    .unwrap();
    let store = CsrStore::open(&path).unwrap();
    let owned = CsrStore::open_owned(&path).unwrap();
    let g = store.to_graph();

    let reference = kernels::count_triangles(&g);
    let fwd = Forward::build(&store);
    assert_eq!(fwd.count_range(&store, 0..store.edge_count()), reference);
    let fwd_owned = Forward::build(&owned);
    assert_eq!(
        fwd_owned.count_range(&owned, 0..owned.edge_count()),
        reference
    );
    for threads in [1usize, 2, 8] {
        let pool = Pool::new(threads);
        assert_eq!(kernels::count_triangles_par(&store, &pool), reference);
        assert_eq!(kernels::count_triangles_par(&owned, &pool), reference);
    }
    assert_eq!(
        kernels::find_triangle(&store).is_some(),
        reference > 0,
        "witness presence must match the count"
    );

    // Allocation evidence: the mapped store owns only the (n+1)-word
    // forward index; the adjacency lives in the mapping.
    if store.mapped() {
        assert_eq!(store.owned_bytes(), (store.vertex_count() + 1) * 8);
    }
    assert!(owned.owned_bytes() > store.vertex_count() * 8);
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------
// Round-trip: arbitrary graph → file → store → graph.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_graph_round_trips_through_the_container(
        n in 1usize..48,
        raw in proptest::collection::vec((0u32..48, 0u32..48), 0..120),
        seed in 0u64..u64::MAX,
    ) {
        let edges: Vec<(u32, u32)> = raw
            .into_iter()
            .filter(|(u, v)| u != v && (*u as usize) < n && (*v as usize) < n)
            .collect();
        let g = Graph::from_edges(n, edges.iter().copied());
        let dir = tempdir(&format!("prop-{}", seed % 1024));
        let path = dir.join(format!("{seed:x}.csr"));
        write_csr(&path, &g).unwrap();

        let mapped = CsrStore::open(&path).unwrap();
        let owned = CsrStore::open_owned(&path).unwrap();
        prop_assert_eq!(mapped.to_graph(), g.clone());
        prop_assert_eq!(owned.to_graph(), g.clone());
        prop_assert_eq!(mapped.checksum(), owned.checksum());
        prop_assert_eq!(mapped.edge_count(), g.edge_count());

        // Writing the same graph again is byte-identical (the format
        // has exactly one encoding per graph).
        let again = dir.join(format!("{seed:x}-again.csr"));
        write_csr(&again, &g).unwrap();
        prop_assert_eq!(std::fs::read(&path).unwrap(), std::fs::read(&again).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------
// Rejection battery: one corruption at a time, one precise error each.
// ---------------------------------------------------------------------

/// A valid triangle file (n = 3, edges 01/02/12) whose layout the
/// corruption cases patch byte-by-byte: header 0..40, four u64 offsets
/// `[0, 2, 4, 6]` at 40..72, six u32 adjacency slots
/// `[1,2, 0,2, 0,1]` at 72..96.
fn triangle_bytes(dir: &Path) -> Vec<u8> {
    let path = dir.join("tri.csr");
    let g = Graph::from_edges(3, [(0u32, 1u32), (0, 2), (1, 2)]);
    write_csr(&path, &g).unwrap();
    std::fs::read(&path).unwrap()
}

/// A valid path file (n = 3, edges 01/12): offsets `[0, 1, 3, 4]`,
/// adjacency `[1, 0,2, 1]` — the seed for the asymmetry case.
fn path_bytes(dir: &Path) -> Vec<u8> {
    let path = dir.join("path.csr");
    let g = Graph::from_edges(3, [(0u32, 1u32), (1, 2)]);
    write_csr(&path, &g).unwrap();
    std::fs::read(&path).unwrap()
}

fn open_bytes(dir: &Path, tag: &str, bytes: &[u8]) -> Result<CsrStore, StoreError> {
    let path = dir.join(format!("{tag}.csr"));
    std::fs::write(&path, bytes).unwrap();
    // Both backings must reject identically; return one for matching.
    let owned = CsrStore::open_owned(&path);
    let auto = CsrStore::open(&path);
    assert_eq!(
        owned.is_err(),
        auto.is_err(),
        "{tag}: backings disagree on validity"
    );
    auto
}

fn put_u64(bytes: &mut [u8], at: usize, v: u64) {
    bytes[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(bytes: &mut [u8], at: usize, v: u32) {
    bytes[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

#[test]
fn every_corruption_is_rejected_with_the_precise_error() {
    let dir = tempdir("reject");
    let tri = triangle_bytes(&dir);
    assert_eq!(tri.len(), HEADER_BYTES + 4 * 8 + 6 * 4);
    assert_eq!(&tri[0..8], &MAGIC);
    assert!(open_bytes(&dir, "valid", &tri).is_ok());

    let offsets_at = |i: usize| HEADER_BYTES + i * 8;
    let adj_at = |i: usize| HEADER_BYTES + 4 * 8 + i * 4;

    // -- header geometry ------------------------------------------------
    assert!(matches!(
        open_bytes(&dir, "empty", &[]),
        Err(StoreError::Truncated { .. })
    ));
    assert!(matches!(
        open_bytes(&dir, "short-header", &tri[..20]),
        Err(StoreError::Truncated { .. })
    ));
    assert!(matches!(
        open_bytes(&dir, "cut-body", &tri[..tri.len() - 1]),
        Err(StoreError::Truncated { .. })
    ));
    let mut b = tri.clone();
    b.push(0);
    match open_bytes(&dir, "trailing", &b) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("trailing"), "{msg}"),
        other => panic!("trailing byte accepted: {other:?}"),
    }

    // -- header fields ---------------------------------------------------
    let mut b = tri.clone();
    b[0] = b'X';
    assert!(matches!(
        open_bytes(&dir, "magic", &b),
        Err(StoreError::BadMagic)
    ));
    for bad_version in [0u32, VERSION + 1] {
        let mut b = tri.clone();
        put_u32(&mut b, 8, bad_version);
        assert!(matches!(
            open_bytes(&dir, &format!("version-{bad_version}"), &b),
            Err(StoreError::BadVersion(v)) if v == bad_version
        ));
    }
    let mut b = tri.clone();
    put_u32(&mut b, 12, 0x8000_0001);
    assert!(matches!(
        open_bytes(&dir, "flags", &b),
        Err(StoreError::BadFlags(_))
    ));
    let mut b = tri.clone();
    let declared = u64::from_le_bytes(tri[32..40].try_into().unwrap());
    put_u64(&mut b, 32, declared.wrapping_add(1));
    match open_bytes(&dir, "checksum", &b) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("checksum"), "{msg}"),
        other => panic!("bad checksum accepted: {other:?}"),
    }

    // -- oversized geometry must be refused before any allocation --------
    let mut b = tri[..HEADER_BYTES].to_vec();
    put_u64(&mut b, 16, u64::from(u32::MAX) + 1); // n beyond the id space
    match open_bytes(&dir, "huge-n", &b) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("u32"), "{msg}"),
        other => panic!("oversized n accepted: {other:?}"),
    }
    let mut b = tri[..HEADER_BYTES].to_vec();
    put_u64(&mut b, 24, u64::MAX); // m whose slot count overflows
    assert!(open_bytes(&dir, "huge-m", &b).is_err());
    let mut b = tri[..HEADER_BYTES].to_vec();
    put_u64(&mut b, 16, 1_000_000_000); // plausible n, 40-byte file
    assert!(matches!(
        open_bytes(&dir, "giant-truncated", &b),
        Err(StoreError::Truncated { .. })
    ));

    // -- offset section ----------------------------------------------------
    for (tag, word, value, needle) in [
        ("offsets-first", 0usize, 1u64, "offsets[0]"),
        ("offsets-last", 3, 5, "offsets[n]"),
        ("offsets-decrease", 2, 1, "decrease"),
        // An offset past a later row's start is also a decrease —
        // monotonicity plus the pinned final offset bound every row,
        // and both are checked before any adjacency byte is sliced
        // (a decreasing mate-row offset once panicked here).
        ("offsets-overrun", 1, 7, "decrease"),
    ] {
        let mut b = tri.clone();
        put_u64(&mut b, offsets_at(word), value);
        match open_bytes(&dir, tag, &b) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains(needle), "{tag}: {msg}"),
            other => panic!("{tag} accepted: {other:?}"),
        }
    }

    // -- adjacency section -------------------------------------------------
    for (tag, slot, value, needle) in [
        ("neighbor-range", 1usize, 5u32, "≥ n"),
        ("self-loop", 0, 0, "self-loop"),
        ("row-unsorted", 0, 2, "strictly increasing"),
    ] {
        let mut b = tri.clone();
        put_u32(&mut b, adj_at(slot), value);
        if tag == "row-unsorted" {
            put_u32(&mut b, adj_at(1), 1); // row 0 becomes [2, 1]
        }
        match open_bytes(&dir, tag, &b) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains(needle), "{tag}: {msg}"),
            other => panic!("{tag} accepted: {other:?}"),
        }
    }
    // Asymmetry needs the path graph: rewriting row 0 from [1] to [2]
    // leaves every row sorted and in range, but 0 ∉ row 2.
    let path = path_bytes(&dir);
    let mut b = path.clone();
    put_u32(&mut b, HEADER_BYTES + 4 * 8, 2);
    match open_bytes(&dir, "asymmetric", &b) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("asymmetric"), "{msg}"),
        other => panic!("asymmetric edge accepted: {other:?}"),
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_single_edge_graphs_survive_the_full_pipeline() {
    let dir = tempdir("tiny");
    for (tag, n, edges) in [
        ("empty", 1usize, vec![]),
        ("one-edge", 2, vec![(0u32, 1u32)]),
    ] {
        let path = dir.join(format!("{tag}.csr"));
        let g = Graph::from_edges(n, edges.iter().copied());
        write_csr(&path, &g).unwrap();
        let store = CsrStore::open(&path).unwrap();
        assert_eq!(store.to_graph(), g);
        let parts = Partition::new(vec![store.to_graph().edges().to_vec(); 2]);
        let input = PreparedInput::from_partition(store.vertex_count(), &parts).unwrap();
        let run = run_amplified_prepared(&Pool::serial(), &SendEverything::default(), &input, 1, 7)
            .unwrap();
        assert!(run.outcome.accepts(), "{tag}: no triangle exists");
    }
    std::fs::remove_dir_all(&dir).ok();
}
