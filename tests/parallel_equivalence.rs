//! Differential conformance: the deterministic parallel engine must be
//! byte-identical to the serial path.
//!
//! The contract under test (docs/PARALLELISM.md): for any thread count,
//! amplified runs, the standard cost suite, and the `reproduce
//! --json-dir` export produce the same outcomes, the same `CommStats`,
//! the same transcript events, and the same `CostReport` JSON bytes as a
//! plain serial loop — including early-exit cost accounting.

use triad::comm::pool::Pool;
use triad::comm::{CommStats, Transcript};
use triad::graph::partition::Partition;
use triad::graph::Graph;
use triad::protocols::amplify::{rep_seed, run_amplified_with, Repeatable};
use triad::protocols::baseline::SendEverything;
use triad::protocols::{
    ProtocolRun, SimProtocolKind, SimultaneousTester, TestOutcome, Tuning, UnrestrictedTester,
};
use triad_bench::experiments::Scale;
use triad_bench::report::{report_for_run, standard_suite_with, write_bench_json};
use triad_bench::workloads::planted_far;

const EPS: f64 = 0.2;
const REPS: u32 = 4;

/// The reference implementation: a plain serial loop, written out by
/// hand so the test does not trust `Pool::serial` to define "serial".
fn serial_amplified<T: Repeatable + ?Sized>(
    tester: &T,
    g: &Graph,
    partition: &Partition,
    repetitions: u32,
    base_seed: u64,
) -> ProtocolRun {
    let mut stats = CommStats::default();
    let mut transcript = Transcript::new(partition.players());
    for r in 0..repetitions.max(1) {
        let run = tester
            .run_once(g, partition, rep_seed(base_seed, r))
            .expect("reference run failed");
        stats = stats.merged(run.stats);
        transcript.absorb(&run.transcript);
        if run.outcome.found_triangle() {
            return ProtocolRun {
                outcome: run.outcome,
                stats,
                transcript,
            };
        }
    }
    ProtocolRun {
        outcome: TestOutcome::NoTriangleFound,
        stats,
        transcript,
    }
}

/// Every amplifiable protocol in the matrix: both tester families (the
/// multi-round unrestricted tester and the one-round simultaneous ones)
/// plus the exact baseline.
fn protocol_matrix(d: f64) -> Vec<(&'static str, Box<dyn Repeatable + Sync>)> {
    vec![
        (
            "unrestricted",
            Box::new(UnrestrictedTester::new(Tuning::practical(EPS))) as Box<dyn Repeatable + Sync>,
        ),
        (
            "sim-low",
            Box::new(SimultaneousTester::new(
                Tuning::practical(EPS),
                SimProtocolKind::Low { avg_degree: d },
            )),
        ),
        (
            "sim-high",
            Box::new(SimultaneousTester::new(
                Tuning::practical(EPS),
                SimProtocolKind::High { avg_degree: d },
            )),
        ),
        (
            "sim-oblivious",
            Box::new(SimultaneousTester::new(
                Tuning::practical(EPS),
                SimProtocolKind::Oblivious,
            )),
        ),
        ("exact", Box::new(SendEverything::default())),
    ]
}

#[test]
fn amplified_cost_reports_are_byte_identical_across_thread_counts() {
    // seed × protocol × k matrix, per the ISSUE acceptance criteria:
    // the CostReport JSON at 1, 2, and 8 threads must equal the serial
    // reference byte for byte, for both tester families and the baseline.
    let n = 240;
    let d = 6.0;
    for k in [2usize, 4, 8] {
        for seed in [1u64, 5] {
            let w = planted_far(n, d, EPS, k, seed);
            for (name, tester) in protocol_matrix(w.d) {
                let tester: &(dyn Repeatable + Sync) = tester.as_ref();
                let reference = serial_amplified(tester, &w.graph, &w.partition, REPS, seed);
                let params = || triad::comm::ReportParams {
                    protocol: name.to_string(),
                    generator: "planted".to_string(),
                    n,
                    k,
                    d: w.d,
                    eps: EPS,
                    seed,
                };
                let ref_json =
                    report_for_run(params(), &reference, &reference.transcript).to_json();
                for threads in [1usize, 2, 8] {
                    let run = run_amplified_with(
                        &Pool::new(threads),
                        &tester,
                        &w.graph,
                        &w.partition,
                        REPS,
                        seed,
                    )
                    .expect("parallel run failed");
                    assert_eq!(
                        run.outcome, reference.outcome,
                        "{name} k={k} seed={seed} t={threads}: outcome"
                    );
                    assert_eq!(
                        run.stats, reference.stats,
                        "{name} k={k} seed={seed} t={threads}: stats"
                    );
                    assert_eq!(
                        run.transcript.events(),
                        reference.transcript.events(),
                        "{name} k={k} seed={seed} t={threads}: transcript"
                    );
                    let json = report_for_run(params(), &run, &run.transcript).to_json();
                    assert_eq!(
                        json.as_bytes(),
                        ref_json.as_bytes(),
                        "{name} k={k} seed={seed} t={threads}: CostReport JSON"
                    );
                }
            }
        }
    }
}

#[test]
fn early_exit_charges_the_serial_prefix_exactly() {
    // A weak tester on an ε-far instance misses often, so different
    // repetitions stop the run at different indices across seeds; the
    // parallel engine must charge exactly the serial prefix every time.
    let w = planted_far(320, 6.0, EPS, 4, 3);
    let weak = SimultaneousTester::new(
        Tuning::practical(EPS).with_scale(0.25),
        SimProtocolKind::Low { avg_degree: 6.0 },
    );
    for seed in 0..12u64 {
        let reference = serial_amplified(&weak, &w.graph, &w.partition, 8, seed);
        for threads in [2usize, 8] {
            let run =
                run_amplified_with(&Pool::new(threads), &weak, &w.graph, &w.partition, 8, seed)
                    .unwrap();
            assert_eq!(run.stats, reference.stats, "seed {seed} t{threads}");
            assert_eq!(run.outcome, reference.outcome, "seed {seed} t{threads}");
        }
    }
}

#[test]
fn standard_suite_json_export_is_thread_count_invariant() {
    // This is the `reproduce --json-dir` payload: BENCH_costs.json must
    // not depend on --threads.
    let mut exports = Vec::new();
    for threads in [1usize, 2, 8] {
        let reports = standard_suite_with(&Pool::new(threads), Scale::Quick);
        let dir =
            std::env::temp_dir().join(format!("triad-par-eq-{}-t{threads}", std::process::id()));
        let path = write_bench_json(&dir, "costs", &reports).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        exports.push((threads, bytes));
    }
    let (_, reference) = &exports[0];
    assert!(!reference.is_empty());
    for (threads, bytes) in &exports[1..] {
        assert_eq!(
            bytes, reference,
            "BENCH_costs.json differs between --threads 1 and --threads {threads}"
        );
    }
}

/// ISSUE acceptance: ≥ 2× wall-clock speedup at 4 threads for amplified
/// runs with ≥ 8 repetitions on a far-graph workload.
///
/// Ignored by default: the test container exposes a single CPU, where no
/// wall-clock speedup is physically possible. Run on a multi-core host:
/// `cargo test --release -- --ignored parallel_speedup`.
#[test]
#[ignore = "needs >= 4 physical cores; run with -- --ignored on a multicore host"]
fn parallel_speedup_at_four_threads() {
    let w = planted_far(4000, 8.0, EPS, 4, 7);
    // Weak tester: most of the 16 repetitions actually run, so there is
    // parallel work to shard.
    let weak = SimultaneousTester::new(
        Tuning::practical(EPS).with_scale(0.2),
        SimProtocolKind::Low { avg_degree: 8.0 },
    );
    let time = |pool: &Pool| {
        let started = std::time::Instant::now();
        for seed in 0..6u64 {
            let _ = run_amplified_with(pool, &weak, &w.graph, &w.partition, 16, seed).unwrap();
        }
        started.elapsed()
    };
    // Warm up caches/allocator once before timing.
    let _ = time(&Pool::serial());
    let serial = time(&Pool::serial());
    let parallel = time(&Pool::new(4));
    let speedup = serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 2.0,
        "expected >= 2x at 4 threads, got {speedup:.2}x ({serial:?} vs {parallel:?})"
    );
}
