//! The payload-representation differential campaign.
//!
//! The contract under test (docs/RUNTIME.md, "Payload representations"):
//! whether a player ships its edges as a sorted list
//! (`Payload::Edges`) or as a packed bitset (`Payload::EdgeBits`) is a
//! **runtime choice with zero observable effect** — same verdicts, same
//! `CommStats`, same per-phase/player/round/direction tallies, bit for
//! bit. The `bit_len` formula is schema-identical by construction; this
//! suite pins the rest of the stack to that promise across
//!
//!   protocol × k × seed × threads
//!     × density ∈ {sparse, threshold-boundary, dense, complete}
//!     × {Local, Threaded, Tcp, fault-injection}.
//!
//! Every Edges-vs-Bits comparison reuses the SAME `PreparedInput`: a
//! `PlayerState` iterates its share from a `HashSet`, whose order is
//! stable per instance but not across instances, and the capped sim
//! protocols are order-sensitive. Sharing the players isolates the one
//! variable under test — the representation.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use triad::comm::pool::Pool;
use triad::comm::{
    run_simultaneous_collected, run_simultaneous_prepared, run_simultaneous_threaded, CostModel,
    FaultPlan, FaultRates, Payload, PayloadRepr, PlayerSession, PlayerState, Recorder, ServeConfig,
    SharedRandomness, SimMessage, SimultaneousProtocol, Tally, TcpCoordinator, TcpTransport,
    Welcome,
};
use triad::graph::generators::gnp_with_average_degree;
use triad::graph::partition::{random_disjoint, Partition};
use triad::graph::{Edge, Graph};
use triad::protocols::amplify::{run_amplified_prepared, PreparedInput};
use triad::protocols::baseline::SendEverything;
use triad::protocols::{
    run_chaos_amplified, ChaosRun, Repeatable, SimProtocolKind, SimultaneousTester, TallyRun,
    Tuning, DEFAULT_QUORUM,
};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const EPS: f64 = 0.2;
const REPS: u32 = 3;
const TIMEOUT: Duration = Duration::from_secs(20);

/// One cell of the density axis: a workload whose shares sit on a named
/// side of the `dense_kernel_wins` gate `m·128 ≥ n²`.
struct Density {
    label: &'static str,
    graph: Graph,
}

/// The four densities of the campaign matrix.
///
/// * `sparse` — avg degree 4 on n = 300: every share far below the
///   gate, `Auto` must pick edge lists throughout.
/// * `threshold-boundary` — avg degree 4 on n = 128: shares of ~m/k ≈
///   n²/128 edges straddle the gate, so `Auto` mixes representations
///   within a single round.
/// * `dense` — avg degree 40 on n = 120: every exact share clears the
///   gate, `Auto` must pick bitsets.
/// * `complete` — K₈₀: the extreme point, maximal payloads.
fn densities() -> Vec<Density> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD1FF);
    let sparse = gnp_with_average_degree(300, 4.0, &mut rng);
    let boundary = gnp_with_average_degree(128, 4.0, &mut rng);
    let dense = gnp_with_average_degree(120, 40.0, &mut rng);
    let complete = Graph::from_edges(
        80,
        (0..80u32).flat_map(|u| (u + 1..80).map(move |v| (u, v))),
    );
    vec![
        Density {
            label: "sparse",
            graph: sparse,
        },
        Density {
            label: "threshold-boundary",
            graph: boundary,
        },
        Density {
            label: "dense",
            graph: dense,
        },
        Density {
            label: "complete",
            graph: complete,
        },
    ]
}

/// Every repr-sensitive protocol, built at the given representation.
fn protocol_matrix(
    repr: PayloadRepr,
    d: f64,
    k: usize,
) -> Vec<(&'static str, Box<dyn Repeatable + Sync>)> {
    let tuning = Tuning::practical(EPS).with_repr(repr);
    let _ = k;
    vec![
        (
            "exact",
            Box::new(SendEverything::with_repr(repr)) as Box<dyn Repeatable + Sync>,
        ),
        (
            "sim-low",
            Box::new(SimultaneousTester::new(
                tuning,
                SimProtocolKind::Low { avg_degree: d },
            )),
        ),
        (
            "sim-high",
            Box::new(SimultaneousTester::new(
                tuning,
                SimProtocolKind::High { avg_degree: d },
            )),
        ),
        (
            "sim-oblivious",
            Box::new(SimultaneousTester::new(tuning, SimProtocolKind::Oblivious)),
        ),
    ]
}

/// Field-by-field equality of two tallies — the "transcripts bit for
/// bit" half of the contract.
fn assert_tallies_equal(label: &str, got: &Tally, want: &Tally) {
    assert_eq!(got.total_bits(), want.total_bits(), "{label}: total bits");
    assert_eq!(
        got.per_player_sent(),
        want.per_player_sent(),
        "{label}: per-player bits"
    );
    assert_eq!(got.by_phase(), want.by_phase(), "{label}: by_phase");
    assert_eq!(got.by_player(), want.by_player(), "{label}: by_player");
    assert_eq!(got.by_round(), want.by_round(), "{label}: by_round");
    assert_eq!(
        got.by_direction(),
        want.by_direction(),
        "{label}: by_direction"
    );
    assert_eq!(got.breakdown(), want.breakdown(), "{label}: breakdown");
}

/// The full verdict + accounting comparison for amplified runs.
fn assert_runs_equal(label: &str, got: &TallyRun, want: &TallyRun) {
    assert_eq!(got.outcome, want.outcome, "{label}: outcome");
    assert_eq!(got.stats, want.stats, "{label}: stats");
    assert_tallies_equal(label, &got.transcript, &want.transcript);
}

/// The same, for chaos runs: verdict, accounting, and the fault ledger.
fn assert_chaos_equal(label: &str, got: &ChaosRun, want: &ChaosRun) {
    assert_eq!(got.outcome, want.outcome, "{label}: outcome");
    assert_eq!(got.stats, want.stats, "{label}: stats");
    assert_eq!(got.failures, want.failures, "{label}: failures");
    assert_eq!(got.injected, want.injected, "{label}: injected");
    assert_eq!(got.survived, want.survived, "{label}: survived");
    assert_eq!(got.attempted, want.attempted, "{label}: attempted");
    assert_eq!(
        got.retransmit_bits(),
        want.retransmit_bits(),
        "{label}: retransmit bits"
    );
    assert_tallies_equal(label, &got.tally, &want.tally);
}

/// Local axis: for every density × protocol × k × seed cell, the
/// serial amplified sweep is bit-identical under `Edges`, `Bits`, and
/// `Auto`.
#[test]
fn local_runs_are_bit_identical_across_representations() {
    for density in densities() {
        let g = &density.graph;
        let d = g.average_degree().max(1.0);
        for k in [2usize, 4] {
            let mut rng = ChaCha8Rng::seed_from_u64(k as u64);
            let parts = random_disjoint(g, k, &mut rng);
            let input = PreparedInput::new(g, &parts).unwrap();
            for seed in [3u64, 11] {
                let references = protocol_matrix(PayloadRepr::Edges, d, k);
                for repr in [PayloadRepr::Bits, PayloadRepr::Auto] {
                    for ((name, reference), (_, tester)) in
                        references.iter().zip(protocol_matrix(repr, d, k))
                    {
                        let reference: &(dyn Repeatable + Sync) = reference.as_ref();
                        let tester: &(dyn Repeatable + Sync) = tester.as_ref();
                        let label = format!("{}/{name}/k={k}/seed={seed}/{repr}", density.label);
                        let want =
                            run_amplified_prepared(&Pool::serial(), &reference, &input, REPS, seed)
                                .unwrap_or_else(|e| panic!("{label}: reference failed: {e}"));
                        let got =
                            run_amplified_prepared(&Pool::serial(), &tester, &input, REPS, seed)
                                .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
                        assert_runs_equal(&label, &got, &want);
                    }
                }
            }
        }
    }
}

/// Threaded axis: the pooled amplified sweep at 2 and 4 workers agrees
/// with the serial edge-list reference for every density × protocol
/// cell, under both non-default representations.
#[test]
fn threaded_pools_preserve_representation_independence() {
    let seed = 7u64;
    let k = 3usize;
    for density in densities() {
        let g = &density.graph;
        let d = g.average_degree().max(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let parts = random_disjoint(g, k, &mut rng);
        let input = PreparedInput::new(g, &parts).unwrap();
        let references = protocol_matrix(PayloadRepr::Edges, d, k);
        for repr in [PayloadRepr::Bits, PayloadRepr::Auto] {
            for ((name, reference), (_, tester)) in
                references.iter().zip(protocol_matrix(repr, d, k))
            {
                let reference: &(dyn Repeatable + Sync) = reference.as_ref();
                let tester: &(dyn Repeatable + Sync) = tester.as_ref();
                let want = run_amplified_prepared(&Pool::serial(), &reference, &input, REPS, seed)
                    .unwrap_or_else(|e| panic!("{name}: reference failed: {e}"));
                for threads in [2usize, 4] {
                    let label = format!("{}/{name}/{repr}@{threads}", density.label);
                    let got =
                        run_amplified_prepared(&Pool::new(threads), &tester, &input, REPS, seed)
                            .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
                    assert_runs_equal(&label, &got, &want);
                }
            }
        }
    }
}

/// Threaded axis, single-round form: scoped player threads
/// (`run_simultaneous_threaded`) produce the same run as the serial
/// path at every representation. The exact baseline is the one
/// protocol whose message depends only on the sorted share, so it is
/// safe to rebuild players per call.
#[test]
fn scoped_player_threads_agree_at_every_representation() {
    for density in densities() {
        let g = &density.graph;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let parts = random_disjoint(g, 3, &mut rng);
        let shares = parts.shares();
        let shared = SharedRandomness::new(5);
        let n = g.vertex_count();
        let edges_run = run_simultaneous_threaded(
            &SendEverything::with_repr(PayloadRepr::Edges),
            n,
            shares,
            shared,
        );
        for repr in [PayloadRepr::Bits, PayloadRepr::Auto] {
            let got =
                run_simultaneous_threaded(&SendEverything::with_repr(repr), n, shares, shared);
            let label = format!("{}/{repr}", density.label);
            assert_eq!(got.output, edges_run.output, "{label}: output");
            assert_eq!(got.stats, edges_run.stats, "{label}: stats");
            assert_eq!(
                got.per_player_bits, edges_run.per_player_bits,
                "{label}: per-player bits"
            );
        }
    }
}

/// Fault-injection axis: under a deterministic fault schedule —
/// drops, crashes, corruptions, duplicates — the chaos sweep is
/// bit-identical across representations: same verdict, same fault
/// ledger, same retransmit charges, same tallies. Fault decisions
/// depend only on `(rep, player)` and bits are charged via the
/// schema-identical `bit_len`, so the representation must be invisible
/// even to failures.
#[test]
fn fault_injection_is_bit_identical_across_representations() {
    let seed = 13u64;
    let k = 3usize;
    let plans = [
        (
            "omission",
            FaultPlan::new(0xFA17, FaultRates::omission(0.3)),
        ),
        ("mixed", FaultPlan::new(0xFA18, FaultRates::mixed(0.4))),
    ];
    for density in densities() {
        let g = &density.graph;
        let d = g.average_degree().max(1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let parts = random_disjoint(g, k, &mut rng);
        let input = PreparedInput::new(g, &parts).unwrap();
        let references = protocol_matrix(PayloadRepr::Edges, d, k);
        for (plan_name, plan) in &plans {
            for repr in [PayloadRepr::Bits, PayloadRepr::Auto] {
                for ((name, reference), (_, tester)) in
                    references.iter().zip(protocol_matrix(repr, d, k))
                {
                    let reference: &(dyn Repeatable + Sync) = reference.as_ref();
                    let tester: &(dyn Repeatable + Sync) = tester.as_ref();
                    let label = format!("{}/{name}/{plan_name}/{repr}", density.label);
                    let want = run_chaos_amplified(
                        &Pool::serial(),
                        &reference,
                        &input,
                        4,
                        seed,
                        plan,
                        DEFAULT_QUORUM,
                    );
                    let got = run_chaos_amplified(
                        &Pool::serial(),
                        &tester,
                        &input,
                        4,
                        seed,
                        plan,
                        DEFAULT_QUORUM,
                    );
                    assert_chaos_equal(&label, &got, &want);
                }
            }
        }
    }
}

/// Coverage guard for the matrix above: under `Auto`, the density
/// labels really do land on the intended side of the gate, so the
/// differential is exercising both representations rather than
/// silently comparing edge lists to edge lists.
#[test]
fn auto_picks_the_intended_representation_per_density() {
    let densities = densities();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let shared = SharedRandomness::new(1);
    let exact = SendEverything::with_repr(PayloadRepr::Auto);
    let repr_of = |g: &Graph, k: usize, rng: &mut ChaCha8Rng| -> Vec<bool> {
        let parts = random_disjoint(g, k, rng);
        let input = PreparedInput::new(g, &parts).unwrap();
        input
            .players()
            .iter()
            .map(|p| {
                let msg = exact.message(p, &shared);
                msg.payloads()
                    .iter()
                    .all(|pl| matches!(pl, Payload::EdgeBits(_)))
            })
            .collect()
    };
    let sparse = repr_of(&densities[0].graph, 2, &mut rng);
    assert!(
        sparse.iter().all(|bits| !bits),
        "sparse shares must ship as edge lists under Auto"
    );
    let boundary = repr_of(&densities[1].graph, 2, &mut rng);
    // m ≈ n²/128 split two ways: the gate may fall either way per
    // share, but the workload must not be degenerate — at least the
    // gate arithmetic sits within a factor of two of the boundary.
    let m = densities[1].graph.edge_count();
    let n = densities[1].graph.vertex_count();
    assert!(
        (m * 128) * 2 >= n * n && m * 128 <= n * n * 2,
        "threshold-boundary workload drifted off the gate: m={m} n={n}"
    );
    let _ = boundary;
    let dense = repr_of(&densities[2].graph, 2, &mut rng);
    assert!(
        dense.iter().all(|bits| *bits),
        "dense shares must ship as bitsets under Auto"
    );
    let complete = repr_of(&densities[3].graph, 2, &mut rng);
    assert!(
        complete.iter().all(|bits| *bits),
        "complete-graph shares must ship as bitsets under Auto"
    );
}

// ---------------------------------------------------------------------
// TCP axis: the loopback harness, trimmed to what this suite needs.
// ---------------------------------------------------------------------

type SimResponder = Box<dyn FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>>;

/// The player side: the same responder `triad connect` builds from the
/// Welcome, so the posted message is the one the in-process transports
/// would have recorded.
fn sim_closure(w: &Welcome) -> SimResponder {
    let mut repr = PayloadRepr::Auto;
    for tok in w.params.split_whitespace() {
        if let Some(("repr", val)) = tok.split_once('=') {
            repr = val.parse().unwrap();
        }
    }
    match w.protocol.as_str() {
        "exact" => Box::new(move |s, r| SendEverything::with_repr(repr).message(s, r).into_owned()),
        _ => Box::new(|_, _| SimMessage::empty()),
    }
}

fn spawn_players(
    addr: SocketAddr,
    shares: Arc<Vec<Vec<Edge>>>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..shares.len())
        .map(|_| {
            let shares = Arc::clone(&shares);
            std::thread::spawn(move || {
                let Ok(session) = PlayerSession::connect(addr, None, TIMEOUT) else {
                    return;
                };
                let w = session.welcome().clone();
                let state =
                    PlayerState::new(w.player as usize, w.n as usize, &shares[w.player as usize]);
                let sim = sim_closure(&w);
                let _ = session.serve_until(&state, sim, None);
            })
        })
        .collect()
}

/// One loopback round: real sockets, real tag-10 frames when the
/// representation is dense. Returns the decoded messages.
fn collect_over_tcp(
    parts: &Partition,
    n: usize,
    seed: u64,
    repr: PayloadRepr,
) -> Vec<SimMessage<'static>> {
    let cfg = ServeConfig {
        k: parts.players(),
        n,
        seed,
        cost_model: CostModel::Coordinator,
        protocol: "exact".to_string(),
        params: format!("eps={EPS} d=4 repr={repr}"),
    };
    let coordinator = TcpCoordinator::bind("127.0.0.1:0").expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr");
    let shares = Arc::new(parts.shares().to_vec());
    let players = spawn_players(addr, shares);
    let mut transport: TcpTransport = coordinator
        .accept_players(&cfg, TIMEOUT)
        .expect("register all players");
    let messages = transport.collect_sim_messages().expect("collect");
    drop(transport);
    for p in players {
        p.join().unwrap();
    }
    messages
}

/// TCP axis: at every density, a loopback round under `Edges` and
/// under `Bits` both match the in-process run at the same
/// representation — and each other. The wire codec (tag 3 edge lists,
/// tag 10 bitset bodies) is invisible to verdicts and accounting.
#[test]
fn tcp_loopback_is_bit_identical_across_representations() {
    let seed = 17u64;
    for density in densities() {
        let g = &density.graph;
        let n = g.vertex_count();
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let parts = random_disjoint(g, 3, &mut rng);
        let input = PreparedInput::new(g, &parts).unwrap();
        let shared = SharedRandomness::new(seed);
        let mut runs = Vec::new();
        for repr in [PayloadRepr::Edges, PayloadRepr::Bits] {
            let label = format!("{}/{repr}", density.label);
            let messages = collect_over_tcp(&parts, n, seed, repr);
            if repr == PayloadRepr::Bits {
                assert!(
                    messages
                        .iter()
                        .flat_map(|m| m.payloads().iter())
                        .all(|p| matches!(p, Payload::EdgeBits(_))),
                    "{label}: forced-bits shares must travel as tag-10 bitset bodies"
                );
            }
            let p = SendEverything::with_repr(repr);
            let reference = run_simultaneous_prepared::<_, Tally>(&p, n, input.players(), shared);
            let tcp = run_simultaneous_collected::<_, Tally>(&p, n, messages, shared);
            assert_eq!(tcp.output, reference.output, "{label}: output");
            assert_eq!(tcp.stats, reference.stats, "{label}: stats");
            assert_tallies_equal(&label, &tcp.transcript, &reference.transcript);
            runs.push(tcp);
        }
        let label = format!("{}: edges vs bits over TCP", density.label);
        assert_eq!(runs[0].output, runs[1].output, "{label}: output");
        assert_eq!(runs[0].stats, runs[1].stats, "{label}: stats");
        assert_tallies_equal(&label, &runs[1].transcript, &runs[0].transcript);
    }
}
