//! Differential suite for the networked (TCP) coordinator.
//!
//! Three guarantees are pinned here, mirroring `docs/NETWORKING.md`:
//!
//! 1. **Wire transparency** — a fault-free run over loopback TCP is
//!    byte-identical to the in-process transports: same verdict, same
//!    [`CommStats`], same per-phase/player/round/direction rollups. The
//!    recorders charge logical payload bits, never wire bytes, so
//!    framing and checksums must be invisible to the accounting.
//! 2. **Typed degradation** — a player that walks away mid-round
//!    surfaces as a typed [`RunError`] (timeout or transport, never a
//!    panic), and the single-run verdict degrades to `Inconclusive`
//!    exactly as the in-process quorum machinery does. A verdict never
//!    flips to an accept on a faulted run.
//! 3. **Chaos conformance** — `FaultyTransport<TcpTransport>` over
//!    loopback injects the same deterministic fault schedule as
//!    `FaultyTransport<LocalTransport>` and produces identical
//!    outcomes, stats, and injected-fault counts, repetition by
//!    repetition.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use triad::comm::{
    run_simultaneous_collected, run_simultaneous_prepared, ConnectOptions, CostModel, FaultPlan,
    FaultRates, FaultyTransport, PayloadRepr, PlayerSession, PlayerState, Recorder, ResumeClaim,
    RunErrorKind, Runtime, ServeConfig, SessionOptions, SharedRandomness, SharedTransport,
    SimMessage, SimultaneousProtocol, Tally, TcpCoordinator, TcpTransport, Transport, Welcome,
};
use triad::graph::generators::gnp_with_average_degree;
use triad::graph::partition::{random_disjoint, Partition};
use triad::graph::{Edge, Graph};
use triad::protocols::amplify::PreparedInput;
use triad::protocols::baseline::SendEverything;
use triad::protocols::simultaneous::{AlgHigh, AlgLow, Oblivious};
use triad::protocols::{single_run_verdict, ChaosOutcome, Tuning, UnrestrictedTester};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const TIMEOUT: Duration = Duration::from_secs(20);

fn workload(n: usize, k: usize, graph_seed: u64) -> (Graph, Partition) {
    let mut rng = ChaCha8Rng::seed_from_u64(graph_seed);
    let g = gnp_with_average_degree(n, 6.0, &mut rng);
    let parts = random_disjoint(&g, k, &mut rng);
    (g, parts)
}

/// The one-round responder `PlayerSession::serve_until` drives.
type SimResponder = Box<dyn FnMut(&PlayerState, &SharedRandomness) -> SimMessage<'static>>;

/// The player side of every test: the same one-round responder
/// `triad connect` builds from the Welcome, so the posted message is the
/// one the in-process transports would have recorded.
fn sim_closure(w: &Welcome) -> SimResponder {
    let mut eps = 0.2f64;
    let mut d = 8.0f64;
    let mut repr = PayloadRepr::Auto;
    for tok in w.params.split_whitespace() {
        if let Some((key, val)) = tok.split_once('=') {
            match key {
                "eps" => eps = val.parse().unwrap(),
                "d" => d = val.parse().unwrap(),
                "repr" => repr = val.parse().unwrap(),
                _ => {}
            }
        }
    }
    let tuning = Tuning::practical(eps).with_repr(repr);
    match w.protocol.as_str() {
        "low" => {
            let p = AlgLow::new(tuning, d);
            Box::new(move |s, r| p.message(s, r).into_owned())
        }
        "high" => {
            let p = AlgHigh::new(tuning, d);
            Box::new(move |s, r| p.message(s, r).into_owned())
        }
        "oblivious" => {
            let p = Oblivious::new(tuning, w.k as usize);
            Box::new(move |s, r| p.message(s, r).into_owned())
        }
        "exact" => Box::new(move |s, r| SendEverything::with_repr(repr).message(s, r).into_owned()),
        _ => Box::new(|_, _| SimMessage::empty()),
    }
}

/// Spawns one player thread per share. `request_limit` simulates a
/// player that walks away after that many answered requests (the
/// disconnect-mid-round scenario); `None` serves until the coordinator
/// hangs up. Serve errors are ignored: a coordinator that simply drops
/// the socket after its run is a normal ending for a test player.
fn spawn_players(
    addr: SocketAddr,
    shares: Arc<Vec<Vec<Edge>>>,
    request_limit: Option<u64>,
) -> Vec<std::thread::JoinHandle<()>> {
    (0..shares.len())
        .map(|_| {
            let shares = Arc::clone(&shares);
            std::thread::spawn(move || {
                let Ok(session) = PlayerSession::connect(addr, None, TIMEOUT) else {
                    return;
                };
                let w = session.welcome().clone();
                let state =
                    PlayerState::new(w.player as usize, w.n as usize, &shares[w.player as usize]);
                let sim = sim_closure(&w);
                let _ = session.serve_until(&state, sim, request_limit);
            })
        })
        .collect()
}

/// Binds a loopback coordinator, spawns the players, and returns the
/// registered transport plus the player handles to join afterwards.
fn loopback_transport(
    cfg: &ServeConfig,
    shares: Arc<Vec<Vec<Edge>>>,
    request_limit: Option<u64>,
) -> (TcpTransport, Vec<std::thread::JoinHandle<()>>) {
    let coordinator = TcpCoordinator::bind("127.0.0.1:0").expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr");
    let players = spawn_players(addr, shares, request_limit);
    let transport = coordinator
        .accept_players(cfg, TIMEOUT)
        .expect("register all players");
    (transport, players)
}

fn config(protocol: &str, k: usize, n: usize, seed: u64, eps: f64, d: f64) -> ServeConfig {
    config_repr(protocol, k, n, seed, eps, d, PayloadRepr::Auto)
}

#[allow(clippy::too_many_arguments)]
fn config_repr(
    protocol: &str,
    k: usize,
    n: usize,
    seed: u64,
    eps: f64,
    d: f64,
    repr: PayloadRepr,
) -> ServeConfig {
    ServeConfig {
        k,
        n,
        seed,
        cost_model: CostModel::Coordinator,
        protocol: protocol.to_string(),
        params: format!("eps={eps} d={d} repr={repr}"),
    }
}

fn assert_tallies_equal(label: &str, tcp: &Tally, reference: &Tally) {
    assert_eq!(
        tcp.total_bits(),
        reference.total_bits(),
        "{label}: total bits"
    );
    assert_eq!(tcp.by_phase(), reference.by_phase(), "{label}: by phase");
    assert_eq!(tcp.by_player(), reference.by_player(), "{label}: by player");
    assert_eq!(tcp.by_round(), reference.by_round(), "{label}: by round");
    assert_eq!(
        tcp.by_direction(),
        reference.by_direction(),
        "{label}: by direction"
    );
}

#[test]
fn unrestricted_over_tcp_matches_local_bit_for_bit() {
    let (g, parts) = workload(240, 3, 5);
    let input = PreparedInput::new(&g, &parts).unwrap();
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    for seed in [3u64, 11] {
        let reference = tester.run_prepared_tally(&input, seed);
        let shares = Arc::new(parts.shares().to_vec());
        let cfg = config("unrestricted", 3, g.vertex_count(), seed, 0.2, 6.0);
        let (transport, players) = loopback_transport(&cfg, shares, None);
        let mut rt: Runtime<Tally> = Runtime::new_with(
            Box::new(transport),
            g.vertex_count(),
            SharedRandomness::new(seed),
            CostModel::Coordinator,
        );
        let outcome = tester.run_on(&mut rt);
        assert_eq!(rt.take_fault(), None, "seed {seed}: fault-free loopback");
        assert_eq!(
            outcome.triangle(),
            reference.outcome.triangle(),
            "seed {seed}"
        );
        assert_eq!(rt.stats(), reference.stats, "seed {seed}: stats");
        assert_tallies_equal(
            &format!("seed {seed}"),
            &rt.into_recorder(),
            &reference.transcript,
        );
        for p in players {
            p.join().unwrap();
        }
    }
}

#[test]
fn simultaneous_over_tcp_matches_prepared_bit_for_bit() {
    let (g, parts) = workload(300, 4, 7);
    let n = g.vertex_count();
    let input = PreparedInput::new(&g, &parts).unwrap();
    let tuning = Tuning::practical(0.2);
    let seed = 3u64;
    let shared = SharedRandomness::new(seed);
    // Each variant: run the referee over messages collected from real
    // sockets, then over messages computed in-process, and demand
    // identical verdicts and accounting.
    let run_tcp = |protocol: &str| {
        let shares = Arc::new(parts.shares().to_vec());
        let cfg = config(protocol, parts.players(), n, seed, 0.2, 6.0);
        let (mut transport, players) = loopback_transport(&cfg, shares, None);
        let messages = transport.collect_sim_messages().expect("collect");
        drop(transport);
        for p in players {
            p.join().unwrap();
        }
        messages
    };
    {
        let p = AlgLow::new(tuning, 6.0);
        let reference = run_simultaneous_prepared::<_, Tally>(&p, n, input.players(), shared);
        let tcp = run_simultaneous_collected::<_, Tally>(&p, n, run_tcp("low"), shared);
        assert_eq!(tcp.output, reference.output, "low: output");
        assert_eq!(tcp.stats, reference.stats, "low: stats");
        assert_tallies_equal("low", &tcp.transcript, &reference.transcript);
    }
    {
        let p = Oblivious::new(tuning, parts.players());
        let reference = run_simultaneous_prepared::<_, Tally>(&p, n, input.players(), shared);
        let tcp = run_simultaneous_collected::<_, Tally>(&p, n, run_tcp("oblivious"), shared);
        assert_eq!(tcp.output, reference.output, "oblivious: output");
        assert_eq!(tcp.stats, reference.stats, "oblivious: stats");
        assert_tallies_equal("oblivious", &tcp.transcript, &reference.transcript);
    }
    {
        let reference = run_simultaneous_prepared::<_, Tally>(
            &SendEverything::default(),
            n,
            input.players(),
            shared,
        );
        let tcp = run_simultaneous_collected::<_, Tally>(
            &SendEverything::default(),
            n,
            run_tcp("exact"),
            shared,
        );
        assert_eq!(tcp.output, reference.output, "exact: output");
        assert_eq!(tcp.stats, reference.stats, "exact: stats");
        assert_tallies_equal("exact", &tcp.transcript, &reference.transcript);
    }
}

#[test]
fn dense_exact_over_tcp_ships_bitsets_and_matches_prepared() {
    // A dense input past the density gate: every share is cheaper as a
    // packed bitset, so the tag-10 wire body carries the whole round.
    // The loopback run must stay bit-identical to the in-process path,
    // and the collected messages must actually BE bitset payloads —
    // otherwise this test would silently stop covering the codec.
    use triad::comm::Payload;
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let g = gnp_with_average_degree(120, 40.0, &mut rng);
    let parts = random_disjoint(&g, 3, &mut rng);
    let n = g.vertex_count();
    let input = PreparedInput::new(&g, &parts).unwrap();
    let seed = 13u64;
    let shared = SharedRandomness::new(seed);
    for repr in [PayloadRepr::Bits, PayloadRepr::Auto] {
        let shares = Arc::new(parts.shares().to_vec());
        let cfg = config_repr("exact", parts.players(), n, seed, 0.2, 40.0, repr);
        let (mut transport, players) = loopback_transport(&cfg, shares, None);
        let messages = transport.collect_sim_messages().expect("collect");
        drop(transport);
        for p in players {
            p.join().unwrap();
        }
        assert!(
            messages
                .iter()
                .flat_map(|m| m.payloads().iter())
                .all(|p| matches!(p, Payload::EdgeBits(_))),
            "{repr}: dense shares must travel as bitset payloads"
        );
        let p = SendEverything::with_repr(repr);
        let reference = run_simultaneous_prepared::<_, Tally>(&p, n, input.players(), shared);
        let tcp = run_simultaneous_collected::<_, Tally>(&p, n, messages, shared);
        assert_eq!(tcp.output, reference.output, "{repr}: output");
        assert_eq!(tcp.stats, reference.stats, "{repr}: stats");
        assert_tallies_equal(&format!("{repr}"), &tcp.transcript, &reference.transcript);
        // The exact baseline's verdict must also be representation-free:
        // the edge-list run agrees with the bitset run.
        let edges_ref = run_simultaneous_prepared::<_, Tally>(
            &SendEverything::with_repr(PayloadRepr::Edges),
            n,
            input.players(),
            shared,
        );
        assert_eq!(tcp.output, edges_ref.output, "{repr}: vs edge-list verdict");
        assert_eq!(
            tcp.stats.total_bits, edges_ref.stats.total_bits,
            "{repr}: vs edge-list bits"
        );
    }
}

#[test]
fn disconnect_mid_round_degrades_to_inconclusive_not_a_flip() {
    // A triangle-free path: the only honest verdicts are a clean accept
    // or an explicit refusal. Players walk away after two answered
    // requests, so the run *must* fault — and the verdict must be
    // Inconclusive, never a silent accept, never a panic.
    let g = Graph::from_edges(60, (0..59).map(|i| (i as u32, i as u32 + 1)));
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let parts = random_disjoint(&g, 3, &mut rng);
    let seed = 4u64;
    let shares = Arc::new(parts.shares().to_vec());
    let cfg = config("unrestricted", 3, g.vertex_count(), seed, 0.2, 2.0);
    let (transport, players) = loopback_transport(&cfg, shares, Some(2));
    let mut rt: Runtime<Tally> = Runtime::new_with(
        Box::new(transport),
        g.vertex_count(),
        SharedRandomness::new(seed),
        CostModel::Coordinator,
    );
    let outcome = UnrestrictedTester::new(Tuning::practical(0.2)).run_on(&mut rt);
    let fault = rt
        .take_fault()
        .expect("walked-away players must fault the run");
    assert!(
        matches!(
            fault.kind(),
            RunErrorKind::Timeout | RunErrorKind::Transport | RunErrorKind::Corrupt
        ),
        "typed delivery error expected, got {fault}"
    );
    // One-sided error survives: no witness can exist here, so the only
    // lawful verdict under a fault is an explicit refusal.
    assert_eq!(
        outcome.triangle(),
        None,
        "fabricated witness on a path graph"
    );
    assert_eq!(
        single_run_verdict(outcome, Some(&fault)),
        ChaosOutcome::Inconclusive
    );
    for p in players {
        p.join().unwrap();
    }
}

#[test]
fn rejoin_within_window_is_bit_identical_to_uninterrupted() {
    // The acceptance bar of the reconnect machinery: a player that is
    // disconnected mid-run and rejoins within the window produces a
    // final verdict, stats, and tally **bit-identical** to the
    // uninterrupted in-process run. The replay happens inside the
    // transport, below the charging layer, so the recorder never sees
    // the interruption (docs/NETWORKING.md).
    let (g, parts) = workload(240, 3, 5);
    let input = PreparedInput::new(&g, &parts).unwrap();
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    let seed = 11u64;
    let reference = tester.run_prepared_tally(&input, seed);
    let shares = Arc::new(parts.shares().to_vec());
    let cfg = config("unrestricted", 3, g.vertex_count(), seed, 0.2, 6.0);
    let coordinator = TcpCoordinator::bind("127.0.0.1:0").expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr");
    // Players 1 and 2 serve normally. Player 0 answers two requests,
    // drops its connection, then rejoins with the resume nonce from its
    // Welcome and serves on — the kill-a-player-mid-round scenario.
    let handles: Vec<_> = (0..3u32)
        .map(|j| {
            let shares = Arc::clone(&shares);
            std::thread::spawn(move || {
                let opts = ConnectOptions {
                    slot: Some(j),
                    retries: 40,
                    backoff: Duration::from_millis(10),
                    ..ConnectOptions::default()
                };
                let session = PlayerSession::connect_with(addr, &opts).unwrap();
                let w = session.welcome().clone();
                let state =
                    PlayerState::new(w.player as usize, w.n as usize, &shares[w.player as usize]);
                let mut sim = sim_closure(&w);
                if j == 0 {
                    assert_ne!(w.resume_nonce, 0, "windowed daemon must issue a nonce");
                    let _ = session.serve_until(&state, &mut sim, Some(2));
                    let rejoined = PlayerSession::rejoin_with(
                        addr,
                        &opts,
                        ResumeClaim {
                            slot: w.player,
                            nonce: w.resume_nonce,
                            last_acked: 2,
                        },
                    )
                    .unwrap();
                    let _ = rejoined.serve(&state, sim);
                } else {
                    let _ = session.serve(&state, sim);
                }
            })
        })
        .collect();
    let options = SessionOptions {
        auth_token: None,
        reconnect_window: Duration::from_secs(20),
    };
    let transport = coordinator
        .accept_players_with(&cfg, TIMEOUT, &options)
        .expect("register all players");
    let mut rt: Runtime<Tally> = Runtime::new_with(
        Box::new(transport),
        g.vertex_count(),
        SharedRandomness::new(seed),
        CostModel::Coordinator,
    );
    let outcome = tester.run_on(&mut rt);
    assert_eq!(
        rt.take_fault(),
        None,
        "a rejoin inside the window must be invisible to the run"
    );
    assert_eq!(outcome.triangle(), reference.outcome.triangle());
    assert_eq!(rt.stats(), reference.stats, "stats must be bit-identical");
    assert_tallies_equal("rejoin", &rt.into_recorder(), &reference.transcript);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn window_expiry_degrades_to_inconclusive_and_later_runs_recover() {
    // Persistent-mode liveness: run 0 loses player 0 past the reconnect
    // window — the run records a typed expiry and degrades to
    // Inconclusive, never a flipped verdict. The daemon then proceeds:
    // the window re-arms on the next run's reseed, player 0 rejoins,
    // and run 1 is bit-identical to the uninterrupted reference.
    let g = Graph::from_edges(60, (0..59).map(|i| (i as u32, i as u32 + 1)));
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let parts = random_disjoint(&g, 3, &mut rng);
    let input = PreparedInput::new(&g, &parts).unwrap();
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    let (seed0, seed1) = (4u64, 5u64);
    let reference1 = tester.run_prepared_tally(&input, seed1);
    let shares = Arc::new(parts.shares().to_vec());
    let cfg = config("unrestricted", 3, g.vertex_count(), seed0, 0.2, 2.0);
    let coordinator = TcpCoordinator::bind("127.0.0.1:0").expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr");
    let (rearm_tx, rearm_rx) = std::sync::mpsc::channel::<()>();
    let mut rearm_rx = Some(rearm_rx);
    let handles: Vec<_> = (0..3u32)
        .map(|j| {
            let shares = Arc::clone(&shares);
            let rearm_rx = if j == 0 { rearm_rx.take() } else { None };
            std::thread::spawn(move || {
                let opts = ConnectOptions {
                    slot: Some(j),
                    retries: 40,
                    backoff: Duration::from_millis(5),
                    ..ConnectOptions::default()
                };
                let session = PlayerSession::connect_with(addr, &opts).unwrap();
                let w = session.welcome().clone();
                let state =
                    PlayerState::new(w.player as usize, w.n as usize, &shares[w.player as usize]);
                let mut sim = sim_closure(&w);
                if j == 0 {
                    // Walk away in run 0 and sit out the whole window…
                    let _ = session.serve_until(&state, &mut sim, Some(2));
                    // …then rejoin only once run 1's reseed has re-armed
                    // the slot (the main thread signals after
                    // adopt_shared).
                    rearm_rx.unwrap().recv().unwrap();
                    let rejoined = PlayerSession::rejoin_with(
                        addr,
                        &opts,
                        ResumeClaim {
                            slot: w.player,
                            nonce: w.resume_nonce,
                            last_acked: 2,
                        },
                    )
                    .unwrap();
                    let _ = rejoined.serve(&state, sim);
                } else {
                    let _ = session.serve(&state, sim);
                }
            })
        })
        .collect();
    let options = SessionOptions {
        auth_token: None,
        reconnect_window: Duration::from_millis(300),
    };
    let transport = coordinator
        .accept_players_with(&cfg, TIMEOUT, &options)
        .expect("register all players");
    let handle = Arc::new(std::sync::Mutex::new(transport));
    // Run 0: the window expires with nobody rejoining.
    let mut rt0: Runtime<Tally> = Runtime::new_with(
        Box::new(SharedTransport::new(Arc::clone(&handle))),
        g.vertex_count(),
        SharedRandomness::new(seed0),
        CostModel::Coordinator,
    );
    let outcome0 = tester.run_on(&mut rt0);
    let fault = rt0.take_fault().expect("run 0 must fault on expiry");
    assert_eq!(fault.kind(), RunErrorKind::Aborted, "{fault}");
    assert!(
        fault.to_string().contains("reconnect window expired"),
        "{fault}"
    );
    assert_eq!(outcome0.triangle(), None, "no witness on a path graph");
    assert_eq!(
        single_run_verdict(outcome0, Some(&fault)),
        ChaosOutcome::Inconclusive,
        "expiry degrades, never flips"
    );
    // Run 1: the reseed re-arms the detached slot's window; player 0
    // rejoins and the run completes clean — `triad serve --runs R`
    // keeps serving after a degraded run.
    handle
        .lock()
        .unwrap()
        .adopt_shared(SharedRandomness::new(seed1));
    rearm_tx.send(()).unwrap();
    let mut rt1: Runtime<Tally> = Runtime::new_with(
        Box::new(SharedTransport::new(Arc::clone(&handle))),
        g.vertex_count(),
        SharedRandomness::new(seed1),
        CostModel::Coordinator,
    );
    let outcome1 = tester.run_on(&mut rt1);
    assert_eq!(rt1.take_fault(), None, "run 1 must be fault-free");
    assert_eq!(outcome1.triangle(), reference1.outcome.triangle());
    assert_eq!(rt1.stats(), reference1.stats, "run 1 stats");
    assert_tallies_equal("run 1", &rt1.into_recorder(), &reference1.transcript);
    handle.lock().unwrap().goodbye("done");
    drop(handle);
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn faulty_tcp_transport_matches_faulty_local_rep_by_rep() {
    // The chaos harness is the conformance suite: the deterministic
    // fault schedule is injected *above* the transport, so wrapping the
    // TCP transport must reproduce the local chaos runs exactly —
    // verdict, fault, stats, and injected-fault counts, per repetition.
    let (g, parts) = workload(200, 3, 9);
    let input = PreparedInput::new(&g, &parts).unwrap();
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    let plan = FaultPlan::new(77, FaultRates::mixed(0.05));
    let budget = 2;
    for rep in 0..4u32 {
        let seed = 100 + u64::from(rep);
        let reference = tester.run_chaos_tally(&input, seed, &plan, rep, budget);
        let shares = Arc::new(parts.shares().to_vec());
        let cfg = config("unrestricted", 3, g.vertex_count(), seed, 0.2, 6.0);
        let (transport, players) = loopback_transport(&cfg, shares, None);
        let faulty = FaultyTransport::new(transport, plan, rep);
        let counters = faulty.counters();
        let mut rt: Runtime<Tally> = Runtime::new_with(
            Box::new(faulty),
            g.vertex_count(),
            SharedRandomness::new(seed),
            CostModel::Coordinator,
        )
        .with_retry_budget(budget);
        let outcome = tester.run_on(&mut rt);
        let fault = rt.take_fault();
        let stats = rt.stats();
        let tally = rt.into_recorder();
        let injected = counters.snapshot();
        match &reference {
            Ok(chaos) => {
                // A surviving rep may still have swallowed a fault under
                // the witness exemption; only the observables must match.
                assert_eq!(
                    outcome.triangle(),
                    chaos.run.outcome.triangle(),
                    "rep {rep}: outcome"
                );
                assert_eq!(stats, chaos.run.stats, "rep {rep}: stats");
                assert_eq!(injected, chaos.injected, "rep {rep}: injected faults");
                assert_tallies_equal(&format!("rep {rep}"), &tally, &chaos.run.transcript);
            }
            Err(failed) => {
                let fault = fault.unwrap_or_else(|| panic!("rep {rep}: local failed, TCP didn't"));
                assert_eq!(fault, failed.error, "rep {rep}: error");
                assert_eq!(
                    outcome.triangle(),
                    None,
                    "rep {rep}: failed rep has no witness"
                );
                assert_eq!(stats, failed.stats, "rep {rep}: stats");
                assert_eq!(injected, failed.injected, "rep {rep}: injected faults");
                assert_tallies_equal(&format!("rep {rep}"), &tally, &failed.transcript);
            }
        }
        for p in players {
            p.join().unwrap();
        }
    }
}
