//! Equivalence and ordering relations between execution models:
//! threaded ≡ local, blackboard ≤ coordinator, symmetrization's 2/k.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::comm::{CostModel, Runtime, SharedRandomness};
use triad::graph::generators::{far_graph, TripartiteMu};
use triad::graph::partition::{random_disjoint, with_duplication};
use triad::lowerbounds::symmetrization;
use triad::protocols::baseline::SendEverything;
use triad::protocols::{Tuning, UnrestrictedTester};

#[test]
fn threaded_and_local_runtimes_are_bit_identical() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
    let parts = random_disjoint(&g, 5, &mut rng);
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    for seed in [1u64, 2, 3] {
        let shared = SharedRandomness::new(seed);
        let mut local = Runtime::local(
            g.vertex_count(),
            parts.shares(),
            shared,
            CostModel::Coordinator,
        );
        let mut threaded = Runtime::threaded(
            g.vertex_count(),
            parts.shares(),
            shared,
            CostModel::Coordinator,
        );
        let a = tester.run_on(&mut local);
        let b = tester.run_on(&mut threaded);
        assert_eq!(a, b, "verdicts diverged at seed {seed}");
        assert_eq!(
            local.stats(),
            threaded.stats(),
            "transcripts diverged at seed {seed}"
        );
    }
}

#[test]
fn blackboard_never_costs_more_than_coordinator() {
    let mut rng = ChaCha8Rng::seed_from_u64(22);
    let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
    // Heavy duplication maximizes the blackboard's dedup advantage.
    let parts = with_duplication(&g, 6, 0.6, &mut rng);
    let tuning = Tuning::practical(0.2);
    for seed in 0..3 {
        let coord = UnrestrictedTester::new(tuning)
            .run(&g, &parts, seed)
            .unwrap();
        let board = UnrestrictedTester::new(tuning)
            .with_cost_model(CostModel::Blackboard)
            .run(&g, &parts, seed)
            .unwrap();
        assert!(board.stats.total_bits <= coord.stats.total_bits);
        assert_eq!(
            board.outcome, coord.outcome,
            "cost model changed the verdict"
        );
    }
}

#[test]
fn symmetrization_ratio_and_output() {
    // Lift SendEverything over μ-style symmetric inputs; verify both the
    // referee's output and the 2/k cost ratio.
    let mu = TripartiteMu::new(24, 1.2);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let inst = mu.sample(&mut rng);
    let x = [
        inst.alice_edges().to_vec(),
        inst.bob_edges().to_vec(),
        inst.charlie_edges().to_vec(),
    ];
    let n = inst.graph().vertex_count();
    let k = 8;
    let run = symmetrization::symmetrize_once(
        &SendEverything::default(),
        n,
        &x,
        k,
        SharedRandomness::new(1),
        &mut rng,
    );
    // The embedded input contains X1 ∪ X2 ∪ X3 ⊇ the μ graph.
    assert_eq!(
        run.output.is_some(),
        triad::graph::triangles::contains_triangle(inst.graph()),
    );
    assert!(run.one_way_bits <= run.k_player_bits);
    let (ow, kp) = symmetrization::mean_cost_ratio(
        &SendEverything::default(),
        n,
        &x,
        k,
        SharedRandomness::new(1),
        60,
        &mut rng,
    );
    // X1, X2 are drawn as the "interesting" pair: ratio ≈ (|X1|+|X2|) /
    // (|X1|+|X2|+(k−2)|X3|), which for same-sized blocks is 2/k.
    let sizes: Vec<f64> = x.iter().map(|s| s.len() as f64).collect();
    let expected = (sizes[0] + sizes[1]) / (sizes[0] + sizes[1] + (k as f64 - 2.0) * sizes[2]);
    assert!(
        ((ow / kp) - expected).abs() < 0.05,
        "ratio {} vs expected {expected}",
        ow / kp
    );
}

#[test]
fn duplication_costs_more_than_disjoint_for_baseline() {
    // Shipping duplicated shares pays for every copy in the coordinator
    // model — the no-duplication corollaries' k-factor in microcosm.
    let mut rng = ChaCha8Rng::seed_from_u64(24);
    let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
    let disjoint = random_disjoint(&g, 4, &mut rng);
    let duplicated = with_duplication(&g, 4, 0.9, &mut rng);
    let a = triad::protocols::baseline::run_send_everything(&g, &disjoint, 0).unwrap();
    let b = triad::protocols::baseline::run_send_everything(&g, &duplicated, 0).unwrap();
    assert!(
        b.stats.total_bits > 2 * a.stats.total_bits,
        "90% duplication should ≈ quadruple the baseline bill ({} vs {})",
        b.stats.total_bits,
        a.stats.total_bits
    );
}
