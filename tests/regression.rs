//! Shape-regression guards: quick-scale versions of the headline
//! experiment fits, locked to the ranges the paper predicts. If a
//! protocol or cost-model change breaks a scaling exponent, this fails
//! before `reproduce` ever runs.

use triad_bench_shim::*;

/// The bench crate is not a dependency of the facade; re-derive the two
/// fits inline from the public library APIs.
mod triad_bench_shim {
    pub use rand::SeedableRng;
    pub use rand_chacha::ChaCha8Rng;
    pub use triad::graph::generators::far_graph;
    pub use triad::graph::partition::random_disjoint;
    pub use triad::protocols::{SimProtocolKind, SimultaneousTester, Tuning};

    pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
        let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
        let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
        let n = lx.len() as f64;
        let mx = lx.iter().sum::<f64>() / n;
        let my = ly.iter().sum::<f64>() / n;
        let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
        let sxx: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
        sxy / sxx
    }
}

#[test]
fn alg_low_exponent_stays_near_half() {
    let tuning = Tuning::practical(0.2);
    let d = 8.0;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in &[1000usize, 4000, 16000, 64000] {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = far_graph(n, d, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 6, &mut rng);
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d });
        let bits: u64 = (0..4)
            .map(|s| tester.run(&g, &parts, s).unwrap().stats.total_bits)
            .sum();
        xs.push(n as f64);
        ys.push(bits as f64 / 4.0);
    }
    let e = fit_exponent(&xs, &ys);
    assert!(
        (0.45..=0.75).contains(&e),
        "AlgLow exponent {e:.2} drifted out of the √n·polylog band"
    );
}

#[test]
fn alg_high_exponent_stays_near_third() {
    let tuning = Tuning::practical(0.2);
    let n = 4096usize;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &c in &[0.5f64, 0.6, 0.7, 0.8] {
        let d = (n as f64).powf(c);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = far_graph(n, d, 0.2, &mut rng).unwrap();
        let dd = g.average_degree();
        let parts = random_disjoint(&g, 6, &mut rng);
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::High { avg_degree: dd });
        let bits: u64 = (0..3)
            .map(|s| tester.run(&g, &parts, s).unwrap().stats.total_bits)
            .sum();
        xs.push(n as f64 * dd);
        ys.push(bits as f64 / 3.0);
    }
    let e = fit_exponent(&xs, &ys);
    assert!(
        (0.28..=0.45).contains(&e),
        "AlgHigh exponent {e:.2} drifted out of the (nd)^⅓ band"
    );
}

#[test]
fn exact_baseline_factor_keeps_growing() {
    // The §5 headline must never regress: testing beats exact detection
    // by a factor growing with n.
    let tuning = Tuning::practical(0.2);
    let d = 8.0;
    let mut factors = Vec::new();
    for &n in &[2000usize, 32000] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = far_graph(n, d, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 6, &mut rng);
        let exact = triad::protocols::baseline::run_send_everything(&g, &parts, 0)
            .unwrap()
            .stats
            .total_bits as f64;
        let low = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d })
            .run(&g, &parts, 1)
            .unwrap()
            .stats
            .total_bits as f64;
        factors.push(exact / low);
    }
    assert!(factors[0] > 4.0, "speedup at n=2000 only {:.1}", factors[0]);
    assert!(
        factors[1] > 2.0 * factors[0],
        "speedup must grow with n: {factors:?}"
    );
}
