//! Integration tests for the extension surfaces: H-freeness, the
//! streaming reduction, message-passing charging, and Newman's
//! conversion.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::comm::streaming::stream_as_one_way;
use triad::comm::{CostModel, Runtime, SharedRandomness};
use triad::graph::generators::{planted_copies, TripartiteMu};
use triad::graph::partition::random_disjoint;
use triad::graph::subgraphs::{greedy_copy_packing, Pattern};
use triad::lowerbounds::streaming::TriangleEdgeStream;
use triad::protocols::subgraphs::run_h_freeness;
use triad::protocols::{Tuning, UnrestrictedTester};

#[test]
fn h_freeness_pipeline_for_multiple_patterns() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let tuning = Tuning::practical(0.2);
    for pattern in [Pattern::clique(4), Pattern::cycle(5)] {
        let g = planted_copies(1200, &pattern, 100, 150, &mut rng).unwrap();
        assert!(
            greedy_copy_packing(&g, &pattern).len() >= 80,
            "generator must certify many disjoint copies"
        );
        let parts = random_disjoint(&g, 4, &mut rng);
        let d = g.average_degree();
        let hits = (0..10)
            .filter(|s| {
                run_h_freeness(tuning, pattern.clone(), &g, &parts, d, *s)
                    .unwrap()
                    .witness
                    .is_some()
            })
            .count();
        assert!(hits >= 7, "pattern found only {hits}/10 times");
    }
}

#[test]
fn streaming_reduction_matches_one_way_accounting() {
    let mu = TripartiteMu::new(96, 1.2);
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let inst = mu.sample(&mut rng);
    let alg = TriangleEdgeStream::new(SharedRandomness::new(3), 1, 128);
    let run = stream_as_one_way(alg, 288, &inst.player_inputs());
    // Two boundaries for three players; each boundary snapshot bounded by
    // the peak; total = sum of boundaries.
    assert_eq!(run.boundary_bits.len(), 2);
    assert_eq!(run.stats.total_bits, run.boundary_bits.iter().sum::<u64>());
    for b in &run.boundary_bits {
        assert!(*b <= run.peak_memory_bits);
    }
    if let Some(e) = run.output {
        assert!(triad::graph::triangles::is_triangle_edge(inst.graph(), e));
    }
}

#[test]
fn message_passing_costs_exceed_coordinator_verdict_unchanged() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let g = triad::graph::generators::far_graph(300, 6.0, 0.2, &mut rng).unwrap();
    let parts = random_disjoint(&g, 5, &mut rng);
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    let coord = tester.run(&g, &parts, 7).unwrap();
    let mp = UnrestrictedTester::new(Tuning::practical(0.2))
        .with_cost_model(CostModel::MessagePassing)
        .run(&g, &parts, 7)
        .unwrap();
    assert_eq!(
        coord.outcome, mp.outcome,
        "routing overhead must not change verdicts"
    );
    assert!(mp.stats.total_bits > coord.stats.total_bits);
    // Overhead is exactly ⌈log₂ k⌉ per message.
    let per_msg = (5f64).log2().ceil() as u64;
    assert_eq!(
        mp.stats.total_bits - coord.stats.total_bits,
        per_msg * mp.stats.messages,
    );
}

#[test]
fn newman_conversion_is_consistent_across_parties() {
    let shares = vec![vec![], vec![], vec![]];
    let base = SharedRandomness::new(99);
    let mut rt1 = Runtime::local(10, &shares, base, CostModel::Coordinator);
    let mut rt2 = Runtime::local(10, &shares, base, CostModel::Coordinator);
    let s1 = rt1.announce_seed_from_family(256);
    let s2 = rt2.announce_seed_from_family(256);
    assert_eq!(
        s1.seed(),
        s2.seed(),
        "same base seed ⇒ same announced index"
    );
    // Announcement billed to every player (binary length of 256 is 9).
    assert_eq!(rt1.stats().total_bits, 3 * 9);
    // Blackboard: billed once.
    let mut rt3 = Runtime::local(10, &shares, base, CostModel::Blackboard);
    rt3.announce_seed_from_family(256);
    assert_eq!(rt3.stats().total_bits, 9);
}
