//! Coarse scaling sanity checks on communication costs — the fast inline
//! versions of the bench harness's exponent fits.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::graph::generators::far_graph;
use triad::graph::partition::random_disjoint;
use triad::protocols::baseline::run_send_everything;
use triad::protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

fn mean_bits<F: Fn(u64) -> u64>(trials: u64, f: F) -> f64 {
    (0..trials).map(f).sum::<u64>() as f64 / trials as f64
}

#[test]
fn sim_low_scales_sublinearly_in_n() {
    // AlgLow is Õ(k√n): growing n by 16× at fixed d should grow cost by
    // roughly 4×, certainly far below 16×.
    let tuning = Tuning::practical(0.2);
    let d = 6.0;
    let mut costs = Vec::new();
    for &n in &[500usize, 8000] {
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let g = far_graph(n, d, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d });
        costs.push(mean_bits(5, |s| {
            tester.run(&g, &parts, s).unwrap().stats.total_bits
        }));
    }
    let ratio = costs[1] / costs[0];
    assert!(
        ratio < 10.0,
        "16× n grew AlgLow cost {ratio:.1}× — not Õ(√n)-like ({costs:?})"
    );
    assert!(ratio > 1.5, "cost should still grow with n ({costs:?})");
}

#[test]
fn baseline_scales_linearly_in_m() {
    let mut costs = Vec::new();
    for &n in &[500usize, 4000] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = far_graph(n, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let run = run_send_everything(&g, &parts, 0).unwrap();
        costs.push((g.edge_count() as f64, run.stats.total_bits as f64));
    }
    let per_edge_small = costs[0].1 / costs[0].0;
    let per_edge_big = costs[1].1 / costs[1].0;
    // Per-edge cost grows only with log n (vertex id width).
    assert!(per_edge_big / per_edge_small < 1.6, "{costs:?}");
}

#[test]
fn testers_beat_exact_baseline_at_moderate_scale() {
    let n = 6000;
    let d = 10.0;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = far_graph(n, d, 0.2, &mut rng).unwrap();
    let parts = random_disjoint(&g, 6, &mut rng);
    let tuning = Tuning::practical(0.2);
    let exact = run_send_everything(&g, &parts, 0).unwrap().stats.total_bits;
    let low = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d })
        .run(&g, &parts, 1)
        .unwrap()
        .stats
        .total_bits;
    let unrestricted = UnrestrictedTester::new(tuning)
        .run(&g, &parts, 2)
        .unwrap()
        .stats
        .total_bits;
    assert!(
        low * 4 < exact,
        "AlgLow ({low}) should be ≪ exact ({exact})"
    );
    assert!(
        unrestricted < exact,
        "unrestricted ({unrestricted}) should undercut exact ({exact})"
    );
}

#[test]
fn per_player_cap_bounds_max_message() {
    // The simultaneous protocols' defining feature: no player's message
    // exceeds the cap regardless of how skewed its share is.
    let n = 2000;
    let d = 8.0;
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = far_graph(n, d, 0.2, &mut rng).unwrap();
    // Adversarially skewed: player 0 owns almost everything.
    let mut shares = vec![g.edges().to_vec(), vec![], vec![], vec![]];
    shares[1].push(g.edges()[0]);
    let parts = triad::graph::partition::Partition::new(shares);
    let tuning = Tuning::practical(0.2);
    let run = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d })
        .run(&g, &parts, 1)
        .unwrap();
    let cap_edges = tuning.low_cap(n, d) as u64;
    let bits_per_edge = 2 * 11; // n = 2000 ⇒ 11-bit ids
    assert!(
        run.stats.max_player_sent_bits <= cap_edges * bits_per_edge + 64,
        "max message {} exceeds cap {} edges",
        run.stats.max_player_sent_bits,
        cap_edges
    );
}

#[test]
fn oblivious_overhead_over_aware_is_polylog() {
    let n = 4000;
    let d = 8.0;
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let g = far_graph(n, d, 0.2, &mut rng).unwrap();
    let parts = random_disjoint(&g, 6, &mut rng);
    let tuning = Tuning::practical(0.2);
    let aware = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d });
    let obl = SimultaneousTester::new(tuning, SimProtocolKind::Oblivious);
    let aware_bits = mean_bits(5, |s| aware.run(&g, &parts, s).unwrap().stats.total_bits);
    let obl_bits = mean_bits(5, |s| obl.run(&g, &parts, s).unwrap().stats.total_bits);
    let ratio = obl_bits / aware_bits;
    assert!(
        ratio < 60.0,
        "oblivious/aware = {ratio:.1} — should be a polylog factor, not polynomial"
    );
}
