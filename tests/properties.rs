//! Property-based tests (proptest) on the substrate invariants the
//! protocols rely on.

use proptest::prelude::*;
use std::collections::HashSet;
use triad::comm::pool::Pool;
use triad::comm::{
    bits, mix64, BitCost, CommStats, Direction, Payload, SharedRandomness, Transcript,
};
use triad::graph::{buckets, distance, triangles, Edge, Graph, GraphBuilder, VertexId};

/// Strategy: a random edge list over `n` vertices.
fn edge_list(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..max_edges)
        .prop_map(|pairs| pairs.into_iter().filter(|(a, b)| a != b).collect())
}

fn build(n: usize, pairs: &[(u32, u32)]) -> Graph {
    let mut b = GraphBuilder::new(n);
    for (a, bb) in pairs {
        b.add_edge(Edge::new(VertexId(*a), VertexId(*bb)));
    }
    b.build()
}

/// One recorded transcript operation: `(player, bits, label index,
/// direction index, advance round first)`.
type TranscriptOp = (usize, u64, usize, usize, bool);

/// Strategy: an arbitrary transcript script over `k` players, including
/// empty scripts and rounds with no events.
fn transcript_ops(max_ops: usize) -> impl Strategy<Value = Vec<TranscriptOp>> {
    // The vendored proptest shim implements `Strategy` for tuples of at
    // most four elements, so the five fields are nested and flattened.
    prop::collection::vec(
        ((0..8usize, 0..64u64), (0..3usize, 0..3usize, any::<bool>()))
            .prop_map(|((p, bits), (li, di, advance))| (p, bits, li, di, advance)),
        0..max_ops,
    )
}

fn build_transcript(k: usize, ops: &[TranscriptOp]) -> Transcript {
    const LABELS: [&str; 3] = ["probe", "sample", "reply"];
    let mut t = Transcript::new(k);
    for &(p, bits, li, di, advance) in ops {
        if advance {
            t.next_round();
        }
        let dir = match di {
            0 => Direction::ToPlayer,
            1 => Direction::ToCoordinator,
            _ => Direction::Broadcast,
        };
        let player = if dir == Direction::Broadcast {
            None
        } else {
            Some(p % k.max(1))
        };
        t.record(player, dir, BitCost(bits), LABELS[li]);
    }
    t
}

/// Strategy: arbitrary (bounded) communication statistics.
fn comm_stats() -> impl Strategy<Value = CommStats> {
    (0..1u64 << 40, 0..1u64 << 20, 0..1u64 << 20, 0..1u64 << 40).prop_map(
        |(total_bits, rounds, messages, max_player_sent_bits)| CommStats {
            total_bits,
            rounds,
            messages,
            max_player_sent_bits,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_degrees_sum_to_twice_edges(pairs in edge_list(40, 120)) {
        let g = build(40, &pairs);
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, 2 * g.edge_count());
    }

    #[test]
    fn has_edge_agrees_with_edge_list(pairs in edge_list(30, 80)) {
        let g = build(30, &pairs);
        let set: HashSet<Edge> = g.edges().iter().copied().collect();
        for a in 0..30u32 {
            for b in (a + 1)..30 {
                let e = Edge::new(VertexId(a), VertexId(b));
                prop_assert_eq!(g.has_edge(e), set.contains(&e));
            }
        }
    }

    #[test]
    fn triangle_count_matches_enumeration(pairs in edge_list(25, 100)) {
        let g = build(25, &pairs);
        let ts = triangles::enumerate_triangles(&g);
        prop_assert_eq!(ts.len() as u64, triangles::count_triangles(&g));
        let unique: HashSet<_> = ts.iter().collect();
        prop_assert_eq!(unique.len(), ts.len(), "no duplicate triangles");
        for t in &ts {
            prop_assert!(t.exists_in(&g));
        }
    }

    #[test]
    fn packing_is_edge_disjoint_and_certifies(pairs in edge_list(25, 100)) {
        let g = build(25, &pairs);
        let packing = triangles::greedy_triangle_packing(&g);
        let mut used = HashSet::new();
        for t in &packing {
            prop_assert!(t.exists_in(&g));
            for e in t.edges() {
                prop_assert!(used.insert(e), "edge reused across packed triangles");
            }
        }
        // Packing is maximal: after removing one edge per packed triangle
        // *all three*, no triangle may remain that is edge-disjoint from
        // the packing. Weaker checkable fact: if there is any triangle,
        // and the packing is empty, that is a bug.
        if triangles::contains_triangle(&g) {
            prop_assert!(!packing.is_empty());
        }
        let bounds = distance::distance_bounds(&g);
        prop_assert!(bounds.lower <= bounds.upper);
    }

    #[test]
    fn hitting_set_removal_destroys_all_triangles(pairs in edge_list(20, 60)) {
        let g = build(20, &pairs);
        let removed: HashSet<Edge> =
            distance::greedy_hitting_removal(&g).into_iter().collect();
        prop_assert!(distance::is_triangle_free(&g.without_edges(&removed)));
    }

    #[test]
    fn bucketing_is_a_partition_of_non_isolated(pairs in edge_list(40, 120)) {
        let g = build(40, &pairs);
        let b = buckets::Bucketing::new(&g);
        let mut assigned = 0usize;
        for i in 0..b.num_buckets() {
            for v in b.bucket(i) {
                let d = g.degree(*v);
                prop_assert!(d as u64 >= buckets::d_minus(i));
                prop_assert!((d as u64) < buckets::d_plus(i));
                assigned += 1;
            }
        }
        let non_isolated = g.vertices().filter(|v| g.degree(*v) > 0).count();
        prop_assert_eq!(assigned, non_isolated);
    }

    #[test]
    fn payload_bit_len_is_monotone_in_content(
        edges_a in edge_list(64, 20),
        edges_b in edge_list(64, 20),
    ) {
        let to_edges = |pairs: &[(u32, u32)]| -> Vec<Edge> {
            pairs.iter().map(|(a, b)| Edge::new(VertexId(*a), VertexId(*b))).collect()
        };
        let a = to_edges(&edges_a);
        let mut both = a.clone();
        both.extend(to_edges(&edges_b));
        let n = 64;
        prop_assert!(
            Payload::Edges(a.into()).bit_len(n) <= Payload::Edges(both.into()).bit_len(n)
        );
    }

    #[test]
    fn bits_per_vertex_is_sufficient(n in 2usize..100_000) {
        let width = bits::bits_per_vertex(n);
        prop_assert!(1u64 << width >= n as u64, "width {width} cannot address {n}");
        prop_assert!(width <= 17);
    }

    #[test]
    fn shared_randomness_is_pure(seed in any::<u64>(), tag in any::<u64>(), item in any::<u64>()) {
        let s1 = SharedRandomness::new(seed);
        let s2 = SharedRandomness::new(seed);
        prop_assert_eq!(s1.value(tag, item), s2.value(tag, item));
        let u = s1.unit(tag, item);
        prop_assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn partition_union_has_no_new_edges(pairs in edge_list(30, 80), k in 1usize..6) {
        let g = build(30, &pairs);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        use rand::SeedableRng;
        let parts = triad::graph::partition::random_disjoint(&g, k, &mut rng);
        prop_assert!(parts.covers(&g));
        prop_assert!(parts.is_disjoint());
        let all: HashSet<Edge> = g.edges().iter().copied().collect();
        for share in parts.shares() {
            for e in share {
                prop_assert!(all.contains(e));
            }
        }
    }

    #[test]
    fn comm_stats_merged_is_associative_with_identity(
        a in comm_stats(), b in comm_stats(), c in comm_stats(),
    ) {
        // The parallel engine folds per-repetition stats in repetition
        // order; associativity is what makes the grouping irrelevant.
        prop_assert_eq!(a.merged(b).merged(c), a.merged(b.merged(c)));
        prop_assert_eq!(a.merged(CommStats::default()), a);
        prop_assert_eq!(CommStats::default().merged(a), a);
    }

    #[test]
    fn transcript_absorb_is_associative(
        k in 1usize..4,
        ops_a in transcript_ops(12),
        ops_b in transcript_ops(12),
        ops_c in transcript_ops(12),
    ) {
        // ((a ⊕ b) ⊕ c) — transcripts are rebuilt per side because
        // `absorb` mutates in place.
        let mut left = build_transcript(k, &ops_a);
        left.absorb(&build_transcript(k, &ops_b));
        left.absorb(&build_transcript(k, &ops_c));
        // (a ⊕ (b ⊕ c))
        let mut bc = build_transcript(k, &ops_b);
        bc.absorb(&build_transcript(k, &ops_c));
        let mut right = build_transcript(k, &ops_a);
        right.absorb(&bc);
        prop_assert_eq!(left.round(), right.round());
        prop_assert_eq!(left.events(), right.events());
        prop_assert_eq!(left.stats(), right.stats());
    }

    #[test]
    fn transcript_absorbing_pristine_is_identity(
        k in 1usize..4,
        ops in transcript_ops(12),
    ) {
        let reference = build_transcript(k, &ops);
        let mut absorbed = build_transcript(k, &ops);
        absorbed.absorb(&Transcript::new(k));
        prop_assert_eq!(absorbed.round(), reference.round());
        prop_assert_eq!(absorbed.events(), reference.events());
        prop_assert_eq!(absorbed.stats(), reference.stats());
    }

    #[test]
    fn vee_closing_matches_graph(pairs in edge_list(15, 40)) {
        let g = build(15, &pairs);
        // Every vee of every vertex closes iff the closing edge exists.
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            for (i, a) in nbrs.iter().enumerate() {
                for b in &nbrs[i + 1..] {
                    let vee = triangles::Vee::new(v, *a, *b);
                    let closed = vee.close_in(&g).is_some();
                    prop_assert_eq!(closed, g.has_edge(Edge::new(*a, *b)));
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn protocol_witnesses_are_sound_on_arbitrary_inputs(
        pairs in edge_list(40, 160),
        k in 2usize..5,
        seed in 0u64..1000,
    ) {
        // The one-sided guarantee must hold for ARBITRARY inputs, not just
        // promise-respecting ones.
        let g = build(40, &pairs);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        use rand::SeedableRng;
        let parts = triad::graph::partition::random_disjoint(&g, k, &mut rng);
        let tuning = triad::protocols::Tuning::practical(0.25);
        let run = triad::protocols::UnrestrictedTester::new(tuning)
            .run(&g, &parts, seed)
            .unwrap();
        if let Some(t) = run.outcome.triangle() {
            prop_assert!(t.exists_in(&g));
        }
        let sim = triad::protocols::SimultaneousTester::new(
            tuning,
            triad::protocols::SimProtocolKind::Oblivious,
        )
        .run(&g, &parts, seed)
        .unwrap();
        if let Some(t) = sim.outcome.triangle() {
            prop_assert!(t.exists_in(&g));
        }
    }

    #[test]
    fn pool_ordered_map_is_thread_count_invariant(n in 0usize..40, salt in any::<u64>()) {
        let f = |i: usize| mix64(salt ^ i as u64);
        let serial: Vec<u64> = (0..n).map(f).collect();
        for threads in [1usize, 2, 3, 8] {
            prop_assert_eq!(
                Pool::new(threads).ordered_map(n, f),
                serial.clone(),
                "threads = {}",
                threads
            );
        }
    }

    #[test]
    fn pool_ordered_map_until_returns_the_serial_prefix(
        n in 0usize..40,
        salt in any::<u64>(),
        modulus in 1u64..9,
    ) {
        // Whatever the interleaving, the early-exit map must return
        // exactly what a serial loop stopping at the first hit returns.
        let f = |i: usize| mix64(salt ^ i as u64);
        let stop = |v: &u64| v.is_multiple_of(modulus);
        let mut expected = Vec::new();
        for i in 0..n {
            let v = f(i);
            let hit = stop(&v);
            expected.push(v);
            if hit {
                break;
            }
        }
        for threads in [1usize, 2, 3, 8] {
            prop_assert_eq!(
                Pool::new(threads).ordered_map_until(n, f, stop),
                expected.clone(),
                "threads = {}",
                threads
            );
        }
    }

    #[test]
    fn triangle_kernels_agree_with_naive_at_every_thread_count(
        pairs in edge_list(32, 180),
        n in 32usize..40,
    ) {
        use triad::graph::kernels::{self, naive};
        let g = build(n, &pairs);
        let count = naive::count_triangles(&g);
        prop_assert_eq!(kernels::count_triangles(&g), count);
        prop_assert_eq!(kernels::enumerate_triangles(&g), naive::enumerate_triangles(&g));
        prop_assert_eq!(kernels::triangle_edges(&g), naive::triangle_edges(&g));
        for threads in [1usize, 2, 8] {
            let pool = Pool::new(threads);
            prop_assert_eq!(
                kernels::count_triangles_par(&g, &pool),
                count,
                "threads = {}",
                threads
            );
            prop_assert_eq!(
                kernels::triangle_edges_par(&g, &pool),
                naive::triangle_edges(&g),
                "threads = {}",
                threads
            );
        }
    }

    #[test]
    fn view_hitting_removal_is_deterministic_and_leaves_triangle_free(
        pairs in edge_list(28, 140),
    ) {
        let g = build(28, &pairs);
        let removed = distance::greedy_hitting_removal(&g);
        // Determinism: a second run reproduces the exact sequence.
        prop_assert_eq!(&removed, &distance::greedy_hitting_removal(&g));
        // The sequence matches the rebuild-per-removal reference loop.
        prop_assert_eq!(
            &removed,
            &triad::graph::kernels::naive::greedy_hitting_removal(&g)
        );
        // And it is a hitting set: no triangle survives.
        let rm: HashSet<Edge> = removed.into_iter().collect();
        prop_assert!(distance::is_triangle_free(&g.without_edges(&rm)));
    }

    #[test]
    fn bm_reduction_dichotomy(n_pairs in 2usize..24, seed in 0u64..500, zero_side in any::<bool>()) {
        use triad::graph::generators::{BmInstance, BmSide};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        use rand::SeedableRng;
        let side = if zero_side { BmSide::AllZero } else { BmSide::AllOne };
        let inst = BmInstance::sample(n_pairs, side, &mut rng);
        let g = inst.reduction_graph();
        match side {
            BmSide::AllOne => prop_assert!(distance::is_triangle_free(&g)),
            BmSide::AllZero => {
                let packing = triangles::greedy_triangle_packing(&g);
                prop_assert!(packing.len() >= n_pairs);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A random graph, split into player shares, survives the round
    /// trip through the bitset payload exactly: packing a share into
    /// `Payload::EdgeBits` and reading it back yields the player's
    /// deduplicated share, edge for edge, at every density the
    /// strategy reaches (n = 80 with up to 400 edges spans both sides
    /// of the `dense_kernel_wins` gate at 50 edges).
    #[test]
    fn bitset_payload_roundtrips_each_share_exactly(
        pairs in edge_list(80, 400),
        k in 1usize..5,
    ) {
        use std::borrow::Cow;
        use triad::comm::{PayloadRepr, PlayerState};
        let n = 80usize;
        let g = build(n, &pairs);
        // Deterministic share split: edge i goes to player i mod k.
        let mut shares = vec![Vec::new(); k];
        for (i, e) in g.edges().iter().enumerate() {
            shares[i % k].push(*e);
        }
        for share in &shares {
            let player = PlayerState::new(0, n, share);
            let payload = Payload::edge_set(
                PayloadRepr::Bits,
                n,
                Cow::Borrowed(player.share()),
            );
            prop_assert!(matches!(payload, Payload::EdgeBits(_)));
            let back: Vec<Edge> = payload.iter_edges().collect();
            // Canonical bitset order is sorted; the share is sorted too.
            prop_assert_eq!(&back, &player.share().to_vec());
            // And the player's cached bitset agrees with the payload.
            prop_assert_eq!(
                player.share_bitset().len(),
                player.share().len()
            );
        }
    }

    /// `bit_len` follows the closed form `bits_for_count(m) +
    /// m·bits_per_edge(n)` for BOTH representations at every density,
    /// and `Auto` — whichever side of the gate it lands on — never
    /// changes the cost. Representation is invisible to accounting.
    #[test]
    fn edge_set_bit_len_matches_closed_form_at_every_density(
        pairs in edge_list(80, 400),
        small_pairs in edge_list(24, 60),
    ) {
        use std::borrow::Cow;
        use triad::comm::PayloadRepr;
        for (n, ps) in [(80usize, &pairs), (24usize, &small_pairs)] {
            let g = build(n, ps);
            let m = g.edge_count() as u64;
            let expected = bits::bits_for_count(m) + m * bits::bits_per_edge(n);
            let mut costs = Vec::new();
            for repr in [PayloadRepr::Edges, PayloadRepr::Bits, PayloadRepr::Auto] {
                let p = Payload::edge_set(repr, n, Cow::Borrowed(g.edges()));
                prop_assert_eq!(
                    p.bit_len(n).get(),
                    expected,
                    "repr {} at n={} m={}",
                    repr,
                    n,
                    m
                );
                costs.push(p.bit_len(n).get());
            }
            prop_assert!(costs.windows(2).all(|w| w[0] == w[1]));
        }
    }
}
