//! Differential suite for the recorder fast path: the counters-only
//! [`Tally`] sweep must agree with the full-[`Transcript`] sweep on
//! every protocol, every seed, every player count, and every thread
//! count — field by field, not just in total.
//!
//! Also pins the exported `BENCH_costs.json` (schema v1) bytes against
//! the checked-in golden file, so recorder and prepared-input plumbing
//! can never silently shift the observable cost schema.

use proptest::prelude::*;
use triad::comm::pool::Pool;
use triad::comm::{Recorder, Tally, Transcript};
use triad::graph::generators::gnp_with_average_degree;
use triad::graph::partition::{random_disjoint, Partition};
use triad::graph::Graph;
use triad::protocols::amplify::{run_amplified_prepared, run_amplified_with, PreparedInput};
use triad::protocols::baseline::SendEverything;
use triad::protocols::{
    Repeatable, SimProtocolKind, SimultaneousTester, TallyRun, Tuning, UnrestrictedTester,
};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A small pinned workload: dense enough that protocols exchange real
/// bits, small enough that proptest cases stay fast.
fn workload(n: usize, k: usize, graph_seed: u64) -> (Graph, Partition) {
    let mut rng = ChaCha8Rng::seed_from_u64(graph_seed);
    let g = gnp_with_average_degree(n, 6.0, &mut rng);
    let parts = random_disjoint(&g, k, &mut rng);
    (g, parts)
}

/// Asserts a tally-path run agrees with a transcript-path run on every
/// comparable field.
fn assert_equivalent(
    label: &str,
    reference: &triad::protocols::ProtocolRun,
    fast: &TallyRun,
    threads: usize,
) {
    let t: &Transcript = &reference.transcript;
    let y: &Tally = &fast.transcript;
    assert_eq!(
        fast.outcome, reference.outcome,
        "{label}@{threads}: outcome"
    );
    assert_eq!(fast.stats, reference.stats, "{label}@{threads}: stats");
    assert_eq!(
        y.total_bits(),
        t.total_bits(),
        "{label}@{threads}: total bits"
    );
    assert_eq!(
        y.per_player_sent(),
        t.per_player_sent(),
        "{label}@{threads}: per-player bits"
    );
    assert_eq!(y.by_phase(), t.by_phase(), "{label}@{threads}: by_phase");
    assert_eq!(y.by_player(), t.by_player(), "{label}@{threads}: by_player");
    assert_eq!(y.by_round(), t.by_round(), "{label}@{threads}: by_round");
    assert_eq!(
        y.by_direction(),
        t.by_direction(),
        "{label}@{threads}: by_direction"
    );
    assert_eq!(y.breakdown(), t.breakdown(), "{label}@{threads}: breakdown");
}

/// Runs one tester both ways at several thread counts and compares.
fn check_tester<T: Repeatable + Sync>(
    label: &str,
    tester: &T,
    g: &Graph,
    parts: &Partition,
    reps: u32,
    seed: u64,
) {
    let reference = run_amplified_with(&Pool::serial(), tester, g, parts, reps, seed)
        .unwrap_or_else(|e| panic!("{label}: reference run failed: {e}"));
    let input = PreparedInput::new(g, parts).unwrap();
    for threads in [1usize, 2, 4] {
        let fast = run_amplified_prepared(&Pool::new(threads), tester, &input, reps, seed)
            .unwrap_or_else(|e| panic!("{label}@{threads}: fast run failed: {e}"));
        assert_equivalent(label, &reference, &fast, threads);
    }
}

/// Dispatches a protocol index to a concrete tester (the vendored
/// proptest shim has no trait-object strategies).
fn check_protocol(idx: usize, g: &Graph, parts: &Partition, reps: u32, seed: u64) {
    let tuning = Tuning::practical(0.2);
    let d = g.average_degree().max(0.1);
    match idx {
        0 => check_tester("exact", &SendEverything::default(), g, parts, reps, seed),
        1 => check_tester(
            "sim-low",
            &SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d }),
            g,
            parts,
            reps,
            seed,
        ),
        2 => check_tester(
            "sim-high",
            &SimultaneousTester::new(tuning, SimProtocolKind::High { avg_degree: d }),
            g,
            parts,
            reps,
            seed,
        ),
        3 => check_tester(
            "sim-oblivious",
            &SimultaneousTester::new(tuning, SimProtocolKind::Oblivious),
            g,
            parts,
            reps,
            seed,
        ),
        _ => check_tester(
            "unrestricted",
            &UnrestrictedTester::new(tuning),
            g,
            parts,
            reps,
            seed,
        ),
    }
}

proptest! {
    /// The headline differential property: for random (protocol, seed,
    /// player count), the Tally fast path is indistinguishable from the
    /// Transcript path at 1, 2 and 4 threads.
    #[test]
    fn tally_sweep_matches_transcript_sweep(
        idx in 0..5usize,
        k in 2..6usize,
        seed in 0..1_000_000u64,
        graph_seed in 0..4u64,
    ) {
        let (g, parts) = workload(80, k, graph_seed);
        check_protocol(idx, &g, &parts, 3, seed);
    }
}

/// Deterministic anchor for the property above: every protocol at a
/// pinned workload, so a differential failure reproduces without a
/// proptest seed.
#[test]
fn every_protocol_is_recorder_invariant_at_pinned_seed() {
    let (g, parts) = workload(150, 4, 9);
    for idx in 0..5 {
        check_protocol(idx, &g, &parts, 4, 42);
    }
}

/// `BENCH_costs.json` (schema v1) must stay byte-identical to the golden
/// file generated before the recorder fast path existed — the Tally
/// plumbing is observably free.
#[test]
fn bench_costs_json_matches_pre_recorder_golden() {
    let reports = triad_bench::report::standard_suite_with(
        &Pool::serial(),
        triad_bench::experiments::Scale::Quick,
    );
    let mut fresh = Vec::new();
    triad::comm::write_reports_json(&reports, &mut fresh).unwrap();
    let golden = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/BENCH_costs_quick.json"
    ))
    .expect("golden BENCH_costs_quick.json is checked in");
    assert_eq!(
        fresh, golden,
        "BENCH_costs.json bytes drifted from the pre-recorder golden"
    );
}

/// The golden bytes are also thread-count invariant.
#[test]
fn bench_costs_json_is_thread_invariant() {
    let quick = triad_bench::experiments::Scale::Quick;
    let serial = triad_bench::report::standard_suite_with(&Pool::serial(), quick);
    for threads in [2usize, 4] {
        let pooled = triad_bench::report::standard_suite_with(&Pool::new(threads), quick);
        let (mut a, mut b) = (Vec::new(), Vec::new());
        triad::comm::write_reports_json(&serial, &mut a).unwrap();
        triad::comm::write_reports_json(&pooled, &mut b).unwrap();
        assert_eq!(a, b, "BENCH_costs.json bytes depend on {threads} threads");
    }
}
