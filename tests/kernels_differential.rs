//! Differential conformance for the triangle kernel layer.
//!
//! Every fast path in `triad::graph::kernels` is pinned against the
//! preserved pre-kernel reference implementations
//! (`triad::graph::kernels::naive`) on a seed × generator matrix, and
//! the parallel kernels additionally across a thread-count matrix
//! (1, 2, 8 — plus whatever `TRIAD_THREADS` says when CI runs the
//! thread matrix). The contract (docs/KERNELS.md, docs/PARALLELISM.md):
//!
//! * counts, enumerations and triangle-edge filters are equal to the
//!   naive implementations, bit for bit, at any thread count;
//! * the view-based greedy loops (`distance::greedy_hitting_removal`,
//!   `triangles::greedy_triangle_packing`) produce the *same sequences*
//!   as the rebuild-per-removal loops they replaced;
//! * two runs of the greedy removal yield the identical `Vec` — the
//!   `HashSet`-iteration-order nondeterminism is gone;
//! * `distance::exact_distance` (forbidden-set pruned, view-backed) is
//!   unchanged on small instances.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad::comm::pool::Pool;
use triad::graph::generators::{far_graph, gnp, TripartiteMu};
use triad::graph::kernels::{self, naive, DeletionView};
use triad::graph::{distance, triangles, Graph};

const SEEDS: [u64; 4] = [1, 7, 42, 1000003];
const THREADS: [usize; 3] = [1, 2, 8];

/// The generator matrix: one small instance per (kind, seed).
fn workloads(seed: u64) -> Vec<(String, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();
    out.push((format!("gnp-sparse-{seed}"), gnp(120, 0.03, &mut rng)));
    out.push((format!("gnp-dense-{seed}"), gnp(48, 0.25, &mut rng)));
    out.push((
        format!("planted-far-{seed}"),
        far_graph(160, 6.0, 0.2, &mut rng).expect("far_graph parameters are valid"),
    ));
    out.push((
        format!("tripartite-{seed}"),
        TripartiteMu::new(24, 1.0).sample(&mut rng).graph().clone(),
    ));
    out
}

#[test]
fn kernel_counts_and_enumerations_match_naive() {
    for seed in SEEDS {
        for (name, g) in workloads(seed) {
            assert_eq!(
                kernels::count_triangles(&g),
                naive::count_triangles(&g),
                "{name}: count"
            );
            assert_eq!(
                kernels::enumerate_triangles(&g),
                naive::enumerate_triangles(&g),
                "{name}: enumeration"
            );
            assert_eq!(
                kernels::triangle_edges(&g),
                naive::triangle_edges(&g),
                "{name}: triangle edges"
            );
            // Witnesses may differ between kernel and naive scan, but
            // both must agree on existence and be real triangles.
            match (kernels::find_triangle(&g), naive::find_triangle(&g)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert!(a.exists_in(&g), "{name}: kernel witness invalid");
                    assert!(b.exists_in(&g), "{name}: naive witness invalid");
                }
                (a, b) => panic!("{name}: existence disagreement {a:?} vs {b:?}"),
            }
        }
    }
}

#[test]
fn parallel_kernels_are_thread_count_independent() {
    for seed in SEEDS {
        for (name, g) in workloads(seed) {
            let count = naive::count_triangles(&g);
            let edges = naive::triangle_edges(&g);
            for threads in THREADS {
                let pool = Pool::new(threads);
                assert_eq!(
                    kernels::count_triangles_par(&g, &pool),
                    count,
                    "{name} @ {threads} threads: count"
                );
                assert_eq!(
                    kernels::triangle_edges_par(&g, &pool),
                    edges,
                    "{name} @ {threads} threads: triangle edges"
                );
            }
        }
    }
}

#[test]
fn view_based_greedy_removal_matches_the_rebuild_loop_sequence_for_sequence() {
    for seed in SEEDS {
        for (name, g) in workloads(seed) {
            let fast = distance::greedy_hitting_removal(&g);
            let slow = naive::greedy_hitting_removal(&g);
            assert_eq!(fast, slow, "{name}: removal sequences differ");
        }
    }
}

#[test]
fn greedy_removal_is_deterministic_across_runs() {
    for seed in SEEDS {
        for (name, g) in workloads(seed) {
            let a = distance::greedy_hitting_removal(&g);
            let b = distance::greedy_hitting_removal(&g);
            assert_eq!(a, b, "{name}: two runs disagreed");
        }
    }
}

#[test]
fn view_removal_leaves_the_graph_triangle_free() {
    for seed in SEEDS {
        for (name, g) in workloads(seed) {
            let removed: std::collections::HashSet<_> =
                distance::greedy_hitting_removal(&g).into_iter().collect();
            let stripped = g.without_edges(&removed);
            assert!(
                !triangles::contains_triangle(&stripped),
                "{name}: triangles survive the hitting set"
            );
            // The same holds when checked on the view itself, without a
            // rebuild.
            let mut view = DeletionView::new(&g);
            for e in &removed {
                assert!(view.delete_edge(*e), "{name}: removal not a live edge");
            }
            assert!(view.find_triangle().is_none(), "{name}: live triangle left");
        }
    }
}

#[test]
fn view_based_packing_matches_the_hashset_loop() {
    for seed in SEEDS {
        for (name, g) in workloads(seed) {
            assert_eq!(
                triangles::greedy_triangle_packing(&g),
                naive::greedy_triangle_packing(&g),
                "{name}: packings differ"
            );
        }
    }
}

#[test]
fn exact_distance_is_unchanged_on_small_instances() {
    for seed in SEEDS {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..3 {
            let g = gnp(12, 0.3, &mut rng);
            if g.edge_count() > 30 {
                continue;
            }
            let exact = distance::exact_distance(&g, 30);
            let bounds = distance::distance_bounds(&g);
            assert!(bounds.lower <= exact && exact <= bounds.upper);
        }
    }
}
