//! Differential suite for the session scheduler.
//!
//! Two guarantees are pinned here:
//!
//! 1. **Batch transparency** — `N` sessions multiplexed over one worker
//!    pool by [`SessionBatch`] produce *bit-identical* results to the
//!    same `N` sweeps run standalone through
//!    [`run_amplified_prepared`], field by field (verdict, stats, and
//!    every tally rollup), at 1, 2 and 4 threads, across mixed testers
//!    and graphs sharing one batch. Interleaving work and sharing the
//!    prepared-input cache must be observably free.
//! 2. **Absorb algebra** — [`Recorder::absorb`] on [`Tally`] is
//!    associative in full (every rollup, including round structure),
//!    and commutative on the order-insensitive rollups (total bits,
//!    per-phase, per-player, per-direction, per-label, aggregate
//!    stats). The scheduler's per-session serial-prefix reduction
//!    relies on exactly this algebra: it folds in rep order, so
//!    associativity is what makes "merge as they finish" legal.

use proptest::prelude::*;
use triad::comm::pool::Pool;
use triad::comm::{BitCost, Direction, Recorder, Tally};
use triad::graph::generators::{far_graph, gnp_with_average_degree};
use triad::graph::partition::{random_disjoint, Partition};
use triad::graph::{Edge, Graph, VertexId};
use triad::protocols::amplify::{run_amplified_prepared, PreparedInput};
use triad::protocols::session::{SessionBatch, SessionSpec, SessionTester};
use triad::protocols::{SimProtocolKind, SimultaneousTester, TallyRun, Tuning, UnrestrictedTester};

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Asserts two runs agree on every comparable field.
fn assert_identical(label: &str, reference: &TallyRun, batched: &TallyRun, threads: usize) {
    assert_eq!(
        batched.outcome.triangle(),
        reference.outcome.triangle(),
        "{label}@{threads}: outcome"
    );
    assert_eq!(batched.stats, reference.stats, "{label}@{threads}: stats");
    let t: &Tally = &reference.transcript;
    let y: &Tally = &batched.transcript;
    assert_eq!(
        y.total_bits(),
        t.total_bits(),
        "{label}@{threads}: total bits"
    );
    assert_eq!(
        y.per_player_sent(),
        t.per_player_sent(),
        "{label}@{threads}: per-player bits"
    );
    assert_eq!(y.by_phase(), t.by_phase(), "{label}@{threads}: by_phase");
    assert_eq!(y.by_player(), t.by_player(), "{label}@{threads}: by_player");
    assert_eq!(y.by_round(), t.by_round(), "{label}@{threads}: by_round");
    assert_eq!(
        y.by_direction(),
        t.by_direction(),
        "{label}@{threads}: by_direction"
    );
    assert_eq!(y.breakdown(), t.breakdown(), "{label}@{threads}: breakdown");
}

/// The mixed workload: two graphs (one ε-far, one plain G(n,p)), three
/// testers, sessions cycling over every (graph, tester) combination.
#[test]
fn batched_sessions_are_bit_identical_to_standalone_sweeps() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let far = far_graph(260, 6.0, 0.2, &mut rng).expect("far graph");
    let far_parts = random_disjoint(&far, 3, &mut rng);
    let gnp = gnp_with_average_degree(200, 5.0, &mut rng);
    let gnp_parts = random_disjoint(&gnp, 4, &mut rng);
    let inputs: [(&Graph, &Partition); 2] = [(&far, &far_parts), (&gnp, &gnp_parts)];
    let tuning = Tuning::practical(0.2);
    let testers = [
        SessionTester::Unrestricted(UnrestrictedTester::new(tuning)),
        SessionTester::Simultaneous(SimultaneousTester::new(
            tuning,
            SimProtocolKind::Low { avg_degree: 6.0 },
        )),
        SessionTester::Exact(Default::default()),
    ];

    // Twelve sessions: every (input, tester) pair twice, distinct seeds.
    let mut batch = SessionBatch::new();
    let mut specs = Vec::new();
    for s in 0..12usize {
        let (g, parts) = inputs[s % 2];
        let spec = SessionSpec {
            graph: g,
            partition: parts,
            tester: testers[s % 3].clone(),
            seed: 40 + s as u64,
            reps: 3,
        };
        batch.submit(spec.clone());
        specs.push(spec);
    }

    // Standalone references: one amplified sweep per session, serial.
    let serial = Pool::serial();
    let references: Vec<TallyRun> = specs
        .iter()
        .map(|spec| {
            let input = PreparedInput::new(spec.graph, spec.partition).expect("valid input");
            run_amplified_prepared(&serial, &spec.tester, &input, spec.reps, spec.seed)
                .expect("reference sweep")
        })
        .collect();

    for threads in [1, 2, 4] {
        let results = batch.run(&Pool::new(threads));
        // 2 graphs x (3 vs 4)-player partitions -> exactly two distinct
        // prepared inputs, built once each; the other ten are cache hits.
        assert_eq!(results.cache_misses, 2, "@{threads}: cache misses");
        assert_eq!(results.cache_hits, 10, "@{threads}: cache hits");
        for (s, (got, reference)) in results.iter().zip(&references).enumerate() {
            let got = got.as_ref().expect("batched session");
            assert_identical(&format!("session {s}"), reference, got, threads);
        }
    }
}

/// An invalid session must fail alone: its slot carries the error while
/// every valid session in the same batch still matches its standalone
/// sweep.
#[test]
fn invalid_session_fails_without_poisoning_the_batch() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let g = gnp_with_average_degree(120, 5.0, &mut rng);
    let parts = random_disjoint(&g, 3, &mut rng);
    // A share referencing a vertex outside the graph.
    let bad = Partition::new(vec![
        vec![Edge::new(VertexId(0), VertexId(5000))],
        vec![],
        vec![],
    ]);
    let tester = SessionTester::Exact(Default::default());

    let mut batch = SessionBatch::new();
    let ok_before = batch.submit(SessionSpec {
        graph: &g,
        partition: &parts,
        tester: tester.clone(),
        seed: 1,
        reps: 2,
    });
    let broken = batch.submit(SessionSpec {
        graph: &g,
        partition: &bad,
        tester: tester.clone(),
        seed: 2,
        reps: 2,
    });
    let ok_after = batch.submit(SessionSpec {
        graph: &g,
        partition: &parts,
        tester: tester.clone(),
        seed: 3,
        reps: 2,
    });

    let results = batch.run(&Pool::new(2));
    assert!(results.get(broken).is_err(), "invalid input must error");
    let serial = Pool::serial();
    let input = PreparedInput::new(&g, &parts).unwrap();
    for (handle, seed) in [(ok_before, 1), (ok_after, 3)] {
        let got = results.get(handle).as_ref().expect("valid session");
        let reference = run_amplified_prepared(&serial, &tester, &input, 2, seed).unwrap();
        assert_identical("valid-beside-invalid", &reference, got, 2);
    }
}

/// One recorded tally operation: `(player, bits, label index,
/// direction index, advance round first)`.
type TallyOp = (usize, u64, usize, usize, bool);

const LABELS: [&str; 3] = ["probe", "sample", "reply"];

/// Strategy: an arbitrary tally script over 4 players, including empty
/// scripts (a pristine tally — the absorb identity element).
fn tally_ops(max_ops: usize) -> impl Strategy<Value = Vec<TallyOp>> {
    // The vendored proptest shim implements `Strategy` for tuples of at
    // most four elements, so the five fields are nested and flattened.
    prop::collection::vec(
        ((0..4usize, 0..64u64), (0..3usize, 0..3usize, any::<bool>()))
            .prop_map(|((p, bits), (li, di, advance))| (p, bits, li, di, advance)),
        0..max_ops,
    )
}

fn build_tally(ops: &[TallyOp]) -> Tally {
    let k = 4;
    let mut t = Tally::with_players(k);
    for &(p, bits, li, di, advance) in ops {
        if advance {
            t.next_round();
        }
        let dir = match di {
            0 => Direction::ToPlayer,
            1 => Direction::ToCoordinator,
            _ => Direction::Broadcast,
        };
        let player = if dir == Direction::Broadcast {
            None
        } else {
            Some(p)
        };
        t.record(player, dir, BitCost(bits), LABELS[li]);
    }
    t
}

fn absorbed(a: &Tally, b: &Tally) -> Tally {
    let mut out = Tally::with_players(4);
    out.absorb(a);
    out.absorb(b);
    out
}

/// Full equality: every rollup, including the order-sensitive round
/// structure.
fn assert_tally_eq(label: &str, x: &Tally, y: &Tally) {
    assert_eq!(x.total_bits(), y.total_bits(), "{label}: total bits");
    assert_eq!(x.stats(), y.stats(), "{label}: stats");
    assert_eq!(
        x.per_player_sent(),
        y.per_player_sent(),
        "{label}: per-player"
    );
    assert_eq!(x.by_phase(), y.by_phase(), "{label}: by_phase");
    assert_eq!(x.by_player(), y.by_player(), "{label}: by_player");
    assert_eq!(x.by_round(), y.by_round(), "{label}: by_round");
    assert_eq!(x.by_direction(), y.by_direction(), "{label}: by_direction");
    assert_eq!(x.breakdown(), y.breakdown(), "{label}: breakdown");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `(a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)` in full — this is the property the
    /// scheduler's ordered per-session reduction rests on.
    #[test]
    fn tally_absorb_is_associative(
        a in tally_ops(24),
        b in tally_ops(24),
        c in tally_ops(24),
    ) {
        let (a, b, c) = (build_tally(&a), build_tally(&b), build_tally(&c));
        let left = absorbed(&absorbed(&a, &b), &c);
        let right = absorbed(&a, &absorbed(&b, &c));
        assert_tally_eq("associativity", &left, &right);
    }

    /// `a ⊕ b` and `b ⊕ a` agree on every order-insensitive rollup.
    /// Round *structure* legitimately differs (absorb appends the other
    /// tally's rounds after its own), so `by_round` is exempt — but the
    /// totals it rolls up are not.
    #[test]
    fn tally_absorb_commutes_on_order_insensitive_rollups(
        a in tally_ops(24),
        b in tally_ops(24),
    ) {
        let (a, b) = (build_tally(&a), build_tally(&b));
        let ab = absorbed(&a, &b);
        let ba = absorbed(&b, &a);
        prop_assert_eq!(ab.total_bits(), ba.total_bits(), "total bits");
        prop_assert_eq!(ab.stats(), ba.stats(), "stats");
        prop_assert_eq!(ab.per_player_sent(), ba.per_player_sent(), "per-player");
        prop_assert_eq!(ab.by_direction(), ba.by_direction(), "by_direction");
        for label in LABELS {
            prop_assert_eq!(
                ab.bits_for_label(label),
                ba.bits_for_label(label),
                "label {}", label
            );
        }
        // Rollup vectors may list entries in different orders; compare
        // them as sorted sets.
        let sorted = |mut v: Vec<triad::comm::Rollup>| {
            v.sort_by(|x, y| x.key.cmp(&y.key));
            v
        };
        prop_assert_eq!(sorted(ab.by_phase()), sorted(ba.by_phase()), "by_phase");
        prop_assert_eq!(sorted(ab.by_player()), sorted(ba.by_player()), "by_player");
    }
}
