//! One-sided error amplification.
//!
//! Every tester in this crate has one-sided error: a witness is always
//! real, and only the *miss* probability is bounded by δ. Repetition
//! with independent public coins therefore multiplies the miss
//! probability: `r` runs drive it to `δ^r`, at `r×` the communication.
//! (This is the cheap direction of amplification — no majority vote
//! needed, the first witness wins.)

use crate::outcome::{ProtocolError, ProtocolRun, TestOutcome};
use triad_graph::partition::Partition;
use triad_graph::Graph;

/// Anything that can run once over a partitioned input — implemented by
/// both tester families, so amplification is written once.
pub trait Repeatable {
    /// One run with the given public seed.
    ///
    /// # Errors
    ///
    /// Implementations surface their own [`ProtocolError`]s.
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError>;
}

impl Repeatable for crate::UnrestrictedTester {
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        self.run(g, partition, seed)
    }
}

impl Repeatable for crate::SimultaneousTester {
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        self.run(g, partition, seed)
    }
}

/// Runs `tester` up to `repetitions` times with independent seeds
/// derived from `base_seed`, stopping at the first witness. Miss
/// probability `δ^repetitions`; cost is the sum of the runs performed
/// (early exit on success).
///
/// # Errors
///
/// Propagates the first failing run's error.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use triad_graph::generators::far_graph;
/// use triad_graph::partition::random_disjoint;
/// use triad_protocols::amplify::run_amplified;
/// use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let g = far_graph(300, 8.0, 0.2, &mut rng)?;
/// let parts = random_disjoint(&g, 4, &mut rng);
/// let tester = SimultaneousTester::new(
///     Tuning::practical(0.2),
///     SimProtocolKind::Low { avg_degree: 8.0 },
/// );
/// let run = run_amplified(&tester, &g, &parts, 5, 7)?;
/// assert!(run.outcome.found_triangle());
/// # Ok(())
/// # }
/// ```
pub fn run_amplified<T: Repeatable>(
    tester: &T,
    g: &Graph,
    partition: &Partition,
    repetitions: u32,
    base_seed: u64,
) -> Result<ProtocolRun, ProtocolError> {
    let mut stats = triad_comm::CommStats::default();
    let mut transcript = triad_comm::Transcript::new(partition.players());
    for r in 0..repetitions.max(1) {
        let run = tester.run_once(g, partition, base_seed.wrapping_add(u64::from(r) * 7919))?;
        stats = stats.merged(run.stats);
        transcript.absorb(&run.transcript);
        if run.outcome.found_triangle() {
            return Ok(ProtocolRun {
                outcome: run.outcome,
                stats,
                transcript,
            });
        }
    }
    Ok(ProtocolRun {
        outcome: TestOutcome::NoTriangleFound,
        stats,
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimProtocolKind, SimultaneousTester, Tuning};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::far_graph;
    use triad_graph::partition::random_disjoint;

    #[test]
    fn amplification_boosts_a_weak_tester() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = far_graph(400, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        // Cripple the tester with a tiny sample scale so single runs miss
        // often, then amplify.
        let weak = SimultaneousTester::new(
            Tuning::practical(0.2).with_scale(0.25),
            SimProtocolKind::Low { avg_degree: 6.0 },
        );
        let single_hits = (0..20)
            .filter(|s| weak.run(&g, &parts, *s).unwrap().outcome.found_triangle())
            .count();
        let amp_hits = (0..20)
            .filter(|s| {
                run_amplified(&weak, &g, &parts, 8, 1000 + s)
                    .unwrap()
                    .outcome
                    .found_triangle()
            })
            .count();
        assert!(
            amp_hits > single_hits,
            "amplified {amp_hits}/20 should beat single {single_hits}/20"
        );
        assert!(amp_hits >= 16, "8 repetitions should nearly always succeed");
    }

    #[test]
    fn early_exit_keeps_cost_low_on_easy_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = far_graph(400, 8.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 8.0 },
        );
        let single = tester.run(&g, &parts, 3).unwrap();
        let amplified = run_amplified(&tester, &g, &parts, 10, 3).unwrap();
        assert!(amplified.outcome.found_triangle());
        // Strong single-run tester ⇒ amplified run usually stops at 1–2
        // repetitions; certainly nowhere near 10×.
        assert!(
            amplified.stats.total_bits <= 3 * single.stats.total_bits,
            "{} vs single {}",
            amplified.stats.total_bits,
            single.stats.total_bits
        );
    }

    #[test]
    fn never_fabricates_on_triangle_free_inputs() {
        let g = Graph::from_edges(60, (0..59).map(|i| (i as u32, i as u32 + 1)));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let parts = random_disjoint(&g, 3, &mut rng);
        let tester = SimultaneousTester::new(Tuning::practical(0.2), SimProtocolKind::Oblivious);
        let run = run_amplified(&tester, &g, &parts, 6, 0).unwrap();
        assert!(run.outcome.accepts());
        // All repetitions were spent (no early exit possible).
        assert!(run.stats.messages >= 6 * 3);
    }

    #[test]
    fn unrestricted_tester_is_repeatable_too() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = crate::UnrestrictedTester::new(Tuning::practical(0.2));
        let run = run_amplified(&tester, &g, &parts, 3, 9).unwrap();
        assert!(run.outcome.found_triangle());
    }
}
