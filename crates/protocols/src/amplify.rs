//! One-sided error amplification.
//!
//! Every tester in this crate has one-sided error: a witness is always
//! real, and only the *miss* probability is bounded by δ. Repetition
//! with independent public coins therefore multiplies the miss
//! probability: `r` runs drive it to `δ^r`, at `r×` the communication.
//! (This is the cheap direction of amplification — no majority vote
//! needed, the first witness wins.)

use std::sync::Arc;

use crate::outcome::{ProtocolError, ProtocolRun, TallyRun, TestOutcome};
use triad_comm::player::players_from_shares;
use triad_comm::pool::Pool;
use triad_comm::{PlayerState, Recorder, Tally};
use triad_graph::partition::Partition;
use triad_graph::Graph;

/// The public seed for repetition `r` of an amplified run.
///
/// Seeds are derived through the splitmix64 finalizer
/// ([`triad_comm::mix64`]) rather than an affine step: the historical
/// `base_seed + r·7919` scheme collided across nearby base seeds
/// (`rep_seed(0, 1) == rep_seed(7919, 0)`), silently correlating runs
/// that the amplification analysis assumes are independent. The mixed
/// streams are pinned by a regression test below; changing this function
/// changes every amplified transcript.
#[must_use]
pub fn rep_seed(base_seed: u64, r: u32) -> u64 {
    triad_comm::mix64(
        triad_comm::mix64(base_seed).wrapping_add(
            u64::from(r)
                .wrapping_add(1)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ),
    )
}

/// A partitioned input with everything seed-independent hoisted out of
/// the repetition loop: shares validated once, per-player states (sorted
/// shares, adjacency, degree tables — the §3.2 bucket inputs) built once
/// and handed to every repetition behind an [`Arc`]. Repetitions then
/// re-roll only the shared randomness (see `docs/RUNTIME.md`).
#[derive(Debug, Clone)]
pub struct PreparedInput<'g> {
    /// `None` when the input was prepared from shares alone
    /// ([`PreparedInput::from_partition`]) — the multiparty model's
    /// native shape: no player, and no referee, ever holds the whole
    /// graph. Every tester in this crate runs off the player states, so
    /// protocol execution is identical either way.
    g: Option<&'g Graph>,
    partition: &'g Partition,
    n: usize,
    players: Arc<Vec<PlayerState>>,
}

impl<'g> PreparedInput<'g> {
    /// Validates the shares and builds the per-player states, once.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidInput`] if a share references a
    /// vertex outside `g` — the same check every per-run entry point
    /// performs.
    pub fn new(g: &'g Graph, partition: &'g Partition) -> Result<Self, ProtocolError> {
        crate::outcome::validate_shares(g, partition)?;
        let n = g.vertex_count();
        Ok(PreparedInput {
            g: Some(g),
            partition,
            n,
            players: Arc::new(players_from_shares(n, partition.shares())),
        })
    }

    /// Prepares from an edge partition and a vertex count alone — no
    /// materialized [`Graph`] anywhere. This is how out-of-core inputs
    /// enter the protocol layer: shares are partitioned straight off a
    /// [`triad_graph::CsrStore`]'s borrowed slices and only the
    /// per-player states are ever allocated.
    ///
    /// Testers that override
    /// [`run_prepared`](Repeatable::run_prepared) (every tester in this
    /// crate) run natively; only the downconversion bridge for external
    /// `run_once`-only impls needs the graph and will report
    /// [`ProtocolError::InvalidInput`].
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidInput`] if a share references a
    /// vertex `≥ n`.
    pub fn from_partition(n: usize, partition: &'g Partition) -> Result<Self, ProtocolError> {
        crate::outcome::validate_shares_n(n, partition)?;
        Ok(PreparedInput {
            g: None,
            partition,
            n,
            players: Arc::new(players_from_shares(n, partition.shares())),
        })
    }

    /// The input graph, if this input was prepared from one
    /// (`None` for graph-free [`PreparedInput::from_partition`] inputs).
    pub fn graph(&self) -> Option<&'g Graph> {
        self.g
    }

    /// The edge partition.
    pub fn partition(&self) -> &'g Partition {
        self.partition
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of players.
    pub fn k(&self) -> usize {
        self.players.len()
    }

    /// The pre-built player states.
    pub fn players(&self) -> &[PlayerState] {
        &self.players
    }

    /// A shared handle to the player states, for transports that outlive
    /// this borrow (e.g. [`triad_comm::Runtime::prepared_with`]).
    pub fn shared_players(&self) -> Arc<Vec<PlayerState>> {
        Arc::clone(&self.players)
    }
}

/// Anything that can run once over a partitioned input — implemented by
/// both tester families, so amplification is written once.
pub trait Repeatable {
    /// One run with the given public seed.
    ///
    /// # Errors
    ///
    /// Implementations surface their own [`ProtocolError`]s.
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError>;

    /// One run over a [`PreparedInput`], recording into a [`Tally`] —
    /// the fast path amplified sweeps take. The default falls back to
    /// [`run_once`](Self::run_once) and down-converts; the testers in
    /// this crate override it to skip per-rep validation, player
    /// construction, and event logging entirely.
    ///
    /// # Errors
    ///
    /// Implementations surface their own [`ProtocolError`]s.
    fn run_prepared(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
    ) -> Result<TallyRun, ProtocolError> {
        let g = input.graph().ok_or_else(|| {
            ProtocolError::InvalidInput(
                "this tester's run_prepared bridge needs a materialized graph; \
                 prepare with PreparedInput::new, not from_partition"
                    .into(),
            )
        })?;
        self.run_once(g, input.partition(), seed)
            .map(|run| run.to_tally())
    }

    /// One repetition under a [`FaultPlan`](triad_comm::FaultPlan) —
    /// what [`run_chaos_amplified`](crate::chaos::run_chaos_amplified)
    /// calls per repetition. A surviving repetition returns its run plus
    /// injected-fault counts; a killed one returns the error with the
    /// bits already spent.
    ///
    /// The default **ignores the plan** and runs fault-free (mapping
    /// validation errors to [`RunError::Aborted`](triad_comm::RunError)):
    /// it exists so external `Repeatable` impls keep compiling. Every
    /// tester in this crate overrides it to actually inject faults.
    ///
    /// # Errors
    ///
    /// Returns [`crate::chaos::FailedRep`] when the repetition dies on
    /// an unrecovered fault.
    fn run_chaos(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
        retry_budget: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        let _ = (plan, rep, retry_budget);
        match self.run_prepared(input, seed) {
            Ok(run) => Ok(crate::chaos::ChaosRep {
                run,
                injected: triad_comm::FaultStats::default(),
            }),
            Err(e) => Err(Box::new(crate::chaos::FailedRep::aborted(
                e.to_string(),
                input.k(),
            ))),
        }
    }
}

impl<T: Repeatable + ?Sized> Repeatable for &T {
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        (**self).run_once(g, partition, seed)
    }

    fn run_prepared(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
    ) -> Result<TallyRun, ProtocolError> {
        (**self).run_prepared(input, seed)
    }

    fn run_chaos(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
        retry_budget: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        (**self).run_chaos(input, seed, plan, rep, retry_budget)
    }
}

impl Repeatable for crate::UnrestrictedTester {
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        self.run(g, partition, seed)
    }

    fn run_prepared(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
    ) -> Result<TallyRun, ProtocolError> {
        Ok(self.run_prepared_tally(input, seed))
    }

    fn run_chaos(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
        retry_budget: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        self.run_chaos_tally(input, seed, plan, rep, retry_budget)
    }
}

impl Repeatable for crate::SimultaneousTester {
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        self.run(g, partition, seed)
    }

    fn run_prepared(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
    ) -> Result<TallyRun, ProtocolError> {
        self.run_prepared_tally(input, seed)
    }

    fn run_chaos(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
        _retry_budget: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        // One-round protocols cannot retry; the budget is moot.
        self.run_chaos_tally(input, seed, plan, rep)
    }
}

/// Runs `tester` up to `repetitions` times with independent seeds
/// derived from `base_seed`, stopping at the first witness. Miss
/// probability `δ^repetitions`; cost is the sum of the runs performed
/// (early exit on success).
///
/// # Errors
///
/// Propagates the first failing run's error.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use triad_graph::generators::far_graph;
/// use triad_graph::partition::random_disjoint;
/// use triad_protocols::amplify::run_amplified;
/// use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let g = far_graph(300, 8.0, 0.2, &mut rng)?;
/// let parts = random_disjoint(&g, 4, &mut rng);
/// let tester = SimultaneousTester::new(
///     Tuning::practical(0.2),
///     SimProtocolKind::Low { avg_degree: 8.0 },
/// );
/// let run = run_amplified(&tester, &g, &parts, 5, 7)?;
/// assert!(run.outcome.found_triangle());
/// # Ok(())
/// # }
/// ```
pub fn run_amplified<T: Repeatable + Sync>(
    tester: &T,
    g: &Graph,
    partition: &Partition,
    repetitions: u32,
    base_seed: u64,
) -> Result<ProtocolRun, ProtocolError> {
    run_amplified_with(
        &Pool::current(),
        tester,
        g,
        partition,
        repetitions,
        base_seed,
    )
}

/// [`run_amplified`] on an explicit [`Pool`].
///
/// Repetitions are sharded across the pool's workers and reduced **in
/// repetition order**, with serial early-exit semantics: the reduction
/// covers exactly the prefix of repetitions a serial loop would have
/// performed (up to and including the first witness or error), so
/// merged [`CommStats`](triad_comm::CommStats) totals and the absorbed
/// transcript are byte-identical to the serial path at any thread count.
/// Speculative repetitions computed past the stopping point are
/// discarded before reduction and charge nothing.
///
/// # Errors
///
/// Propagates the error of the first failing repetition (in repetition
/// order, as the serial loop would).
pub fn run_amplified_with<T: Repeatable + Sync>(
    pool: &Pool,
    tester: &T,
    g: &Graph,
    partition: &Partition,
    repetitions: u32,
    base_seed: u64,
) -> Result<ProtocolRun, ProtocolError> {
    let reps = repetitions.max(1) as usize;
    let runs = pool.ordered_map_until(
        reps,
        |r| tester.run_once(g, partition, rep_seed(base_seed, r as u32)),
        |run| match run {
            Ok(run) => run.outcome.found_triangle(),
            Err(_) => true,
        },
    );
    let mut stats = triad_comm::CommStats::default();
    let mut transcript = triad_comm::Transcript::new(partition.players());
    for run in runs {
        let run = run?;
        stats = stats.merged(run.stats);
        transcript.absorb(&run.transcript);
        if run.outcome.found_triangle() {
            return Ok(ProtocolRun {
                outcome: run.outcome,
                stats,
                transcript,
            });
        }
    }
    Ok(ProtocolRun {
        outcome: TestOutcome::NoTriangleFound,
        stats,
        transcript,
    })
}

/// The amplified **fast path**: prepares the input once, then runs
/// [`run_amplified_prepared`] on the current pool. This is what bench
/// loops and sweeps should call when they only need counters — same
/// verdicts and bit totals as [`run_amplified`], no event log, no
/// per-repetition player rebuild.
///
/// # Errors
///
/// Propagates validation errors from [`PreparedInput::new`] and the
/// first failing repetition's error.
pub fn run_amplified_tally<T: Repeatable + Sync>(
    tester: &T,
    g: &Graph,
    partition: &Partition,
    repetitions: u32,
    base_seed: u64,
) -> Result<TallyRun, ProtocolError> {
    let input = PreparedInput::new(g, partition)?;
    run_amplified_prepared(&Pool::current(), tester, &input, repetitions, base_seed)
}

/// [`run_amplified_tally`] over an already-prepared input on an explicit
/// [`Pool`] — the innermost loop of amplified sweeps. Identical
/// early-exit and in-order reduction semantics to
/// [`run_amplified_with`]: merged stats and tally totals are
/// byte-identical to the serial full-transcript path at any thread
/// count (pinned by `tests/recorder_differential.rs`).
///
/// # Errors
///
/// Propagates the error of the first failing repetition (in repetition
/// order, as the serial loop would).
pub fn run_amplified_prepared<T: Repeatable + Sync>(
    pool: &Pool,
    tester: &T,
    input: &PreparedInput<'_>,
    repetitions: u32,
    base_seed: u64,
) -> Result<TallyRun, ProtocolError> {
    let reps = repetitions.max(1) as usize;
    let runs = pool.ordered_map_until(
        reps,
        |r| tester.run_prepared(input, rep_seed(base_seed, r as u32)),
        |run| match run {
            Ok(run) => run.outcome.found_triangle(),
            Err(_) => true,
        },
    );
    reduce_prefix(input.k(), runs)
}

/// Reduces a serial prefix of repetition results **in repetition
/// order**: merged stats, absorbed tallies, early return on the first
/// witness, first error propagated. This is the one fold shared by
/// [`run_amplified_prepared`] and the session scheduler
/// (`crate::session`), which is how batched sessions stay byte-identical
/// to standalone sweeps.
pub(crate) fn reduce_prefix(
    k: usize,
    runs: impl IntoIterator<Item = Result<TallyRun, ProtocolError>>,
) -> Result<TallyRun, ProtocolError> {
    let mut stats = triad_comm::CommStats::default();
    let mut tally = Tally::with_players(k);
    for run in runs {
        let run = run?;
        stats = stats.merged(run.stats);
        tally.absorb(&run.transcript);
        if run.outcome.found_triangle() {
            return Ok(TallyRun {
                outcome: run.outcome,
                stats,
                transcript: tally,
            });
        }
    }
    Ok(TallyRun {
        outcome: TestOutcome::NoTriangleFound,
        stats,
        transcript: tally,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimProtocolKind, SimultaneousTester, Tuning};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::far_graph;
    use triad_graph::partition::random_disjoint;

    #[test]
    fn amplification_boosts_a_weak_tester() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = far_graph(400, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        // Cripple the tester with a tiny sample scale so single runs miss
        // often, then amplify.
        let weak = SimultaneousTester::new(
            Tuning::practical(0.2).with_scale(0.25),
            SimProtocolKind::Low { avg_degree: 6.0 },
        );
        let single_hits = (0..20)
            .filter(|s| weak.run(&g, &parts, *s).unwrap().outcome.found_triangle())
            .count();
        let amp_hits = (0..20)
            .filter(|s| {
                run_amplified(&weak, &g, &parts, 8, 1000 + s)
                    .unwrap()
                    .outcome
                    .found_triangle()
            })
            .count();
        assert!(
            amp_hits > single_hits,
            "amplified {amp_hits}/20 should beat single {single_hits}/20"
        );
        assert!(amp_hits >= 16, "8 repetitions should nearly always succeed");
    }

    #[test]
    fn early_exit_keeps_cost_low_on_easy_inputs() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = far_graph(400, 8.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 8.0 },
        );
        let single = tester.run(&g, &parts, 3).unwrap();
        let amplified = run_amplified(&tester, &g, &parts, 10, 3).unwrap();
        assert!(amplified.outcome.found_triangle());
        // Strong single-run tester ⇒ amplified run usually stops at 1–2
        // repetitions; certainly nowhere near 10×.
        assert!(
            amplified.stats.total_bits <= 3 * single.stats.total_bits,
            "{} vs single {}",
            amplified.stats.total_bits,
            single.stats.total_bits
        );
    }

    #[test]
    fn never_fabricates_on_triangle_free_inputs() {
        let g = Graph::from_edges(60, (0..59).map(|i| (i as u32, i as u32 + 1)));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let parts = random_disjoint(&g, 3, &mut rng);
        let tester = SimultaneousTester::new(Tuning::practical(0.2), SimProtocolKind::Oblivious);
        let run = run_amplified(&tester, &g, &parts, 6, 0).unwrap();
        assert!(run.outcome.accepts());
        // All repetitions were spent (no early exit possible).
        assert!(run.stats.messages >= 6 * 3);
    }

    #[test]
    fn rep_seed_streams_are_pinned_and_collision_free() {
        // The retired affine scheme (`base + r·7919`) collided exactly
        // here: base 0 repetition 1 == base 7919 repetition 0.
        assert_ne!(rep_seed(0, 1), rep_seed(7919, 0));
        assert_ne!(rep_seed(0, 0), rep_seed(0, 1));
        // Pin the streams: any change to the derivation rewrites every
        // amplified transcript and must be deliberate.
        assert_eq!(rep_seed(0, 0), 0xb382_a305_f441_4f5e);
        assert_eq!(rep_seed(0, 1), 0x631a_9154_fbab_f717);
        assert_eq!(rep_seed(0, 2), 0xa80a_ba8c_8664_0906);
        assert_eq!(rep_seed(7919, 0), 0x325c_54e9_fe2c_bc87);
        assert_eq!(rep_seed(7, 0), 0xa653_05fd_338e_c8fe);
        assert_eq!(rep_seed(7, 1), 0x8ca3_cbb6_ca63_129b);
        assert_eq!(rep_seed(1000, 3), 0xf379_1818_5553_213d);
        // No collisions across a dense grid of nearby bases and reps.
        let mut seen = std::collections::HashSet::new();
        for base in 0..64u64 {
            for r in 0..32u32 {
                assert!(seen.insert(rep_seed(base, r)), "collision at {base}/{r}");
            }
        }
    }

    #[test]
    fn parallel_amplification_matches_serial_bit_for_bit() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let weak = SimultaneousTester::new(
            Tuning::practical(0.2).with_scale(0.25),
            SimProtocolKind::Low { avg_degree: 6.0 },
        );
        for seed in [0u64, 3, 11] {
            let serial = run_amplified_with(&Pool::serial(), &weak, &g, &parts, 8, seed).unwrap();
            for threads in [2, 8] {
                let par =
                    run_amplified_with(&Pool::new(threads), &weak, &g, &parts, 8, seed).unwrap();
                assert_eq!(par.outcome, serial.outcome, "seed {seed} t{threads}");
                assert_eq!(par.stats, serial.stats, "seed {seed} t{threads}");
                assert_eq!(
                    par.transcript.events(),
                    serial.transcript.events(),
                    "seed {seed} t{threads}"
                );
            }
        }
    }

    #[test]
    fn prepared_tally_path_matches_transcript_path() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let weak = SimultaneousTester::new(
            Tuning::practical(0.2).with_scale(0.25),
            SimProtocolKind::Low { avg_degree: 6.0 },
        );
        let input = PreparedInput::new(&g, &parts).unwrap();
        for seed in [0u64, 5, 17] {
            let slow = run_amplified_with(&Pool::serial(), &weak, &g, &parts, 8, seed).unwrap();
            for threads in [1, 2, 8] {
                let fast =
                    run_amplified_prepared(&Pool::new(threads), &weak, &input, 8, seed).unwrap();
                assert_eq!(fast.outcome, slow.outcome, "seed {seed} t{threads}");
                assert_eq!(fast.stats, slow.stats, "seed {seed} t{threads}");
                assert_eq!(
                    fast.transcript.total_bits(),
                    slow.transcript.total_bits(),
                    "seed {seed} t{threads}"
                );
                assert_eq!(fast.transcript.by_phase(), slow.transcript.by_phase());
                assert_eq!(fast.transcript.by_player(), slow.transcript.by_player());
                assert_eq!(fast.transcript.by_round(), slow.transcript.by_round());
                assert_eq!(
                    fast.transcript.by_direction(),
                    slow.transcript.by_direction()
                );
                assert_eq!(fast.transcript.breakdown(), slow.transcript.breakdown());
            }
        }
    }

    #[test]
    fn unrestricted_prepared_tally_matches_its_transcript_run() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = crate::UnrestrictedTester::new(Tuning::practical(0.2));
        let input = PreparedInput::new(&g, &parts).unwrap();
        for seed in [3u64, 11] {
            let slow = tester.run(&g, &parts, seed).unwrap();
            let fast = tester.run_prepared(&input, seed).unwrap();
            assert_eq!(fast.outcome, slow.outcome, "seed {seed}");
            assert_eq!(fast.stats, slow.stats, "seed {seed}");
            assert_eq!(fast.transcript.by_phase(), slow.transcript.by_phase());
            assert_eq!(fast.transcript.breakdown(), slow.transcript.breakdown());
        }
    }

    #[test]
    fn default_run_prepared_downconverts_faithfully() {
        // A Repeatable with no fast-path override takes the
        // run_once + to_tally bridge; it must agree with itself.
        struct Wrapper(SimultaneousTester);
        impl Repeatable for Wrapper {
            fn run_once(
                &self,
                g: &Graph,
                partition: &Partition,
                seed: u64,
            ) -> Result<ProtocolRun, ProtocolError> {
                self.0.run(g, partition, seed)
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = far_graph(200, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 3, &mut rng);
        let tester = Wrapper(SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 6.0 },
        ));
        let input = PreparedInput::new(&g, &parts).unwrap();
        let bridged = tester.run_prepared(&input, 1).unwrap();
        let native = tester.0.run_prepared_tally(&input, 1).unwrap();
        assert_eq!(bridged.outcome, native.outcome);
        assert_eq!(bridged.stats, native.stats);
        assert_eq!(bridged.transcript, native.transcript);
    }

    #[test]
    fn graph_free_prepared_input_runs_native_testers_identically() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let with_graph = PreparedInput::new(&g, &parts).unwrap();
        let graph_free = PreparedInput::from_partition(g.vertex_count(), &parts).unwrap();
        assert!(graph_free.graph().is_none());
        assert_eq!(graph_free.n(), with_graph.n());
        assert_eq!(graph_free.k(), with_graph.k());
        let sim = SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 6.0 },
        );
        let unr = crate::UnrestrictedTester::new(Tuning::practical(0.2));
        for seed in [0u64, 7, 19] {
            let a = sim.run_prepared(&with_graph, seed).unwrap();
            let b = sim.run_prepared(&graph_free, seed).unwrap();
            assert_eq!(a.outcome, b.outcome, "sim seed {seed}");
            assert_eq!(a.stats, b.stats, "sim seed {seed}");
            assert_eq!(a.transcript, b.transcript, "sim seed {seed}");
            let a = unr.run_prepared(&with_graph, seed).unwrap();
            let b = unr.run_prepared(&graph_free, seed).unwrap();
            assert_eq!(a.outcome, b.outcome, "unr seed {seed}");
            assert_eq!(a.stats, b.stats, "unr seed {seed}");
            assert_eq!(a.transcript, b.transcript, "unr seed {seed}");
        }
    }

    #[test]
    fn graph_free_input_rejects_the_downconversion_bridge() {
        struct Wrapper(SimultaneousTester);
        impl Repeatable for Wrapper {
            fn run_once(
                &self,
                g: &Graph,
                partition: &Partition,
                seed: u64,
            ) -> Result<ProtocolRun, ProtocolError> {
                self.0.run(g, partition, seed)
            }
        }
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = far_graph(120, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 3, &mut rng);
        let input = PreparedInput::from_partition(g.vertex_count(), &parts).unwrap();
        let tester = Wrapper(SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 6.0 },
        ));
        let err = tester.run_prepared(&input, 1).unwrap_err();
        assert!(err.to_string().contains("materialized graph"), "{err}");
    }

    #[test]
    fn from_partition_validates_vertex_range() {
        let g = Graph::from_edges(8, [(0, 1), (1, 2), (0, 2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let parts = random_disjoint(&g, 2, &mut rng);
        assert!(PreparedInput::from_partition(8, &parts).is_ok());
        // Shrinking n below the largest referenced vertex must fail.
        assert!(PreparedInput::from_partition(2, &parts).is_err());
    }

    #[test]
    fn baseline_is_repeatable() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let parts = random_disjoint(&g, 3, &mut rng);
        let run = run_amplified(
            &crate::baseline::SendEverything::default(),
            &g,
            &parts,
            4,
            0,
        )
        .unwrap();
        // Exact baseline finds the triangle on the first repetition.
        assert!(run.outcome.found_triangle());
    }

    #[test]
    fn unrestricted_tester_is_repeatable_too() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = crate::UnrestrictedTester::new(Tuning::practical(0.2));
        let run = run_amplified(&tester, &g, &parts, 3, 9).unwrap();
        assert!(run.outcome.found_triangle());
    }
}
