//! Approximate triangle *counting* — the companion problem the paper's
//! related-work section traces through streaming (\[27\]) and distributed
//! computing.
//!
//! The one-round estimator reuses the induced-sampler: expose the
//! subgraph on a public `Bernoulli(p)` vertex sample, count its
//! triangles `T_S`, and return `T̂ = T_S / p³` — unbiased, since each
//! triangle survives with probability exactly `p³`. Concentration needs
//! `p³·T = Ω(1)` and bounded triangle overlap, mirroring the variance
//! bookkeeping of Theorem 3.26.

use crate::outcome::ProtocolError;
use triad_comm::{
    run_simultaneous, CommStats, Payload, PlayerState, SharedRandomness, SimMessage,
    SimultaneousProtocol,
};
use triad_graph::partition::Partition;
use triad_graph::{triangles, Graph, GraphBuilder};

/// Shared-randomness tag naming the counting sample.
const COUNT_TAG: u64 = 0x434E_5452; // "CNTR"

/// The one-round triangle-count estimator at sampling probability `p`.
#[derive(Debug, Clone, Copy)]
pub struct TriangleCounter {
    p: f64,
    /// Per-player edge cap (Markov cutoff; `usize::MAX` disables).
    cap: usize,
}

impl TriangleCounter {
    /// An estimator sampling each vertex with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            p > 0.0 && p <= 1.0,
            "sampling probability must be in (0, 1]"
        );
        TriangleCounter { p, cap: usize::MAX }
    }

    /// Caps each player's message at `cap` edges.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    /// The sampling probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl SimultaneousProtocol for TriangleCounter {
    type Output = CountOutput;

    fn message<'a>(&self, player: &'a PlayerState, shared: &SharedRandomness) -> SimMessage<'a> {
        let mut out = Vec::new();
        for e in player.edges() {
            if shared.vertex_sampled(COUNT_TAG, e.u(), self.p)
                && shared.vertex_sampled(COUNT_TAG, e.v(), self.p)
            {
                out.push(*e);
                if out.len() >= self.cap {
                    break;
                }
            }
        }
        SimMessage::of(Payload::Edges(out.into()))
    }

    fn referee(
        &self,
        n: usize,
        messages: &[SimMessage],
        _shared: &SharedRandomness,
    ) -> CountOutput {
        let mut b = GraphBuilder::new(n);
        for m in messages {
            for e in m.edges() {
                b.add_edge(e);
            }
        }
        let sampled = triangles::count_triangles(&b.build());
        CountOutput {
            sampled_triangles: sampled,
            estimate: sampled as f64 / (self.p * self.p * self.p),
        }
    }
}

/// The referee's count output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountOutput {
    /// Triangles visible in the exposed subgraph.
    pub sampled_triangles: u64,
    /// The unbiased estimate `T_S / p³`.
    pub estimate: f64,
}

/// A completed counting run.
#[derive(Debug, Clone)]
pub struct CountRun {
    /// The estimate and raw sample count.
    pub output: CountOutput,
    /// Communication statistics (one round).
    pub stats: CommStats,
}

/// Runs the estimator over a partitioned input.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidInput`] on malformed shares.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use triad_graph::generators::shifted_triangles;
/// use triad_graph::partition::random_disjoint;
/// use triad_protocols::counting::estimate_triangles;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = shifted_triangles(90, 2)?; // 60 planted triangles
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let parts = random_disjoint(&g, 3, &mut rng);
/// let run = estimate_triangles(&g, &parts, 1.0, 0)?; // p = 1: exact
/// assert_eq!(run.output.sampled_triangles, 60);
/// # Ok(())
/// # }
/// ```
pub fn estimate_triangles(
    g: &Graph,
    partition: &Partition,
    p: f64,
    seed: u64,
) -> Result<CountRun, ProtocolError> {
    let n = g.vertex_count();
    crate::outcome::validate_shares(g, partition)?;
    let counter = TriangleCounter::new(p);
    let run = run_simultaneous(&counter, n, partition.shares(), SharedRandomness::new(seed));
    Ok(CountRun {
        output: run.output,
        stats: run.stats,
    })
}

/// Averages the estimator over `trials` seeds — the standard variance
/// reduction, multiplying the cost by `trials` and dividing the variance
/// by it.
///
/// # Errors
///
/// Propagates the first failing run's error.
pub fn estimate_triangles_averaged(
    g: &Graph,
    partition: &Partition,
    p: f64,
    trials: u64,
    base_seed: u64,
) -> Result<(f64, CommStats), ProtocolError> {
    let mut sum = 0.0;
    let mut stats = CommStats::default();
    for t in 0..trials.max(1) {
        let run = estimate_triangles(g, partition, p, base_seed.wrapping_add(t * 7919))?;
        sum += run.output.estimate;
        stats = stats.merged(run.stats);
    }
    Ok((sum / trials.max(1) as f64, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::shifted_triangles;
    use triad_graph::partition::random_disjoint;

    #[test]
    fn full_probability_is_exact() {
        let g = shifted_triangles(60, 3).unwrap();
        let truth = triangles::count_triangles(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parts = random_disjoint(&g, 4, &mut rng);
        let run = estimate_triangles(&g, &parts, 1.0, 5).unwrap();
        assert_eq!(run.output.sampled_triangles, truth);
        assert!((run.output.estimate - truth as f64).abs() < 1e-9);
    }

    #[test]
    fn estimator_is_unbiased_in_the_mean() {
        let g = shifted_triangles(120, 6).unwrap();
        let truth = triangles::count_triangles(&g) as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let parts = random_disjoint(&g, 4, &mut rng);
        let (mean, _) = estimate_triangles_averaged(&g, &parts, 0.5, 40, 3).unwrap();
        let rel = (mean - truth).abs() / truth;
        assert!(
            rel < 0.25,
            "mean estimate {mean} vs truth {truth} (rel {rel:.2})"
        );
    }

    #[test]
    fn cost_scales_with_p_squared() {
        let g = shifted_triangles(600, 20).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let parts = random_disjoint(&g, 4, &mut rng);
        let low = estimate_triangles(&g, &parts, 0.1, 1)
            .unwrap()
            .stats
            .total_bits as f64;
        let high = estimate_triangles(&g, &parts, 0.4, 1)
            .unwrap()
            .stats
            .total_bits as f64;
        // Exposed edges ∝ p²: 16× expected; allow wide slack.
        let ratio = high / low.max(1.0);
        assert!(ratio > 6.0 && ratio < 40.0, "cost ratio {ratio}");
    }

    #[test]
    fn zero_triangles_estimates_zero() {
        let g = Graph::from_edges(40, (0..39).map(|i| (i as u32, i as u32 + 1)));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let parts = random_disjoint(&g, 3, &mut rng);
        let run = estimate_triangles(&g, &parts, 0.8, 1).unwrap();
        assert_eq!(run.output.sampled_triangles, 0);
        assert_eq!(run.output.estimate, 0.0);
    }

    #[test]
    #[should_panic(expected = "in (0, 1]")]
    fn rejects_bad_probability() {
        let _ = TriangleCounter::new(0.0);
    }

    #[test]
    fn cap_limits_messages() {
        let g = shifted_triangles(300, 10).unwrap();
        let counter = TriangleCounter::new(1.0).with_cap(5);
        let player = PlayerState::new(0, 300, g.edges());
        let msg = counter.message(&player, &SharedRandomness::new(1));
        assert_eq!(msg.edges().count(), 5);
    }
}
