//! # triad-protocols
//!
//! The protocols of *"On the Multiparty Communication Complexity of
//! Testing Triangle-Freeness"* (Fischer, Gershtein, Oshman — PODC 2017),
//! implemented over the [`triad_comm`] coordinator-model substrate.
//!
//! * [`blocks`] — the §3.1 building blocks: edge queries, unbiased random
//!   edges under duplication, random walks, Theorem 3.1's degree
//!   approximation, Lemma 3.2's no-duplication variant, induced-subgraph
//!   exposure and BFS.
//! * [`unrestricted`] — the §3.3 tester: bucket search for full vertices,
//!   birthday-paradox edge sampling, vee closing across players.
//!   `Õ(k·(nd)^{1/4} + k²)` bits, one-sided error.
//! * [`simultaneous`] — the §3.4 one-round testers: [`simultaneous::AlgHigh`]
//!   (`Õ(k·(nd)^{1/3})` for `d = Ω(√n)`), [`simultaneous::AlgLow`]
//!   (`Õ(k·√n)` for `d = O(√n)`) and the degree-oblivious combination
//!   [`simultaneous::Oblivious`] (Theorem 3.32).
//! * [`baseline`] — exact triangle detection (the `Θ(k·n·d)`
//!   send-everything regime the paper improves on).
//! * [`chaos`] — quorum-gated amplification under deterministic fault
//!   injection: failed repetitions are tallied per error kind, recovery
//!   traffic is charged as retransmitted bits, and a lost quorum yields
//!   an explicit `Inconclusive` instead of a silently wrong accept.
//! * [`config`] — all sample-size constants, with paper-faithful and
//!   practical presets.
//!
//! All testers have one-sided error: a reported triangle always exists.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use triad_graph::generators::far_graph;
//! use triad_graph::partition::random_disjoint;
//! use triad_protocols::{Tuning, UnrestrictedTester};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let g = far_graph(300, 6.0, 0.2, &mut rng)?;
//! let parts = random_disjoint(&g, 4, &mut rng);
//! let run = UnrestrictedTester::new(Tuning::practical(0.2)).run(&g, &parts, 7)?;
//! assert!(run.outcome.found_triangle());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod amplify;
pub mod baseline;
pub mod blocks;
pub mod chaos;
pub mod config;
pub mod counting;
pub mod outcome;
pub mod session;
pub mod simultaneous;
pub mod subgraphs;
pub mod unrestricted;

pub use amplify::{PreparedInput, Repeatable};
pub use chaos::{
    run_chaos_amplified, run_chaos_amplified_tally, single_run_verdict, ChaosOutcome, ChaosRep,
    ChaosRun, FailedRep, FailureBreakdown, DEFAULT_QUORUM,
};
pub use config::{Preset, Tuning};
pub use outcome::{ProtocolError, ProtocolRun, TallyRun, TestOutcome};
pub use session::{run_session_batch, SessionBatch, SessionResults, SessionSpec, SessionTester};
pub use simultaneous::{SimProtocolKind, SimultaneousTester};
pub use triad_comm::scheduler::SessionHandle;
pub use unrestricted::UnrestrictedTester;
