//! Multi-tenant query sessions.
//!
//! A *session* is one independent triangle-freeness query: a graph, an
//! edge partition, a protocol, a public seed and a repetition budget —
//! exactly what one `triad test` invocation runs. This module batches
//! many sessions and drives them over a single worker [`Pool`] through
//! the [`triad_comm::scheduler`], with two guarantees:
//!
//! * **Byte-identical results.** Each session's verdict, stats and
//!   [`Tally`](triad_comm::Tally) are exactly what
//!   [`run_amplified_prepared`](crate::amplify::run_amplified_prepared)
//!   would return for that session alone, at any worker count. The
//!   scheduler hands back each session's serial repetition prefix and
//!   both paths reduce through the same fold
//!   (`amplify::reduce_prefix`); enforced by
//!   `tests/scheduler_differential.rs`.
//! * **Shared preparation.** Sessions on the same (graph, partition)
//!   content share one [`PreparedInput`] — shares validated once,
//!   `Arc<Vec<PlayerState>>` built once — so a thousand sessions over
//!   one graph pay a single player build. The cache key is a splitmix64
//!   content hash guarded by (n, m, k); see [`SessionBatch::run`].

use std::collections::HashMap;

use crate::amplify::{reduce_prefix, rep_seed, PreparedInput, Repeatable};
use crate::baseline::SendEverything;
use crate::outcome::{ProtocolError, ProtocolRun, TallyRun};
use crate::{SimultaneousTester, UnrestrictedTester};
use triad_comm::scheduler::{run_sessions, SessionHandle, SessionJob};
use triad_comm::{mix64, Pool};
use triad_graph::partition::Partition;
use triad_graph::Graph;

/// The protocol family a session runs. Each variant delegates
/// [`Repeatable`] to the wrapped tester, so a session behaves exactly
/// like the tester it wraps.
#[derive(Debug, Clone)]
pub enum SessionTester {
    /// The unrestricted-model tester (§3 of the paper).
    Unrestricted(UnrestrictedTester),
    /// A one-round simultaneous tester (AlgHigh/AlgLow/Oblivious).
    Simultaneous(SimultaneousTester),
    /// The exact send-everything baseline.
    Exact(SendEverything),
}

impl Repeatable for SessionTester {
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        match self {
            SessionTester::Unrestricted(t) => t.run_once(g, partition, seed),
            SessionTester::Simultaneous(t) => t.run_once(g, partition, seed),
            SessionTester::Exact(t) => t.run_once(g, partition, seed),
        }
    }

    fn run_prepared(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
    ) -> Result<TallyRun, ProtocolError> {
        match self {
            SessionTester::Unrestricted(t) => t.run_prepared(input, seed),
            SessionTester::Simultaneous(t) => t.run_prepared(input, seed),
            SessionTester::Exact(t) => t.run_prepared(input, seed),
        }
    }

    fn run_chaos(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
        retry_budget: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        match self {
            SessionTester::Unrestricted(t) => t.run_chaos(input, seed, plan, rep, retry_budget),
            SessionTester::Simultaneous(t) => t.run_chaos(input, seed, plan, rep, retry_budget),
            SessionTester::Exact(t) => t.run_chaos(input, seed, plan, rep, retry_budget),
        }
    }
}

/// One query: which input, which protocol, which public coins, how
/// many amplification repetitions. Borrows the graph and partition —
/// thousands of specs over one graph are thousands of cheap references.
#[derive(Debug, Clone)]
pub struct SessionSpec<'g> {
    /// The input graph.
    pub graph: &'g Graph,
    /// The edge partition across players.
    pub partition: &'g Partition,
    /// The protocol to run.
    pub tester: SessionTester,
    /// Base public seed; repetition `r` uses
    /// [`rep_seed`]`(seed, r)`, exactly as a standalone sweep would.
    pub seed: u64,
    /// Amplification repetitions (`0` is treated as `1`, matching
    /// [`run_amplified_prepared`](crate::amplify::run_amplified_prepared)).
    pub reps: u32,
}

/// The prepared-input cache key: a content hash of the graph's edge
/// list and the partition's shares, guarded by the cheap structural
/// facts. Two sessions share a [`PreparedInput`] iff their keys match;
/// a spurious share would need a full 64-bit hash collision *and*
/// identical (n, m, k).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct InputKey {
    content: u64,
    vertices: usize,
    edges: usize,
    players: usize,
}

fn input_key(g: &Graph, partition: &Partition) -> InputKey {
    let fold_edge = |h: u64, e: &triad_graph::Edge| {
        mix64(h ^ (((e.u().index() as u64) << 32) | e.v().index() as u64))
    };
    let mut h = mix64(g.vertex_count() as u64 ^ 0x9E37_79B9_7F4A_7C15);
    h = g.edges().iter().fold(h, fold_edge);
    for share in partition.shares() {
        h = mix64(h ^ 0xD1B5_4A32_D192_ED03 ^ share.len() as u64);
        h = share.iter().fold(h, fold_edge);
    }
    InputKey {
        content: h,
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        players: partition.players(),
    }
}

/// One session's repetitions as a scheduler job: the per-repetition
/// closure and early-exit predicate are exactly those of
/// [`run_amplified_prepared`](crate::amplify::run_amplified_prepared).
struct PreparedSession<'a, 'g> {
    tester: &'a SessionTester,
    input: &'a PreparedInput<'g>,
    seed: u64,
    reps: usize,
}

impl SessionJob for PreparedSession<'_, '_> {
    type Item = Result<TallyRun, ProtocolError>;

    fn reps(&self) -> usize {
        self.reps
    }

    fn run_rep(&self, rep: usize) -> Self::Item {
        self.tester
            .run_prepared(self.input, rep_seed(self.seed, rep as u32))
    }

    fn is_final(&self, item: &Self::Item) -> bool {
        match item {
            Ok(run) => run.outcome.found_triangle(),
            Err(_) => true,
        }
    }
}

/// A batch of sessions to run together over one pool.
///
/// ```
/// use rand::SeedableRng;
/// use triad_comm::Pool;
/// use triad_graph::generators::far_graph;
/// use triad_graph::partition::random_disjoint;
/// use triad_protocols::session::{SessionBatch, SessionSpec, SessionTester};
/// use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let g = far_graph(300, 8.0, 0.2, &mut rng)?;
/// let parts = random_disjoint(&g, 4, &mut rng);
/// let tester = SessionTester::Simultaneous(SimultaneousTester::new(
///     Tuning::practical(0.2),
///     SimProtocolKind::Low { avg_degree: 8.0 },
/// ));
/// let mut batch = SessionBatch::new();
/// let handles: Vec<_> = (0..16)
///     .map(|s| {
///         batch.submit(SessionSpec {
///             graph: &g,
///             partition: &parts,
///             tester: tester.clone(),
///             seed: s,
///             reps: 4,
///         })
///     })
///     .collect();
/// let results = batch.run(&Pool::new(2));
/// // 16 sessions, one player build: the input was prepared once.
/// assert_eq!(results.cache_misses, 1);
/// assert_eq!(results.cache_hits, 15);
/// for h in handles {
///     let run = results.get(h).as_ref().expect("session failed");
///     assert!(run.outcome.found_triangle());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct SessionBatch<'g> {
    specs: Vec<SessionSpec<'g>>,
}

impl<'g> SessionBatch<'g> {
    /// An empty batch.
    pub fn new() -> Self {
        SessionBatch { specs: Vec::new() }
    }

    /// Queues a session; the handle redeems its result after
    /// [`run`](Self::run). Handles are submission-order indices.
    pub fn submit(&mut self, spec: SessionSpec<'g>) -> SessionHandle {
        self.specs.push(spec);
        SessionHandle::new(self.specs.len() - 1)
    }

    /// Number of queued sessions.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// `true` if nothing was submitted.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Runs every queued session over `pool`, stealing work across
    /// sessions, and returns the per-session results.
    ///
    /// Inputs are prepared once per distinct (graph, partition) content
    /// and shared; a session whose shares fail validation gets its
    /// [`ProtocolError`] as a result without disturbing the others.
    pub fn run(&self, pool: &Pool) -> SessionResults {
        // Prepare each distinct input once (hit/miss counted per spec).
        let mut cache: HashMap<InputKey, Result<PreparedInput<'g>, ProtocolError>> = HashMap::new();
        let mut keys = Vec::with_capacity(self.specs.len());
        let mut cache_hits = 0;
        let mut cache_misses = 0;
        for spec in &self.specs {
            let key = input_key(spec.graph, spec.partition);
            match cache.entry(key) {
                std::collections::hash_map::Entry::Occupied(_) => cache_hits += 1,
                std::collections::hash_map::Entry::Vacant(slot) => {
                    cache_misses += 1;
                    slot.insert(PreparedInput::new(spec.graph, spec.partition));
                }
            }
            keys.push(key);
        }

        // Sessions with a valid input become scheduler jobs; the rest
        // resolve immediately to their validation error.
        let mut jobs = Vec::new();
        let mut job_spec_index = Vec::new();
        let mut results: Vec<Option<Result<TallyRun, ProtocolError>>> =
            (0..self.specs.len()).map(|_| None).collect();
        for (i, (spec, key)) in self.specs.iter().zip(&keys).enumerate() {
            match &cache[key] {
                Ok(input) => {
                    jobs.push(PreparedSession {
                        tester: &spec.tester,
                        input,
                        seed: spec.seed,
                        reps: spec.reps.max(1) as usize,
                    });
                    job_spec_index.push(i);
                }
                Err(e) => results[i] = Some(Err(e.clone())),
            }
        }

        let prefixes = run_sessions(pool, &jobs);
        for ((job, prefix), &i) in jobs.iter().zip(prefixes).zip(&job_spec_index) {
            results[i] = Some(reduce_prefix(job.input.k(), prefix));
        }

        SessionResults {
            results: results
                .into_iter()
                .map(|r| r.expect("every session resolved"))
                .collect(),
            cache_hits,
            cache_misses,
        }
    }
}

/// The results of a [`SessionBatch::run`], redeemable by handle.
#[derive(Debug)]
pub struct SessionResults {
    results: Vec<Result<TallyRun, ProtocolError>>,
    /// Sessions that reused another session's prepared input.
    pub cache_hits: usize,
    /// Distinct inputs prepared (validated + player states built).
    pub cache_misses: usize,
}

impl SessionResults {
    /// The result of the session behind `handle`.
    ///
    /// # Panics
    ///
    /// Panics if `handle` did not come from the batch that produced
    /// these results.
    pub fn get(&self, handle: SessionHandle) -> &Result<TallyRun, ProtocolError> {
        &self.results[handle.index()]
    }

    /// Number of sessions.
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// Results in submission order.
    pub fn iter(&self) -> impl Iterator<Item = &Result<TallyRun, ProtocolError>> {
        self.results.iter()
    }

    /// Consumes into the submission-order result vector.
    pub fn into_results(self) -> Vec<Result<TallyRun, ProtocolError>> {
        self.results
    }
}

/// One-call convenience: submit `specs` in order and run them on
/// `pool`, returning submission-order results.
pub fn run_session_batch<'g>(
    pool: &Pool,
    specs: impl IntoIterator<Item = SessionSpec<'g>>,
) -> SessionResults {
    let mut batch = SessionBatch::new();
    for spec in specs {
        batch.submit(spec);
    }
    batch.run(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::amplify::run_amplified_prepared;
    use crate::{SimProtocolKind, Tuning};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::far_graph;
    use triad_graph::partition::random_disjoint;
    use triad_graph::{Edge, VertexId};

    fn low_tester() -> SessionTester {
        SessionTester::Simultaneous(SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 6.0 },
        ))
    }

    #[test]
    fn batched_sessions_match_standalone_sweeps() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let tester = low_tester();

        let mut batch = SessionBatch::new();
        let handles: Vec<_> = (0..6)
            .map(|s| {
                batch.submit(SessionSpec {
                    graph: &g,
                    partition: &parts,
                    tester: tester.clone(),
                    seed: 100 + s,
                    reps: 5,
                })
            })
            .collect();
        for threads in [1, 2, 4] {
            let results = batch.run(&Pool::new(threads));
            for (s, h) in handles.iter().enumerate() {
                let alone =
                    run_amplified_prepared(&Pool::serial(), &tester, &input, 5, 100 + s as u64)
                        .unwrap();
                let batched = results.get(*h).as_ref().unwrap();
                assert_eq!(batched.outcome, alone.outcome, "s{s} t{threads}");
                assert_eq!(batched.stats, alone.stats, "s{s} t{threads}");
                assert_eq!(batched.transcript, alone.transcript, "s{s} t{threads}");
            }
        }
    }

    #[test]
    fn shared_input_is_prepared_once() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let g1 = far_graph(200, 6.0, 0.2, &mut rng).unwrap();
        let g2 = far_graph(220, 6.0, 0.2, &mut rng).unwrap();
        let p1 = random_disjoint(&g1, 3, &mut rng);
        let p2 = random_disjoint(&g2, 3, &mut rng);
        let tester = low_tester();
        let mut batch = SessionBatch::new();
        for s in 0..10 {
            let (g, p) = if s % 2 == 0 { (&g1, &p1) } else { (&g2, &p2) };
            batch.submit(SessionSpec {
                graph: g,
                partition: p,
                tester: tester.clone(),
                seed: s,
                reps: 2,
            });
        }
        let results = batch.run(&Pool::new(2));
        assert_eq!(results.cache_misses, 2, "two distinct inputs");
        assert_eq!(results.cache_hits, 8);
        assert_eq!(results.len(), 10);
        assert!(results.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn invalid_session_fails_alone() {
        let g = Graph::from_edges(10, [(0, 1), (1, 2), (0, 2)]);
        let good = Partition::new(vec![
            vec![Edge::new(VertexId(0), VertexId(1))],
            vec![
                Edge::new(VertexId(1), VertexId(2)),
                Edge::new(VertexId(0), VertexId(2)),
            ],
        ]);
        // Vertex 99 is outside the graph: validation must fail.
        let bad = Partition::new(vec![
            vec![Edge::new(VertexId(0), VertexId(99))],
            vec![Edge::new(VertexId(1), VertexId(2))],
        ]);
        let tester = SessionTester::Exact(SendEverything::default());
        let mut batch = SessionBatch::new();
        let h_good = batch.submit(SessionSpec {
            graph: &g,
            partition: &good,
            tester: tester.clone(),
            seed: 0,
            reps: 1,
        });
        let h_bad = batch.submit(SessionSpec {
            graph: &g,
            partition: &bad,
            tester,
            seed: 0,
            reps: 1,
        });
        let results = batch.run(&Pool::new(2));
        let run = results.get(h_good).as_ref().expect("valid session runs");
        assert!(run.outcome.found_triangle());
        assert!(matches!(
            results.get(h_bad),
            Err(ProtocolError::InvalidInput(_))
        ));
    }

    #[test]
    fn distinct_partitions_of_one_graph_do_not_collide() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = far_graph(150, 6.0, 0.2, &mut rng).unwrap();
        let p1 = random_disjoint(&g, 3, &mut rng);
        let p2 = random_disjoint(&g, 4, &mut rng);
        assert_ne!(input_key(&g, &p1), input_key(&g, &p2));
        assert_eq!(input_key(&g, &p1), input_key(&g, &p1));
    }

    #[test]
    fn empty_batch_runs() {
        let results = SessionBatch::new().run(&Pool::new(2));
        assert!(results.is_empty());
        assert_eq!(results.cache_misses, 0);
    }
}
