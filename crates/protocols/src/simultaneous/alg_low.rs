//! Algorithm 8/10: the low-degree simultaneous tester.

use super::referee_find_triangle;
use crate::config::Tuning;
use triad_comm::{Payload, PlayerState, SharedRandomness, SimMessage, SimultaneousProtocol};
use triad_graph::{Triangle, VertexId};

/// Shared-randomness tag naming the large set `S` (`p₁ = c/d`).
const S_TAG: u64 = 0x414C_4C53; // "ALLS"
/// Shared-randomness tag naming the small set `R` (`p₂ = c/√n`).
const R_TAG: u64 = 0x414C_4C52; // "ALLR"

/// The `d = O(√n)` one-round tester: a large public set `S` (each vertex
/// w.p. `c/d`) catches rare high-degree triangle hubs; a small public set
/// `R` (each vertex w.p. `c/√n`) catches the other two corners by the
/// birthday paradox. Players post their edges in `R × (R ∪ S)`, capped.
///
/// Communication `O(k·√n·log n)` with constant one-sided error
/// (Theorem 3.26).
#[derive(Debug, Clone, Copy)]
pub struct AlgLow {
    tuning: Tuning,
    avg_degree: f64,
}

impl AlgLow {
    /// A tester for a graph of (known) average degree `avg_degree`.
    pub fn new(tuning: Tuning, avg_degree: f64) -> Self {
        AlgLow { tuning, avg_degree }
    }

    /// The pair `(p₁, p₂)` of sampling probabilities.
    pub fn probabilities(&self, n: usize) -> (f64, f64) {
        self.tuning.low_probabilities(n, self.avg_degree)
    }

    /// The per-player edge cap `q`.
    pub fn cap(&self, n: usize) -> usize {
        self.tuning.low_cap(n, self.avg_degree)
    }

    fn in_r(&self, shared: &SharedRandomness, v: VertexId, p2: f64) -> bool {
        shared.vertex_sampled(R_TAG, v, p2)
    }

    fn in_s(&self, shared: &SharedRandomness, v: VertexId, p1: f64) -> bool {
        shared.vertex_sampled(S_TAG, v, p1)
    }
}

impl SimultaneousProtocol for AlgLow {
    type Output = Option<Triangle>;

    fn message<'a>(&self, player: &'a PlayerState, shared: &SharedRandomness) -> SimMessage<'a> {
        let n = player.n();
        let (p1, p2) = self.probabilities(n);
        let cap = self.cap(n);
        let mut out = Vec::new();
        for e in player.edges() {
            let (u, v) = e.endpoints();
            let ru = self.in_r(shared, u, p2);
            let rv = self.in_r(shared, v, p2);
            let qualifies = (ru && (rv || self.in_s(shared, v, p1)))
                || (rv && (ru || self.in_s(shared, u, p1)));
            if qualifies {
                out.push(*e);
                if out.len() >= cap {
                    break;
                }
            }
        }
        SimMessage::of_phased(
            Payload::edge_set(self.tuning.repr, n, out.into()),
            "r-cross-edges",
        )
    }

    fn referee(
        &self,
        n: usize,
        messages: &[SimMessage],
        _shared: &SharedRandomness,
    ) -> Option<Triangle> {
        referee_find_triangle(n, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::run_simultaneous;
    use triad_graph::Edge;

    #[test]
    fn messages_only_contain_r_touching_edges() {
        let edges: Vec<Edge> = (0..60u32)
            .map(|i| Edge::new(VertexId(i), VertexId(i + 60)))
            .collect();
        let player = PlayerState::new(0, 120, &edges);
        let shared = SharedRandomness::new(3);
        let alg = AlgLow::new(Tuning::practical(0.2), 4.0);
        let (p1, p2) = alg.probabilities(120);
        let msg = alg.message(&player, &shared);
        for e in msg.edges() {
            let (u, v) = e.endpoints();
            let ru = shared.vertex_sampled(R_TAG, u, p2);
            let rv = shared.vertex_sampled(R_TAG, v, p2);
            assert!(ru || rv, "every posted edge touches R");
            let other_ok = if ru {
                rv || shared.vertex_sampled(S_TAG, v, p1)
            } else {
                shared.vertex_sampled(S_TAG, u, p1)
            };
            assert!(other_ok, "other endpoint must be in R ∪ S");
        }
    }

    #[test]
    fn degenerate_degree_sends_all_r_edges() {
        // d ≤ c ⇒ p₁ = 1, S = V, so the filter reduces to "touches R".
        let alg = AlgLow::new(Tuning::practical(0.2), 1.0);
        let (p1, _) = alg.probabilities(100);
        assert_eq!(p1, 1.0);
    }

    #[test]
    fn finds_triangle_through_high_degree_hub() {
        // Hub 0 adjacent to everyone; triangles (0, i, i+1). The hub is
        // caught by S (or R), the leaf pair by R.
        let mut edges = Vec::new();
        let n = 200u32;
        for i in 1..n {
            edges.push(Edge::new(VertexId(0), VertexId(i)));
        }
        for i in (1..n - 1).step_by(2) {
            edges.push(Edge::new(VertexId(i), VertexId(i + 1)));
        }
        let shares = vec![edges];
        let alg = AlgLow::new(Tuning::practical(0.2), 3.0);
        let mut hits = 0;
        for seed in 0..10 {
            let run = run_simultaneous(&alg, n as usize, &shares, SharedRandomness::new(seed));
            if run.output.is_some() {
                hits += 1;
            }
        }
        assert!(hits >= 8, "hub triangles found in {hits}/10 runs");
    }

    #[test]
    fn cap_is_enforced() {
        let edges: Vec<Edge> = (1..=2000u32)
            .map(|i| Edge::new(VertexId(0), VertexId(i)))
            .collect();
        let player = PlayerState::new(0, 2001, &edges);
        let shared = SharedRandomness::new(1);
        let tuning = Tuning::practical(0.2).with_scale(0.1);
        let alg = AlgLow::new(tuning, 1.0);
        let msg = alg.message(&player, &shared);
        assert!(msg.edges().count() <= alg.cap(2001));
    }
}
