//! Algorithm 7/9: the high-degree simultaneous tester.

use super::referee_find_triangle;
use crate::config::Tuning;
use triad_comm::{Payload, PlayerState, SharedRandomness, SimMessage, SimultaneousProtocol};
use triad_graph::Triangle;

/// Shared-randomness tag naming AlgHigh's vertex sample `S`.
const S_TAG: u64 = 0x414C_4748; // "ALGH"

/// The `d = Ω(√n)` one-round tester ([Alon–Kaufman–Krivelevich–Ron]'s
/// dense sampler, implemented the cheap way): a public vertex sample `S`
/// of size `c·(n²/εd)^{1/3}`, each player posting the edges of its input
/// induced by `S`, capped by the Markov cutoff; the referee searches the
/// union for a triangle.
///
/// Communication `O(k·(nd)^{1/3}·log n)` with constant one-sided error
/// (Theorem 3.24).
#[derive(Debug, Clone, Copy)]
pub struct AlgHigh {
    tuning: Tuning,
    avg_degree: f64,
}

impl AlgHigh {
    /// A tester for a graph of (known) average degree `avg_degree`.
    pub fn new(tuning: Tuning, avg_degree: f64) -> Self {
        AlgHigh { tuning, avg_degree }
    }

    /// The per-vertex sampling probability `|S|/n`.
    pub fn sample_probability(&self, n: usize) -> f64 {
        (self.tuning.high_sample_size(n, self.avg_degree) / n as f64).min(1.0)
    }

    /// The per-player edge cap (Markov cutoff of step 2).
    pub fn cap(&self, n: usize) -> usize {
        self.tuning.high_cap(n, self.avg_degree)
    }
}

impl SimultaneousProtocol for AlgHigh {
    type Output = Option<Triangle>;

    fn message<'a>(&self, player: &'a PlayerState, shared: &SharedRandomness) -> SimMessage<'a> {
        let n = player.n();
        let p = self.sample_probability(n);
        let cap = self.cap(n);
        let mut out = Vec::new();
        for e in player.edges() {
            if shared.vertex_sampled(S_TAG, e.u(), p) && shared.vertex_sampled(S_TAG, e.v(), p) {
                out.push(*e);
                if out.len() >= cap {
                    break;
                }
            }
        }
        SimMessage::of_phased(
            Payload::edge_set(self.tuning.repr, n, out.into()),
            "induced-sample",
        )
    }

    fn referee(
        &self,
        n: usize,
        messages: &[SimMessage],
        _shared: &SharedRandomness,
    ) -> Option<Triangle> {
        referee_find_triangle(n, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::run_simultaneous;
    use triad_graph::{Edge, VertexId};

    #[test]
    fn message_contains_only_induced_edges() {
        let edges: Vec<Edge> = (0..50u32)
            .map(|i| Edge::new(VertexId(i), VertexId((i + 1) % 100)))
            .collect();
        let player = PlayerState::new(0, 100, &edges);
        let shared = SharedRandomness::new(5);
        let alg = AlgHigh::new(Tuning::practical(0.2), 20.0);
        let msg = alg.message(&player, &shared);
        let p = alg.sample_probability(100);
        for e in msg.edges() {
            assert!(shared.vertex_sampled(S_TAG, e.u(), p));
            assert!(shared.vertex_sampled(S_TAG, e.v(), p));
            assert!(player.has_edge(e));
        }
    }

    #[test]
    fn cap_limits_message_size() {
        let edges: Vec<Edge> = (1..=500u32)
            .map(|i| Edge::new(VertexId(0), VertexId(i)))
            .collect();
        let player = PlayerState::new(0, 501, &edges);
        let shared = SharedRandomness::new(9);
        // Tiny scale forces a small cap even at p close to 1.
        let tuning = Tuning::practical(0.2).with_scale(0.2);
        let alg = AlgHigh::new(tuning, 2.0);
        let msg = alg.message(&player, &shared);
        assert!(msg.edges().count() <= alg.cap(501));
    }

    #[test]
    fn full_probability_run_finds_planted_triangle() {
        // With p = 1 (huge sample size from tiny n / small d), the referee
        // must see every edge and find the triangle.
        let shares = vec![
            vec![Edge::new(VertexId(0), VertexId(1))],
            vec![
                Edge::new(VertexId(1), VertexId(2)),
                Edge::new(VertexId(0), VertexId(2)),
            ],
        ];
        let alg = AlgHigh::new(Tuning::practical(0.3), 1.0);
        let run = run_simultaneous(&alg, 3, &shares, SharedRandomness::new(1));
        assert!(run.output.is_some());
        assert_eq!(run.stats.rounds, 1);
    }
}
