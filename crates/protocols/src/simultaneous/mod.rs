//! The one-round (simultaneous) testers of §3.4.
//!
//! * [`AlgHigh`] — for `d = Ω(√n)`: publicly sample
//!   `|S| = Θ((n²/εd)^{1/3})` vertices; players post the induced edges
//!   they hold (Algorithm 7/9). Cost `Õ(k·(nd)^{1/3})`.
//! * [`AlgLow`] — for `d = O(√n)`: sample a large set `S`
//!   (`p₁ = c/d`, catching rare high-degree triangle hubs) and a small
//!   set `R` (`p₂ = c/√n`); players post edges in `R × (R ∪ S)`
//!   (Algorithm 8/10). Cost `Õ(k·√n)`.
//! * [`Oblivious`] — no knowledge of `d`: every player brackets the true
//!   density inside `D_j = [d̄_j, (4k/ε)·d̄_j]` from its own input (if it
//!   is *relevant* — holds an `Ω(ε/k)` fraction of the edges), runs
//!   `O(log k)` capped instances of the two protocols across its guess
//!   range, and the referee unions everything (Algorithm 11,
//!   Theorem 3.32).

mod alg_high;
mod alg_low;
mod oblivious;

pub use alg_high::AlgHigh;
pub use alg_low::AlgLow;
pub use oblivious::Oblivious;

use crate::amplify::PreparedInput;
use crate::config::Tuning;
use crate::outcome::{ProtocolError, ProtocolRun, TallyRun, TestOutcome};
use triad_comm::player::players_from_shares;
use triad_comm::{
    run_simultaneous_prepared, Payload, PlayerState, Recorder, SharedRandomness, SimMessage,
};
use triad_graph::kernels::{bitset, EdgeBitset};
use triad_graph::partition::Partition;
use triad_graph::{triangles, Graph, GraphBuilder, Triangle};

/// The referee of every §3.4 protocol: union all posted edges and look
/// for a triangle in the exposed subgraph.
///
/// Representation-aware: when every payload is an edge list, the union
/// builds a [`Graph`] and the search runs on the `O(m^{3/2})` forward
/// kernel. When any player posted a bitset payload, the union stays in
/// bitset space (word-parallel ORs, `O(words)` per dense row) and the
/// search runs the AND-popcount kernel instead. The two kernels return
/// the **same witness** on the same edge set (pinned in `triad-graph`),
/// so payload representation can never change the verdict — the
/// `tests/payload_differential.rs` contract.
pub(crate) fn referee_find_triangle(n: usize, messages: &[SimMessage]) -> Option<Triangle> {
    let any_bits = messages
        .iter()
        .flat_map(|m| m.payloads().iter())
        .any(|p| matches!(p, Payload::EdgeBits(_)));
    if any_bits {
        let mut set = EdgeBitset::new(n);
        for m in messages {
            for p in m.payloads() {
                if let Payload::EdgeBits(b) = p {
                    if b.n() == n {
                        set.union_with(b);
                        continue;
                    }
                }
                for e in p.iter_edges() {
                    set.insert(e);
                }
            }
        }
        return bitset::find_triangle(&set);
    }
    let mut b = GraphBuilder::new(n);
    for m in messages {
        for e in m.edges() {
            b.add_edge(e);
        }
    }
    triangles::find_triangle(&b.build())
}

/// Which simultaneous protocol to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimProtocolKind {
    /// Algorithm 7/9, given the average degree.
    High {
        /// The (known) average degree `d`.
        avg_degree: f64,
    },
    /// Algorithm 8/10, given the average degree.
    Low {
        /// The (known) average degree `d`.
        avg_degree: f64,
    },
    /// Algorithm 11: degree-oblivious.
    Oblivious,
}

/// Top-level driver for the simultaneous testers.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use triad_graph::generators::far_graph;
/// use triad_graph::partition::random_disjoint;
/// use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
/// let g = far_graph(300, 8.0, 0.2, &mut rng)?;
/// let parts = random_disjoint(&g, 4, &mut rng);
/// let tester = SimultaneousTester::new(
///     Tuning::practical(0.2),
///     SimProtocolKind::Low { avg_degree: 8.0 },
/// );
/// let run = tester.run(&g, &parts, 3)?;
/// println!("one round, {} bits", run.stats.total_bits);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SimultaneousTester {
    tuning: Tuning,
    kind: SimProtocolKind,
}

impl SimultaneousTester {
    /// A tester for the chosen protocol variant.
    pub fn new(tuning: Tuning, kind: SimProtocolKind) -> Self {
        SimultaneousTester { tuning, kind }
    }

    /// The protocol variant.
    pub fn kind(&self) -> SimProtocolKind {
        self.kind
    }

    /// Runs one simultaneous round over the partitioned input.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidInput`] on malformed shares or
    /// non-positive degree hints.
    pub fn run(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        let n = g.vertex_count();
        crate::outcome::validate_shares(g, partition)?;
        let players = players_from_shares(n, partition.shares());
        self.run_with(n, &players, seed)
    }

    /// Runs one simultaneous round over a [`PreparedInput`], recording
    /// only a tally — the per-repetition fast path: shares are already
    /// validated and the player states already built, so a repetition
    /// re-rolls nothing but the shared randomness.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidInput`] on non-positive degree
    /// hints.
    pub fn run_prepared_tally(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
    ) -> Result<TallyRun, ProtocolError> {
        self.run_with(input.n(), input.players(), seed)
    }

    /// Runs one simultaneous round under a
    /// [`FaultPlan`](triad_comm::FaultPlan). One-round protocols cannot
    /// retry — each player speaks exactly once — so a dropped, crashed,
    /// or corrupted message kills the repetition (bits preserved);
    /// duplicate deliveries survive with the extra copy charged under
    /// [`triad_comm::RETRANSMIT_LABEL`].
    ///
    /// # Errors
    ///
    /// Returns [`FailedRep`](crate::chaos::FailedRep) on a fatal fault,
    /// or — wrapped as `Aborted` — on non-positive degree hints.
    pub fn run_chaos_tally(
        &self,
        input: &PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        let n = input.n();
        let players = input.players();
        let shared = SharedRandomness::new(seed);
        let result = match self.kind {
            SimProtocolKind::High { avg_degree } => {
                if avg_degree <= 0.0 {
                    return Err(Box::new(crate::chaos::FailedRep::aborted(
                        "average degree must be positive".into(),
                        input.k(),
                    )));
                }
                let p = AlgHigh::new(self.tuning, avg_degree);
                triad_comm::run_simultaneous_chaos::<_, triad_comm::Tally>(
                    &p, n, players, shared, plan, rep,
                )
            }
            SimProtocolKind::Low { avg_degree } => {
                if avg_degree <= 0.0 {
                    return Err(Box::new(crate::chaos::FailedRep::aborted(
                        "average degree must be positive".into(),
                        input.k(),
                    )));
                }
                let p = AlgLow::new(self.tuning, avg_degree);
                triad_comm::run_simultaneous_chaos::<_, triad_comm::Tally>(
                    &p, n, players, shared, plan, rep,
                )
            }
            SimProtocolKind::Oblivious => {
                let p = Oblivious::new(self.tuning, players.len());
                triad_comm::run_simultaneous_chaos::<_, triad_comm::Tally>(
                    &p, n, players, shared, plan, rep,
                )
            }
        };
        match result {
            Ok(chaos) => Ok(crate::chaos::ChaosRep {
                run: TallyRun {
                    outcome: TestOutcome::from(chaos.run.output),
                    stats: chaos.run.stats,
                    transcript: chaos.run.transcript,
                },
                injected: chaos.injected,
            }),
            Err(f) => Err(Box::new(crate::chaos::FailedRep {
                error: f.error,
                stats: f.stats,
                transcript: f.transcript,
                injected: f.injected,
            })),
        }
    }

    /// The dispatch shared by every entry point, generic over the
    /// recorder.
    fn run_with<R: Recorder>(
        &self,
        n: usize,
        players: &[PlayerState],
        seed: u64,
    ) -> Result<ProtocolRun<R>, ProtocolError> {
        let shared = SharedRandomness::new(seed);
        let run = match self.kind {
            SimProtocolKind::High { avg_degree } => {
                if avg_degree <= 0.0 {
                    return Err(ProtocolError::InvalidInput(
                        "average degree must be positive".into(),
                    ));
                }
                let p = AlgHigh::new(self.tuning, avg_degree);
                run_simultaneous_prepared(&p, n, players, shared)
            }
            SimProtocolKind::Low { avg_degree } => {
                if avg_degree <= 0.0 {
                    return Err(ProtocolError::InvalidInput(
                        "average degree must be positive".into(),
                    ));
                }
                let p = AlgLow::new(self.tuning, avg_degree);
                run_simultaneous_prepared(&p, n, players, shared)
            }
            SimProtocolKind::Oblivious => {
                let p = Oblivious::new(self.tuning, players.len());
                run_simultaneous_prepared(&p, n, players, shared)
            }
        };
        Ok(ProtocolRun {
            outcome: TestOutcome::from(run.output),
            stats: run.stats,
            transcript: run.transcript,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::far_graph;
    use triad_graph::partition::random_disjoint;

    fn success_rate(kind: impl Fn(f64) -> SimProtocolKind, n: usize, d: f64) -> f64 {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let g = far_graph(n, d, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = SimultaneousTester::new(Tuning::practical(0.2), kind(d));
        let mut hits = 0u32;
        let trials = 20u64;
        for seed in 0..trials {
            let run = tester.run(&g, &parts, seed).unwrap();
            if let Some(t) = run.outcome.triangle() {
                assert!(t.exists_in(&g), "one-sided error violated");
                hits += 1;
            }
            assert_eq!(run.stats.rounds, 1, "simultaneous means one round");
        }
        f64::from(hits) / trials as f64
    }

    #[test]
    fn low_variant_finds_triangles_reliably() {
        let rate = success_rate(|d| SimProtocolKind::Low { avg_degree: d }, 360, 8.0);
        assert!(rate >= 0.8, "AlgLow success rate {rate}");
    }

    #[test]
    fn high_variant_finds_triangles_reliably() {
        let rate = success_rate(|d| SimProtocolKind::High { avg_degree: d }, 400, 40.0);
        assert!(rate >= 0.8, "AlgHigh success rate {rate}");
    }

    #[test]
    fn oblivious_variant_finds_triangles_reliably() {
        let rate = success_rate(|_| SimProtocolKind::Oblivious, 360, 8.0);
        assert!(rate >= 0.8, "Oblivious success rate {rate}");
    }

    #[test]
    fn triangle_free_inputs_always_accept() {
        let g = Graph::from_edges(100, (0..99).map(|i| (i as u32, i as u32 + 1)));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parts = random_disjoint(&g, 3, &mut rng);
        for kind in [
            SimProtocolKind::High { avg_degree: 2.0 },
            SimProtocolKind::Low { avg_degree: 2.0 },
            SimProtocolKind::Oblivious,
        ] {
            let tester = SimultaneousTester::new(Tuning::practical(0.2), kind);
            for seed in 0..5 {
                assert!(tester.run(&g, &parts, seed).unwrap().outcome.accepts());
            }
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let parts = Partition::new(vec![vec![triad_graph::Edge::new(
            triad_graph::VertexId(9),
            triad_graph::VertexId(10),
        )]]);
        let tester = SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 2.0 },
        );
        assert!(tester.run(&g, &parts, 0).is_err());
        let ok_parts = Partition::new(vec![vec![triad_graph::Edge::new(
            triad_graph::VertexId(0),
            triad_graph::VertexId(1),
        )]]);
        let bad = SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::High { avg_degree: 0.0 },
        );
        assert!(bad.run(&g, &ok_parts, 0).is_err());
    }

    #[test]
    fn referee_unions_messages() {
        use triad_comm::Payload;
        let e = |a, b| triad_graph::Edge::new(triad_graph::VertexId(a), triad_graph::VertexId(b));
        let m1 = SimMessage::of(Payload::Edges(vec![e(0, 1), e(1, 2)].into()));
        let m2 = SimMessage::of(Payload::Edges(vec![e(0, 2)].into()));
        let t = referee_find_triangle(3, &[m1, m2]).unwrap();
        assert_eq!(t.vertices().len(), 3);
        let empty = referee_find_triangle(3, &[]);
        assert!(empty.is_none());
    }

    #[test]
    fn referee_witness_is_representation_independent() {
        use std::borrow::Cow;
        use triad_comm::Payload;
        let e = |a, b| triad_graph::Edge::new(triad_graph::VertexId(a), triad_graph::VertexId(b));
        // A graph with several triangles, split across two players.
        let half_a = vec![e(0, 1), e(1, 2), e(3, 4), e(4, 5), e(1, 3)];
        let half_b = vec![e(0, 2), e(3, 5), e(2, 3), e(1, 4)];
        let n = 6;
        let as_edges =
            |es: &[triad_graph::Edge]| SimMessage::of(Payload::Edges(es.to_vec().into()));
        let as_bits = |es: &[triad_graph::Edge]| {
            SimMessage::of(Payload::EdgeBits(Cow::Owned(EdgeBitset::from_edges(
                n,
                es.iter().copied(),
            ))))
        };
        let pure = referee_find_triangle(n, &[as_edges(&half_a), as_edges(&half_b)]);
        let bits = referee_find_triangle(n, &[as_bits(&half_a), as_bits(&half_b)]);
        let mixed = referee_find_triangle(n, &[as_edges(&half_a), as_bits(&half_b)]);
        assert!(pure.is_some());
        assert_eq!(pure, bits, "bitset referee must return the same witness");
        assert_eq!(pure, mixed, "mixed representations must agree too");
    }
}
