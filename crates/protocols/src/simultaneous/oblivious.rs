//! Algorithm 11: the degree-oblivious simultaneous tester (§3.4.3).
//!
//! Nobody knows the global average degree `d`, and in one round nobody
//! can ask. The trick: a player holding an `Ω(ε/k)`-fraction of the edges
//! (a *relevant* player) knows that `d ∈ [d̄_j, (4k/ε)·d̄_j]` where `d̄_j`
//! is the average degree of its own share — and irrelevant players can be
//! ignored entirely, since deleting their edges keeps the graph
//! `(ε/2)`-far. Every player therefore runs `O(log k)` capped instances
//! of [`AlgHigh`](super::AlgHigh)/[`AlgLow`](super::AlgLow)-style
//! sampling, one per power-of-two density guess in its personal range,
//! and the referee unions all posted edges. Per-instance caps keyed to
//! `d̄_j` (not to the guess!) prevent the low guesses from blowing up the
//! message size (Lemmas 3.30–3.31).

use super::referee_find_triangle;
use crate::config::Tuning;
use triad_comm::{Payload, PlayerState, SharedRandomness, SimMessage, SimultaneousProtocol};
use triad_graph::Triangle;

/// Tag base for per-guess high-degree samples (`S` of AlgHigh, one
/// independent sample per guess exponent).
const HIGH_TAG_BASE: u64 = 0x4F42_4800; // "OBH."
/// Tag base for per-guess low-degree large sets (`S` of AlgLow).
const LOW_S_TAG_BASE: u64 = 0x4F42_5300; // "OBS."
/// Single shared tag for the small set `R` — the paper notes all low
/// instances can reuse one `R`.
const LOW_R_TAG: u64 = 0x4F42_5252; // "OBRR"

/// The degree-oblivious one-round tester (Theorem 3.32):
/// `O(k√n·polylog)` bits for `d = O(√n)` and `O(k(nd)^{1/3}·polylog)`
/// for `d = Ω(√n)`, with constant one-sided error — within polylog
/// factors of the degree-aware protocols.
#[derive(Debug, Clone, Copy)]
pub struct Oblivious {
    tuning: Tuning,
    k: usize,
}

impl Oblivious {
    /// A tester for `k` players.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(tuning: Tuning, k: usize) -> Self {
        assert!(k >= 1, "need at least one player");
        Oblivious { tuning, k }
    }

    /// The power-of-two guess exponents player `j` participates in:
    /// all `i` with `2^i ∈ [max(1, d̄_j), min(n, (4k/ε)·d̄_j)]`.
    pub fn guess_exponents(&self, n: usize, local_avg_degree: f64) -> Vec<u32> {
        if local_avg_degree <= 0.0 {
            return Vec::new(); // empty input: certainly irrelevant
        }
        let lo = local_avg_degree.max(1.0);
        let hi = (4.0 * self.k as f64 / self.tuning.epsilon * local_avg_degree)
            .min(n as f64)
            .max(lo);
        let first = lo.log2().floor().max(0.0) as u32;
        let last = hi.log2().ceil().max(0.0) as u32;
        (first..=last).collect()
    }
}

impl SimultaneousProtocol for Oblivious {
    type Output = Option<Triangle>;

    fn message<'a>(&self, player: &'a PlayerState, shared: &SharedRandomness) -> SimMessage<'a> {
        let n = player.n();
        let sqrt_n = (n as f64).sqrt();
        let d_bar = player.local_average_degree();
        let mut msg = SimMessage::empty();
        for i in self.guess_exponents(n, d_bar) {
            let guess = 2f64.powi(i as i32);
            if guess >= sqrt_n {
                // AlgHigh-style instance at density guess `guess`.
                let p = (self.tuning.high_sample_size(n, guess) / n as f64).min(1.0);
                let cap = self.tuning.oblivious_high_cap(n, d_bar, self.k);
                let tag = HIGH_TAG_BASE + u64::from(i);
                let mut out = Vec::new();
                for e in player.edges() {
                    if shared.vertex_sampled(tag, e.u(), p) && shared.vertex_sampled(tag, e.v(), p)
                    {
                        out.push(*e);
                        if out.len() >= cap {
                            break;
                        }
                    }
                }
                msg.push_phased(
                    Payload::edge_set(self.tuning.repr, n, out.into()),
                    "oblivious-high-guess",
                );
            } else {
                // AlgLow-style instance at density guess `guess`.
                let c = self.tuning.low_c();
                let p1 = (c / guess).min(1.0);
                let p2 = (c / sqrt_n).min(1.0);
                let cap = self.tuning.oblivious_low_cap(n, self.k);
                let s_tag = LOW_S_TAG_BASE + u64::from(i);
                let mut out = Vec::new();
                for e in player.edges() {
                    let (u, v) = e.endpoints();
                    let ru = shared.vertex_sampled(LOW_R_TAG, u, p2);
                    let rv = shared.vertex_sampled(LOW_R_TAG, v, p2);
                    let qualifies = (ru && (rv || shared.vertex_sampled(s_tag, v, p1)))
                        || (rv && (ru || shared.vertex_sampled(s_tag, u, p1)));
                    if qualifies {
                        out.push(*e);
                        if out.len() >= cap {
                            break;
                        }
                    }
                }
                msg.push_phased(
                    Payload::edge_set(self.tuning.repr, n, out.into()),
                    "oblivious-low-guess",
                );
            }
        }
        msg
    }

    fn referee(
        &self,
        n: usize,
        messages: &[SimMessage],
        _shared: &SharedRandomness,
    ) -> Option<Triangle> {
        referee_find_triangle(n, messages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::run_simultaneous;
    use triad_graph::{Edge, VertexId};

    #[test]
    fn guess_range_brackets_true_density_for_relevant_players() {
        let tuning = Tuning::practical(0.2);
        let alg = Oblivious::new(tuning, 8);
        // A relevant player sees d̄_j ≥ (ε/4k)·d; with d = 32 and the
        // worst allowed d̄_j = 0.2/32·32 = 0.2 the range must still
        // contain 32.
        let d_true: f64 = 32.0;
        let worst_dbar = tuning.epsilon / (4.0 * 8.0) * d_true;
        let exps = alg.guess_exponents(1 << 14, worst_dbar);
        let contains = exps.iter().any(|i| {
            let g = 2f64.powi(*i as i32);
            g >= d_true / 2.0 && g <= d_true * 2.0
        });
        assert!(contains, "guesses {exps:?} must bracket d = {d_true}");
    }

    #[test]
    fn number_of_instances_is_logarithmic_in_k() {
        let tuning = Tuning::practical(0.2);
        let small = Oblivious::new(tuning, 2)
            .guess_exponents(1 << 14, 8.0)
            .len();
        let large = Oblivious::new(tuning, 64)
            .guess_exponents(1 << 14, 8.0)
            .len();
        assert!(large > small);
        assert!(
            large - small <= 6,
            "32× more players adds ~log₂32 = 5 guesses, got {small} → {large}"
        );
    }

    #[test]
    fn empty_player_sends_nothing() {
        let player = PlayerState::new(0, 64, &[]);
        let alg = Oblivious::new(Tuning::practical(0.2), 4);
        let msg = alg.message(&player, &SharedRandomness::new(1));
        assert_eq!(msg.bit_len(64).get(), 0);
    }

    #[test]
    fn run_exposes_triangle_without_degree_knowledge() {
        let e = |a, b| Edge::new(VertexId(a), VertexId(b));
        // A clique on 6 vertices split over 2 players, n = 64.
        let mut all = Vec::new();
        for a in 0..6u32 {
            for b in (a + 1)..6 {
                all.push(e(a, b));
            }
        }
        let shares = vec![all[..7].to_vec(), all[7..].to_vec()];
        let alg = Oblivious::new(Tuning::practical(0.2), 2);
        let mut hits = 0;
        for seed in 0..10 {
            let run = run_simultaneous(&alg, 64, &shares, SharedRandomness::new(seed));
            if run.output.is_some() {
                hits += 1;
            }
        }
        assert!(hits >= 7, "clique found in only {hits}/10 runs");
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn zero_players_rejected() {
        let _ = Oblivious::new(Tuning::practical(0.2), 0);
    }
}
