//! Unbiased random-edge primitives.
//!
//! The naive "each player posts a random edge of its input" is biased
//! toward duplicated edges. The paper's fix: publicly sample a random
//! permutation over all potential edges, have each player report its
//! *first* edge under the permutation, and take the overall first. Every
//! present edge is equally likely to be the global minimum regardless of
//! how many players hold it.

use triad_comm::{Payload, PlayerRequest, Recorder, Runtime};
use triad_graph::{Edge, VertexId};

/// Draws a uniformly random edge of the input graph, or `None` if the
/// graph is empty. Costs `O(k log n)` bits.
pub fn random_edge<R: Recorder>(rt: &mut Runtime<R>) -> Option<Edge> {
    let tag = rt.fresh_tag();
    let shared = rt.shared();
    rt.broadcast(PlayerRequest::FirstEdge { perm_tag: tag })
        .into_iter()
        .filter_map(|p| match p {
            Payload::Edge(e) => e,
            _ => None,
        })
        .min_by_key(|e| shared.edge_rank(tag, *e))
}

/// Draws a uniformly random edge incident to `v`, or `None` if `v` is
/// isolated — the sparse-model neighbor primitive. Costs `O(k log n)`.
pub fn random_incident_edge<R: Recorder>(rt: &mut Runtime<R>, v: VertexId) -> Option<Edge> {
    let tag = rt.fresh_tag();
    let shared = rt.shared();
    rt.broadcast(PlayerRequest::FirstIncidentEdge { v, perm_tag: tag })
        .into_iter()
        .filter_map(|p| match p {
            Payload::Edge(e) => e,
            _ => None,
        })
        .min_by_key(|e| shared.edge_rank(tag, *e))
}

/// Simulates a `steps`-step random walk from `start` by repeated
/// random-neighbor draws; stops early at an isolated vertex. Returns the
/// visited vertices including `start`.
pub fn random_walk<R: Recorder>(
    rt: &mut Runtime<R>,
    start: VertexId,
    steps: usize,
) -> Vec<VertexId> {
    let mut path = vec![start];
    let mut at = start;
    for _ in 0..steps {
        match random_incident_edge(rt, at) {
            Some(e) => {
                at = e.other(at).expect("incident edge must touch the walker");
                path.push(at);
            }
            None => break,
        }
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::{CostModel, Runtime, SharedRandomness};

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    fn runtime(seed: u64) -> Runtime {
        // Triangle split across players, plus a pendant edge; edge (0,1)
        // duplicated on both players to exercise unbiasedness.
        let shares = vec![vec![e(0, 1), e(1, 2)], vec![e(0, 1), e(0, 2), e(2, 3)]];
        Runtime::local(
            4,
            &shares,
            SharedRandomness::new(seed),
            CostModel::Coordinator,
        )
    }

    #[test]
    fn random_edge_returns_present_edge() {
        for seed in 0..20 {
            let mut rt = runtime(seed);
            let edge = random_edge(&mut rt).expect("graph non-empty");
            assert!([e(0, 1), e(1, 2), e(0, 2), e(2, 3)].contains(&edge));
        }
    }

    #[test]
    fn random_edge_is_unbiased_despite_duplication() {
        // Frequencies over seeds should be ≈ uniform over the 4 edges even
        // though (0,1) appears in both inputs.
        let mut counts = std::collections::HashMap::new();
        for seed in 0..2000 {
            let mut rt = runtime(seed);
            let edge = random_edge(&mut rt).unwrap();
            *counts.entry(edge).or_insert(0usize) += 1;
        }
        for (edge, c) in &counts {
            assert!(
                (350..=650).contains(c),
                "edge {edge} drawn {c} times out of 2000 (expected ≈500)"
            );
        }
    }

    #[test]
    fn random_incident_edge_touches_vertex() {
        for seed in 0..20 {
            let mut rt = runtime(seed);
            let edge = random_incident_edge(&mut rt, VertexId(2)).expect("vertex 2 not isolated");
            assert!(edge.is_incident_to(VertexId(2)));
        }
    }

    #[test]
    fn random_incident_edge_none_for_isolated() {
        let shares = vec![vec![e(0, 1)]];
        let mut rt = Runtime::local(5, &shares, SharedRandomness::new(0), CostModel::Coordinator);
        assert_eq!(random_incident_edge(&mut rt, VertexId(4)), None);
    }

    #[test]
    fn random_walk_follows_edges() {
        let mut rt = runtime(3);
        let path = random_walk(&mut rt, VertexId(0), 5);
        assert_eq!(path[0], VertexId(0));
        assert!(path.len() >= 2, "vertex 0 has neighbors");
        // Each consecutive pair must be an actual edge of the union graph.
        let union = triad_graph::Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        for w in path.windows(2) {
            assert!(union.has_edge(Edge::new(w[0], w[1])));
        }
    }

    #[test]
    fn random_walk_stops_at_dead_end() {
        // Path graph 0-1; walk of length 5 bounces between them (both have
        // neighbors), but from an isolated start it stays put.
        let shares = vec![vec![e(0, 1)]];
        let mut rt = Runtime::local(3, &shares, SharedRandomness::new(1), CostModel::Coordinator);
        let path = random_walk(&mut rt, VertexId(2), 5);
        assert_eq!(path, vec![VertexId(2)]);
    }
}
