//! The property-testing building blocks of §3.1, implemented as
//! coordinator-model subroutines.
//!
//! Each primitive the paper shows to be efficiently implementable in the
//! multiparty setting — even with edge duplication — lives here:
//!
//! * [`edge_exists`] — edge queries in `O(k)` bits,
//! * [`random_edge`] / [`random_incident_edge`] / [`random_walk`] —
//!   permutation-based unbiased sampling (duplication-safe),
//! * [`approx_degree`] — Theorem 3.1's α-approximation under duplication,
//! * [`approx_degree_no_duplication`] — Lemma 3.2's cheaper no-duplication
//!   variant (also a distinct-elements estimator),
//! * [`induced_subgraph_edges`] / [`collect_incident_edges`] / [`bfs`] —
//!   subgraph exposure and breadth-first search.

mod degree;
mod induced;
mod random_edge;

pub use degree::{
    approx_degree, approx_degree_no_duplication, approx_edge_count, total_edge_count_bound,
    DegreeEstimate,
};
pub use induced::{bfs, collect_incident_edges, induced_subgraph_edges};
pub use random_edge::{random_edge, random_incident_edge, random_walk};

use triad_comm::{Payload, PlayerRequest, Recorder, Runtime};
use triad_graph::Edge;

/// Queries whether `e` is in the (global) input graph: each player reports
/// one bit and the coordinator ORs them — `O(k)` bits, the dense-model
/// primitive.
pub fn edge_exists<R: Recorder>(rt: &mut Runtime<R>, e: Edge) -> bool {
    rt.broadcast(PlayerRequest::HasEdge(e))
        .into_iter()
        .any(|p| p == Payload::Bit(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::{CostModel, SharedRandomness};
    use triad_graph::VertexId;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn edge_query_ors_across_players() {
        let shares = vec![vec![e(0, 1)], vec![e(1, 2)], vec![]];
        let mut rt = Runtime::local(4, &shares, SharedRandomness::new(1), CostModel::Coordinator);
        assert!(edge_exists(&mut rt, e(0, 1)));
        assert!(edge_exists(&mut rt, e(1, 2)));
        assert!(!edge_exists(&mut rt, e(0, 3)));
        // Cost is Θ(k) per query: 3 queries × 3 players × (edge + bit).
        let per_query = 3 * (4 + 1);
        assert_eq!(rt.stats().total_bits, 3 * per_query);
    }
}
