//! Subgraph exposure primitives.
//!
//! In the query model, learning the subgraph induced by `V' ⊆ V` costs
//! `|V'|²` edge queries; in the communication model the players simply
//! post the edges they hold, paying only for edges that exist. The same
//! idea yields a cheap distributed BFS: all players post the neighbors of
//! the frontier vertex.

use std::collections::{HashSet, VecDeque};
use triad_comm::{PlayerRequest, Recorder, Runtime};
use triad_graph::{Edge, VertexId};

/// Collects every input edge whose endpoints both fall in the public
/// vertex set drawn under `tag` with probability `p` (deduplicated union;
/// under the blackboard cost model duplicate postings are free).
pub fn induced_subgraph_edges<R: Recorder>(
    rt: &mut Runtime<R>,
    tag: u64,
    p: f64,
    cap: usize,
) -> Vec<Edge> {
    rt.gather_edges(PlayerRequest::InducedEdges { tag, p, cap })
}

/// Collects every input edge incident to `v` (deduplicated union) —
/// the "post all neighbors of the examined vertex" step of the paper's
/// BFS. Costs `O(k + deg(v))` edges' worth of bits.
pub fn collect_incident_edges<R: Recorder>(rt: &mut Runtime<R>, v: VertexId) -> Vec<Edge> {
    // p = 1 over a throwaway tag: the sampled set is all of V.
    rt.gather_edges(PlayerRequest::IncidentEdgesSampled {
        v,
        tag: 0,
        p: 1.0,
        cap: usize::MAX,
    })
}

/// Distributed BFS from `start`, exploring at most `max_vertices`
/// vertices; returns the visited set in discovery order.
pub fn bfs<R: Recorder>(
    rt: &mut Runtime<R>,
    start: VertexId,
    max_vertices: usize,
) -> Vec<VertexId> {
    let mut seen: HashSet<VertexId> = HashSet::new();
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    seen.insert(start);
    queue.push_back(start);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        if order.len() >= max_vertices {
            break;
        }
        rt.next_round();
        for e in collect_incident_edges(rt, v) {
            let u = e.other(v).expect("incident edge must touch v");
            if seen.insert(u) {
                queue.push_back(u);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::{CostModel, SharedRandomness};

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn induced_edges_full_probability_returns_union() {
        let shares = vec![vec![e(0, 1), e(1, 2)], vec![e(1, 2), e(2, 3)]];
        let mut rt = Runtime::local(4, &shares, SharedRandomness::new(5), CostModel::Coordinator);
        let mut edges = induced_subgraph_edges(&mut rt, 1, 1.0, usize::MAX);
        edges.sort_unstable();
        assert_eq!(edges, vec![e(0, 1), e(1, 2), e(2, 3)]);
    }

    #[test]
    fn collect_incident_edges_unions_players() {
        let shares = vec![vec![e(0, 1)], vec![e(0, 2)], vec![e(1, 2)]];
        let mut rt = Runtime::local(3, &shares, SharedRandomness::new(5), CostModel::Coordinator);
        let mut edges = collect_incident_edges(&mut rt, VertexId(0));
        edges.sort_unstable();
        assert_eq!(edges, vec![e(0, 1), e(0, 2)]);
    }

    #[test]
    fn bfs_visits_component_in_order() {
        // 0-1-2-3 path plus disconnected 4-5.
        let shares = vec![vec![e(0, 1), e(2, 3)], vec![e(1, 2), e(4, 5)]];
        let mut rt = Runtime::local(6, &shares, SharedRandomness::new(5), CostModel::Coordinator);
        let order = bfs(&mut rt, VertexId(0), 10);
        assert_eq!(
            order,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)]
        );
    }

    #[test]
    fn bfs_respects_vertex_budget() {
        let shares = vec![vec![e(0, 1), e(1, 2), e(2, 3), e(3, 4)]];
        let mut rt = Runtime::local(5, &shares, SharedRandomness::new(5), CostModel::Coordinator);
        let order = bfs(&mut rt, VertexId(0), 2);
        assert_eq!(order.len(), 2);
    }
}
