//! Degree approximation under edge duplication (Theorem 3.1) and without
//! it (Lemma 3.2).
//!
//! With duplication, exact degree counting costs `Ω(k·d(v))` (it embeds
//! set disjointness), but a constant-factor approximation is cheap:
//!
//! 1. **MSB phase** — each player sends the binary length of its local
//!    degree `d_j(v)`; the sum of the rounded powers `Σ 2^{I_j}` is a
//!    `2k`-approximation from above.
//! 2. **Guess-shrinking phase** — the coordinator walks guesses `d''`
//!    down from that bound by factors of `√α`, running per guess a batch
//!    of public sampling experiments ("does the set `S ~ Bernoulli(1/d'')`
//!    contain a neighbor of `v`?", one bit per player per experiment).
//!    The first guess whose observed success rate reaches the threshold
//!    `θ·F(d'')`, with `F(g) = 1 − (1 − 1/g)^g` the success probability
//!    at a correct guess, is declared.

use crate::config::Tuning;
use triad_comm::{Payload, PlayerRequest, Recorder, Runtime};
use triad_graph::VertexId;

/// A degree estimate together with how it was produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeEstimate {
    /// The estimated degree.
    pub value: f64,
    /// Number of guess rounds used (0 when phase 1 short-circuits).
    pub rounds: usize,
}

/// Success probability of one experiment at guess `g` when the guess is
/// exactly right: `F(g) = 1 − (1 − 1/g)^g`.
fn f_of(g: f64) -> f64 {
    1.0 - (1.0 - 1.0 / g).powf(g)
}

/// Acceptance threshold fraction: strictly between `F`'s value at a
/// correct guess (ratio 1) and at an `α = 3`-times-too-high guess
/// (ratio ≤ 0.45 for every `g ≥ 3`).
const THETA: f64 = 0.7;

/// Theorem 3.1: α-approximates `deg(v)` under arbitrary edge duplication.
///
/// Returns an estimate within a constant factor (at most `α√α` with
/// `α = 3` on the high side and `√α` low-side slack) of the true degree,
/// with probability `≥ 1 − δ` at the tuning's experiment counts.
/// Cost: `O(k·log log d)` for phase 1 plus
/// `O(k · log k · experiments)` bits for phase 2.
pub fn approx_degree<R: Recorder>(
    rt: &mut Runtime<R>,
    v: VertexId,
    tuning: &Tuning,
) -> DegreeEstimate {
    // Phase 1: MSB round. d' = Σ_j 2^{len_j} satisfies d ≤ d' ≤ 2k·d.
    let responses = rt.broadcast(PlayerRequest::DegreeMsb { v });
    let mut d_prime: f64 = 0.0;
    for p in responses {
        if let Payload::Count(len) = p {
            if len > 0 {
                d_prime += 2f64.powi(len as i32);
            }
        }
    }
    if d_prime <= 2.0 {
        // Degree at most 2: the upper bound itself is a fine answer.
        return DegreeEstimate {
            value: d_prime,
            rounds: 0,
        };
    }

    // Phase 2: shrink guesses by √α until the experiments say stop.
    let alpha = 3.0f64;
    let step = alpha.sqrt();
    let m = tuning.degree_experiments(rt.k());
    let floor_guess = (d_prime / (2.0 * rt.k() as f64 * step)).max(2.0);
    let mut guess = d_prime;
    let mut rounds = 0;
    while guess > floor_guess {
        rounds += 1;
        let successes = run_experiments(rt, v, guess, m);
        let threshold = THETA * f_of(guess) * m as f64;
        if successes as f64 >= threshold {
            return DegreeEstimate {
                value: guess,
                rounds,
            };
        }
        guess /= step;
    }
    DegreeEstimate {
        value: guess.max(2.0),
        rounds,
    }
}

fn run_experiments<R: Recorder>(rt: &mut Runtime<R>, v: VertexId, guess: f64, m: usize) -> usize {
    let p = (1.0 / guess).min(1.0);
    let mut successes = 0;
    for _ in 0..m {
        let tag = rt.fresh_tag();
        let hit = rt
            .broadcast(PlayerRequest::SampleHit { v, tag, p })
            .into_iter()
            .any(|r| r == Payload::Bit(true));
        if hit {
            successes += 1;
        }
    }
    successes
}

/// The distinct-elements generalization of Theorem 3.1 (the paper's
/// closing remark in §3.1): α-approximates the number of **distinct
/// edges** `m = |E|` under arbitrary duplication, by the same
/// MSB-then-shrink scheme with experiments over a public random *pair*
/// set ("does the sampled pair set intersect your input?").
///
/// Cost: `O(k·log log m + k·log k·experiments)` bits.
pub fn approx_edge_count<R: Recorder>(rt: &mut Runtime<R>, tuning: &Tuning) -> DegreeEstimate {
    let responses = rt.broadcast(PlayerRequest::EdgeCountMsb);
    let mut m_prime: f64 = 0.0;
    for p in responses {
        if let Payload::Count(len) = p {
            if len > 0 {
                m_prime += 2f64.powi(len as i32);
            }
        }
    }
    if m_prime <= 2.0 {
        return DegreeEstimate {
            value: m_prime,
            rounds: 0,
        };
    }
    let alpha = 3.0f64;
    let step = alpha.sqrt();
    let m = tuning.degree_experiments(rt.k());
    let floor_guess = (m_prime / (2.0 * rt.k() as f64 * step)).max(2.0);
    let mut guess = m_prime;
    let mut rounds = 0;
    while guess > floor_guess {
        rounds += 1;
        let p = (1.0 / guess).min(1.0);
        let mut successes = 0usize;
        for _ in 0..m {
            let tag = rt.fresh_tag();
            let hit = rt
                .broadcast(PlayerRequest::GlobalSampleHit { tag, p })
                .into_iter()
                .any(|r| r == Payload::Bit(true));
            if hit {
                successes += 1;
            }
        }
        let threshold = THETA * f_of(guess) * m as f64;
        if successes as f64 >= threshold {
            return DegreeEstimate {
                value: guess,
                rounds,
            };
        }
        guess /= step;
    }
    DegreeEstimate {
        value: guess.max(2.0),
        rounds,
    }
}

/// Lemma 3.2: α-approximates `deg(v)` when the players' inputs are
/// disjoint, in `O(k·(log(1/(α−1)) + log log d))` bits: each player sends
/// the top bits of its local degree and the coordinator sums the
/// truncations, which can only under-count by a factor `< α`.
///
/// # Panics
///
/// Panics unless `alpha > 1`.
pub fn approx_degree_no_duplication<R: Recorder>(
    rt: &mut Runtime<R>,
    v: VertexId,
    alpha: f64,
) -> DegreeEstimate {
    assert!(alpha > 1.0, "alpha must exceed 1");
    // Truncation error per player is < d_j · 2^{1-prefix}; to keep the
    // total within (1 − 1/α)·d we need prefix ≥ 1 − log₂(1 − 1/α).
    let prefix_bits = (1.0 - (1.0 - 1.0 / alpha).log2()).ceil() as u32;
    let responses = rt.broadcast(PlayerRequest::DegreePrefix { v, prefix_bits });
    let mut sum = 0u64;
    for p in responses {
        if let Payload::Bits(truncated, _) = p {
            sum += truncated;
        }
    }
    DegreeEstimate {
        value: sum as f64,
        rounds: 0,
    }
}

/// Bounds the total number of distinct edges `m` from the players' local
/// counts: `Σ_j |E_j| ∈ [m, k·m]`, so the return value brackets `m` within
/// a factor `k`. Costs `O(k log m)` bits. With disjoint inputs the upper
/// bound is exact.
pub fn total_edge_count_bound<R: Recorder>(rt: &mut Runtime<R>) -> (f64, f64) {
    let responses = rt.broadcast(PlayerRequest::LocalEdgeCount);
    let sum: u64 = responses
        .into_iter()
        .map(|p| match p {
            Payload::Count(c) => c,
            _ => 0,
        })
        .sum();
    (sum as f64 / rt.k() as f64, sum as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::{CostModel, SharedRandomness};
    use triad_graph::Edge;

    fn star_shares(degree: u32, k: usize, duplicate: bool, n: usize) -> Vec<Vec<Edge>> {
        // Star centered at 0 with `degree` leaves, spread over k players;
        // when `duplicate`, every player holds every edge.
        let edges: Vec<Edge> = (1..=degree)
            .map(|i| Edge::new(VertexId(0), VertexId(i)))
            .collect();
        assert!((degree as usize) < n, "star too large");
        if duplicate {
            vec![edges; k]
        } else {
            let mut shares = vec![Vec::new(); k];
            for (i, e) in edges.into_iter().enumerate() {
                shares[i % k].push(e);
            }
            shares
        }
    }

    fn check_ratio(est: f64, truth: f64, lo: f64, hi: f64) {
        let r = est / truth;
        assert!(
            r >= lo && r <= hi,
            "estimate {est} vs true {truth} (ratio {r})"
        );
    }

    #[test]
    fn approx_degree_disjoint_shares() {
        let tuning = Tuning::practical(0.1).with_scale(3.0);
        for degree in [8u32, 64, 300] {
            let shares = star_shares(degree, 4, false, 512);
            let mut rt = Runtime::local(
                512,
                &shares,
                SharedRandomness::new(42 + u64::from(degree)),
                CostModel::Coordinator,
            );
            let est = approx_degree(&mut rt, VertexId(0), &tuning);
            check_ratio(est.value, f64::from(degree), 0.3, 6.0);
        }
    }

    #[test]
    fn approx_degree_with_full_duplication() {
        let tuning = Tuning::practical(0.1).with_scale(3.0);
        for degree in [16u32, 128] {
            let shares = star_shares(degree, 6, true, 512);
            let mut rt = Runtime::local(
                512,
                &shares,
                SharedRandomness::new(7 + u64::from(degree)),
                CostModel::Coordinator,
            );
            let est = approx_degree(&mut rt, VertexId(0), &tuning);
            // Phase 1 alone would answer 6× too high; phase 2 must correct.
            check_ratio(est.value, f64::from(degree), 0.3, 6.0);
        }
    }

    #[test]
    fn approx_degree_isolated_vertex() {
        let tuning = Tuning::practical(0.1);
        let shares = star_shares(4, 2, false, 64);
        let mut rt = Runtime::local(
            64,
            &shares,
            SharedRandomness::new(3),
            CostModel::Coordinator,
        );
        let est = approx_degree(&mut rt, VertexId(63), &tuning);
        assert_eq!(est.value, 0.0);
        assert_eq!(est.rounds, 0);
    }

    #[test]
    fn approx_degree_cost_is_logarithmic_in_degree() {
        // Bits should grow far slower than the degree itself.
        let tuning = Tuning::practical(0.1);
        let mut costs = Vec::new();
        for degree in [32u32, 512] {
            let shares = star_shares(degree, 4, false, 1024);
            let mut rt = Runtime::local(
                1024,
                &shares,
                SharedRandomness::new(1),
                CostModel::Coordinator,
            );
            approx_degree(&mut rt, VertexId(0), &tuning);
            costs.push(rt.stats().total_bits as f64);
        }
        // 16× degree increase should cost well under 4× the bits.
        assert!(costs[1] / costs[0] < 4.0, "costs {costs:?}");
    }

    #[test]
    fn no_duplication_variant_underestimates_within_alpha() {
        for degree in [5u32, 33, 200] {
            let shares = star_shares(degree, 4, false, 512);
            let mut rt = Runtime::local(
                512,
                &shares,
                SharedRandomness::new(0),
                CostModel::Coordinator,
            );
            let alpha = 3f64.sqrt();
            let est = approx_degree_no_duplication(&mut rt, VertexId(0), alpha);
            assert!(est.value <= f64::from(degree) + 1e-9, "must under-count");
            assert!(
                est.value * alpha >= f64::from(degree),
                "α·{} < {degree}",
                est.value
            );
        }
    }

    #[test]
    #[should_panic(expected = "alpha must exceed 1")]
    fn no_duplication_rejects_bad_alpha() {
        let shares = star_shares(4, 2, false, 64);
        let mut rt = Runtime::local(
            64,
            &shares,
            SharedRandomness::new(0),
            CostModel::Coordinator,
        );
        let _ = approx_degree_no_duplication(&mut rt, VertexId(0), 1.0);
    }

    #[test]
    fn edge_count_bounds_bracket_truth() {
        let shares = star_shares(30, 3, false, 64);
        let mut rt = Runtime::local(
            64,
            &shares,
            SharedRandomness::new(0),
            CostModel::Coordinator,
        );
        let (lo, hi) = total_edge_count_bound(&mut rt);
        assert!(lo <= 30.0 && 30.0 <= hi);
        assert_eq!(hi, 30.0, "disjoint shares sum exactly");
        // fully duplicated: upper bound is k×.
        let shares = star_shares(30, 3, true, 64);
        let mut rt = Runtime::local(
            64,
            &shares,
            SharedRandomness::new(0),
            CostModel::Coordinator,
        );
        let (lo, hi) = total_edge_count_bound(&mut rt);
        assert_eq!(hi, 90.0);
        assert_eq!(lo, 30.0);
    }

    #[test]
    fn approx_edge_count_with_duplication() {
        use triad_graph::generators::gnp;
        use triad_graph::partition::with_duplication;
        let tuning = Tuning::practical(0.1).with_scale(3.0);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        use rand::SeedableRng;
        let g = gnp(200, 0.08, &mut rng);
        let truth = g.edge_count() as f64;
        let parts = with_duplication(&g, 5, 0.6, &mut rng);
        let mut rt = Runtime::local(
            200,
            parts.shares(),
            SharedRandomness::new(11),
            CostModel::Coordinator,
        );
        let est = approx_edge_count(&mut rt, &tuning);
        check_ratio(est.value, truth, 0.3, 6.0);
        // Naive summation would answer ≈ 1.6·k/… way above; the estimator
        // must undo the duplication.
        let copies: usize = parts.total_copies();
        assert!(copies as f64 > 2.0 * truth, "premise: heavy duplication");
    }

    #[test]
    fn approx_edge_count_empty_input() {
        let tuning = Tuning::practical(0.1);
        let mut rt = Runtime::local(
            10,
            &[vec![], vec![]],
            SharedRandomness::new(0),
            CostModel::Coordinator,
        );
        let est = approx_edge_count(&mut rt, &tuning);
        assert_eq!(est.value, 0.0);
    }

    #[test]
    fn f_of_limits() {
        assert!((f_of(2.0) - 0.75).abs() < 1e-12);
        assert!((f_of(1e9) - (1.0 - (-1.0f64).exp())).abs() < 1e-6);
    }
}
