//! Baselines: exact triangle detection.
//!
//! Woodruff–Zhang (\[38\] in the paper) showed exact triangle detection
//! costs `Ω(k·n·d)` bits — essentially every player must ship its whole
//! input. [`SendEverything`] realizes that regime: each player posts its
//! entire edge share; the referee answers exactly. Comparing the paper's
//! testers against it is the headline experiment ("property testing is
//! cheaper than exact decision").

use crate::outcome::{ProtocolError, ProtocolRun, TestOutcome};
use triad_comm::{
    run_simultaneous, Payload, PayloadRepr, PlayerState, SharedRandomness, SimMessage,
    SimultaneousProtocol,
};
use triad_graph::partition::Partition;
use triad_graph::{Graph, Triangle};

/// The exact baseline: players send their full inputs; the referee
/// decides triangle-existence with zero error (both sides).
#[derive(Debug, Clone, Copy, Default)]
pub struct SendEverything {
    /// How shares travel: edge lists, packed bitsets, or the density
    /// gate deciding per share ([`PayloadRepr::Auto`], the default).
    /// Recorded bits and verdicts are identical under every setting.
    pub repr: PayloadRepr,
}

impl SendEverything {
    /// The baseline pinned to a payload representation.
    pub fn with_repr(repr: PayloadRepr) -> Self {
        SendEverything { repr }
    }
}

impl SimultaneousProtocol for SendEverything {
    type Output = Option<Triangle>;

    fn message<'a>(&self, player: &'a PlayerState, _shared: &SharedRandomness) -> SimMessage<'a> {
        // Borrow the player's sorted share (or its cached bitset): the
        // whole-input baseline is the worst case for per-run cloning, and
        // the payload never outlives the player here.
        let payload = if self.repr.use_bits(player.share().len(), player.n()) {
            Payload::EdgeBits(std::borrow::Cow::Borrowed(player.share_bitset()))
        } else {
            Payload::Edges(player.share().into())
        };
        SimMessage::of_phased(payload, "send-everything")
    }

    fn referee(
        &self,
        n: usize,
        messages: &[SimMessage],
        _shared: &SharedRandomness,
    ) -> Option<Triangle> {
        crate::simultaneous::referee_find_triangle(n, messages)
    }
}

impl crate::amplify::Repeatable for SendEverything {
    fn run_once(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        run_send_everything(g, partition, seed)
    }

    fn run_prepared(
        &self,
        input: &crate::amplify::PreparedInput<'_>,
        seed: u64,
    ) -> Result<crate::outcome::TallyRun, ProtocolError> {
        let run = triad_comm::run_simultaneous_prepared::<_, triad_comm::Tally>(
            self,
            input.n(),
            input.players(),
            SharedRandomness::new(seed),
        );
        Ok(crate::outcome::TallyRun {
            outcome: TestOutcome::from(run.output),
            stats: run.stats,
            transcript: run.transcript,
        })
    }

    fn run_chaos(
        &self,
        input: &crate::amplify::PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
        _retry_budget: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        // One round, no retries: the baseline degrades exactly like the
        // §3.4 testers under faults.
        match triad_comm::run_simultaneous_chaos::<_, triad_comm::Tally>(
            self,
            input.n(),
            input.players(),
            SharedRandomness::new(seed),
            plan,
            rep,
        ) {
            Ok(chaos) => Ok(crate::chaos::ChaosRep {
                run: crate::outcome::TallyRun {
                    outcome: TestOutcome::from(chaos.run.output),
                    stats: chaos.run.stats,
                    transcript: chaos.run.transcript,
                },
                injected: chaos.injected,
            }),
            Err(f) => Err(Box::new(crate::chaos::FailedRep {
                error: f.error,
                stats: f.stats,
                transcript: f.transcript,
                injected: f.injected,
            })),
        }
    }
}

/// Runs the exact baseline over a partitioned input. The verdict is
/// exact: `TriangleFound` iff the union graph contains a triangle.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidInput`] if a share references a vertex
/// outside `g`.
pub fn run_send_everything(
    g: &Graph,
    partition: &Partition,
    seed: u64,
) -> Result<ProtocolRun, ProtocolError> {
    let n = g.vertex_count();
    crate::outcome::validate_shares(g, partition)?;
    let run = run_simultaneous(
        &SendEverything::default(),
        n,
        partition.shares(),
        SharedRandomness::new(seed),
    );
    Ok(ProtocolRun {
        outcome: TestOutcome::from(run.output),
        stats: run.stats,
        transcript: run.transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::gnp;
    use triad_graph::partition::random_disjoint;

    #[test]
    fn exact_on_both_sides() {
        let free = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let tri = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2)]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let pf = random_disjoint(&free, 3, &mut rng);
        let pt = random_disjoint(&tri, 3, &mut rng);
        assert!(run_send_everything(&free, &pf, 0)
            .unwrap()
            .outcome
            .accepts());
        let out = run_send_everything(&tri, &pt, 0).unwrap().outcome;
        assert!(out.triangle().unwrap().exists_in(&tri));
    }

    #[test]
    fn cost_is_linear_in_total_input() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = gnp(200, 0.1, &mut rng);
        let parts = random_disjoint(&g, 4, &mut rng);
        let run = run_send_everything(&g, &parts, 0).unwrap();
        let bits_per_edge = 2 * 8; // n = 200 ⇒ 8 bits per vertex
        let expected = g.edge_count() as u64 * bits_per_edge;
        assert!(run.stats.total_bits >= expected);
        assert!(
            run.stats.total_bits <= expected + 4 * 64,
            "only prefix overhead on top"
        );
    }

    #[test]
    fn representation_never_changes_verdict_or_bits() {
        use crate::amplify::{PreparedInput, Repeatable};
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = gnp(120, 0.3, &mut rng); // dense enough for Auto → bits
        let parts = random_disjoint(&g, 3, &mut rng);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let runs: Vec<_> = [PayloadRepr::Edges, PayloadRepr::Bits, PayloadRepr::Auto]
            .into_iter()
            .map(|repr| {
                SendEverything::with_repr(repr)
                    .run_prepared(&input, 11)
                    .unwrap()
            })
            .collect();
        for run in &runs[1..] {
            assert_eq!(run.outcome, runs[0].outcome);
            assert_eq!(run.stats.total_bits, runs[0].stats.total_bits);
        }
    }

    #[test]
    fn detects_single_triangle_hidden_in_large_graph() {
        let mut edges: Vec<(u32, u32)> = (0..500).map(|i| (i, i + 500)).collect();
        edges.extend([(0, 1), (1, 2), (0, 2)]);
        let g = Graph::from_edges(1000, edges);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let parts = random_disjoint(&g, 5, &mut rng);
        assert!(run_send_everything(&g, &parts, 0)
            .unwrap()
            .outcome
            .found_triangle());
    }
}
