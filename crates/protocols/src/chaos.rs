//! Quorum-based amplification under fault injection.
//!
//! [`crate::amplify`] assumes a failure-free substrate: a repetition
//! either completes or the whole amplified run errors out. Under a
//! [`FaultPlan`] that is too brittle — a single dropped message would
//! poison an entire sweep. This module runs the same repetition schedule
//! with per-repetition fault tolerance and an explicit third verdict:
//!
//! * a repetition that **survives** (possibly after retries, charged
//!   under [`triad_comm::RETRANSMIT_LABEL`]) contributes its verdict and
//!   its cost;
//! * a repetition that **fails** is recorded per [`RunErrorKind`] — its
//!   bits are still merged into the totals, because they were spent —
//!   and never contributes a verdict;
//! * the amplified verdict is computed over the survivors only, and when
//!   fewer than `quorum × repetitions` survive the run reports
//!   [`ChaosOutcome::Inconclusive`] instead of guessing.
//!
//! One-sided error survives chaos in one direction only: a witness
//! triangle is verifiable, so [`ChaosOutcome::TriangleFound`] is as
//! trustworthy as ever and short-circuits the sweep. An *accept* is
//! where faults can lie — a fault can kill exactly the repetition that
//! would have found the triangle — which is why the default quorum is
//! [`DEFAULT_QUORUM`] (= 1.0): any failed repetition without a witness
//! downgrades the verdict to `Inconclusive`. Lowering the quorum trades
//! that guarantee for availability and is reported as such (see
//! `docs/FAULTS.md`).

use crate::amplify::{rep_seed, PreparedInput, Repeatable};
use crate::outcome::TallyRun;
use triad_comm::pool::Pool;
use triad_comm::{CommStats, FaultPlan, FaultStats, Recorder, RunError, RunErrorKind, Tally};
use triad_graph::Triangle;

/// The default survivor quorum: every repetition must survive for an
/// accept to stand. This is the only quorum under which an
/// omission-fault run can never report the *opposite* verdict of the
/// fault-free run (pinned by `tests/chaos_differential.rs`).
pub const DEFAULT_QUORUM: f64 = 1.0;

/// The verdict of an amplified run under faults.
///
/// Unlike [`crate::TestOutcome`] this is a three-way verdict:
/// degradation is graceful but **explicit** — a chaos run never converts
/// "not enough surviving evidence" into an accept.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// A surviving repetition exposed a witness triangle. One-sided
    /// error makes this trustworthy regardless of how many other
    /// repetitions failed.
    TriangleFound(Triangle),
    /// Enough repetitions survived (the quorum) and none found a
    /// triangle.
    NoTriangleFound,
    /// Too few repetitions survived to meet the quorum; the run refuses
    /// to guess.
    Inconclusive,
}

impl ChaosOutcome {
    /// `true` if a witness triangle was found.
    pub fn found_triangle(&self) -> bool {
        matches!(self, ChaosOutcome::TriangleFound(_))
    }

    /// The witness triangle, if any.
    pub fn triangle(&self) -> Option<Triangle> {
        match self {
            ChaosOutcome::TriangleFound(t) => Some(*t),
            _ => None,
        }
    }

    /// `true` if the quorum was lost.
    pub fn is_inconclusive(&self) -> bool {
        matches!(self, ChaosOutcome::Inconclusive)
    }

    /// The stable string used in exported reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChaosOutcome::TriangleFound(_) => "triangle-found",
            ChaosOutcome::NoTriangleFound => "accepted",
            ChaosOutcome::Inconclusive => "inconclusive",
        }
    }
}

/// Failed repetitions of a chaos run, tallied per [`RunErrorKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FailureBreakdown {
    /// Repetitions killed by channel failure or player crash.
    pub transport: u32,
    /// Repetitions killed by an unrecovered response deadline.
    pub timeout: u32,
    /// Repetitions killed by unrecovered payload corruption.
    pub corrupt: u32,
    /// Repetitions abandoned at the protocol layer.
    pub aborted: u32,
}

impl FailureBreakdown {
    /// Total failed repetitions.
    pub fn total(&self) -> u32 {
        self.transport + self.timeout + self.corrupt + self.aborted
    }

    fn bump(&mut self, kind: RunErrorKind) {
        match kind {
            RunErrorKind::Transport => self.transport += 1,
            RunErrorKind::Timeout => self.timeout += 1,
            RunErrorKind::Corrupt => self.corrupt += 1,
            RunErrorKind::Aborted => self.aborted += 1,
        }
    }
}

/// A repetition that survived its fault plan: the completed run plus
/// the faults that were injected (and recovered from) along the way.
#[derive(Debug, Clone)]
pub struct ChaosRep {
    /// The completed repetition.
    pub run: TallyRun,
    /// Faults injected during the repetition.
    pub injected: FaultStats,
}

/// A repetition killed by an unrecovered fault. The bits spent before
/// (and on) the failure are preserved so amplified accounting stays
/// honest: failed repetitions still pay.
#[derive(Debug, Clone)]
pub struct FailedRep {
    /// What killed the repetition.
    pub error: RunError,
    /// Communication spent before the failure.
    pub stats: CommStats,
    /// The cost recorder at the point of failure.
    pub transcript: Tally,
    /// Faults injected during the repetition.
    pub injected: FaultStats,
}

impl FailedRep {
    /// A repetition abandoned before any communication — e.g. a
    /// protocol-level validation failure — wrapped as
    /// [`RunError::Aborted`].
    pub fn aborted(reason: String, k: usize) -> Self {
        FailedRep {
            error: RunError::Aborted { reason },
            stats: CommStats::default(),
            transcript: Tally::with_players(k),
            injected: FaultStats::default(),
        }
    }
}

/// A completed amplified run under faults: the three-way verdict, the
/// full cost of every repetition attempted (surviving or not), and the
/// per-kind failure and injection tallies behind it.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// The quorum-gated verdict.
    pub outcome: ChaosOutcome,
    /// Merged communication statistics over **all** attempted
    /// repetitions, failed ones included.
    pub stats: CommStats,
    /// The absorbed cost tally over all attempted repetitions;
    /// fault-recovery traffic is under [`triad_comm::RETRANSMIT_LABEL`].
    pub tally: Tally,
    /// Repetitions that ran to a verdict.
    pub survived: u32,
    /// Repetitions attempted before the run stopped (early exit on a
    /// witness, as in the fault-free path).
    pub attempted: u32,
    /// The survivor quorum threshold that was applied (repetitions).
    pub needed: u32,
    /// Failed repetitions per error kind.
    pub failures: FailureBreakdown,
    /// Faults injected across all repetitions (including recovered
    /// ones, which kill nothing but cost retransmit bits).
    pub injected: FaultStats,
}

impl ChaosRun {
    /// Bits spent on fault recovery (retransmitted requests, duplicate
    /// deliveries, garbled responses) — part of `stats.total_bits`,
    /// broken out for reporting.
    pub fn retransmit_bits(&self) -> u64 {
        self.tally.retransmit_bits()
    }
}

/// Runs `tester` up to `repetitions` times under `plan`, stopping at the
/// first witness, and computes the quorum-gated verdict of the module
/// docs. `quorum` is clamped to `[0, 1]`; at least one repetition must
/// always survive for an accept (zero surviving evidence is never an
/// accept). Repetition seeds are [`rep_seed`]-derived exactly as in
/// [`crate::amplify::run_amplified_prepared`], and fault decisions are
/// drawn from `plan`'s independent splitmix64 domains, so chaos never
/// perturbs the protocol's own coins: with [`FaultPlan::fault_free`]
/// this is byte-identical to the fault-free amplified path (pinned by
/// `tests/chaos_differential.rs`).
///
/// Failed repetitions do not stop the sweep — their cost is merged and
/// their error kind tallied — so the verdict is computed over exactly
/// the repetition schedule the fault-free path would have attempted.
pub fn run_chaos_amplified<T: Repeatable + Sync>(
    pool: &Pool,
    tester: &T,
    input: &PreparedInput<'_>,
    repetitions: u32,
    base_seed: u64,
    plan: &FaultPlan,
    quorum: f64,
) -> ChaosRun {
    let reps = repetitions.max(1) as usize;
    let runs = pool.ordered_map_until(
        reps,
        |r| {
            tester.run_chaos(
                input,
                rep_seed(base_seed, r as u32),
                plan,
                r as u32,
                triad_comm::DEFAULT_RETRY_BUDGET,
            )
        },
        |run| matches!(run, Ok(rep) if rep.run.outcome.found_triangle()),
    );
    let needed = ((quorum.clamp(0.0, 1.0) * reps as f64).ceil() as u32).max(1);
    let mut stats = CommStats::default();
    let mut tally = Tally::with_players(input.k());
    let mut injected = FaultStats::default();
    let mut failures = FailureBreakdown::default();
    let mut survived = 0u32;
    let mut attempted = 0u32;
    for run in runs {
        attempted += 1;
        match run {
            Ok(rep) => {
                stats = stats.merged(rep.run.stats);
                tally.absorb(&rep.run.transcript);
                injected = injected.merged(rep.injected);
                survived += 1;
                if let Some(t) = rep.run.outcome.triangle() {
                    return ChaosRun {
                        outcome: ChaosOutcome::TriangleFound(t),
                        stats,
                        tally,
                        survived,
                        attempted,
                        needed,
                        failures,
                        injected,
                    };
                }
            }
            Err(fail) => {
                stats = stats.merged(fail.stats);
                tally.absorb(&fail.transcript);
                injected = injected.merged(fail.injected);
                failures.bump(fail.error.kind());
            }
        }
    }
    let outcome = if survived >= needed {
        ChaosOutcome::NoTriangleFound
    } else {
        ChaosOutcome::Inconclusive
    };
    ChaosRun {
        outcome,
        stats,
        tally,
        survived,
        attempted,
        needed,
        failures,
        injected,
    }
}

/// [`run_chaos_amplified`] with the input prepared here and the current
/// pool — the convenience entry point mirroring
/// [`crate::amplify::run_amplified_tally`].
///
/// # Errors
///
/// Propagates validation errors from [`PreparedInput::new`].
pub fn run_chaos_amplified_tally<T: Repeatable + Sync>(
    tester: &T,
    g: &triad_graph::Graph,
    partition: &triad_graph::partition::Partition,
    repetitions: u32,
    base_seed: u64,
    plan: &FaultPlan,
    quorum: f64,
) -> Result<ChaosRun, crate::outcome::ProtocolError> {
    let input = PreparedInput::new(g, partition)?;
    Ok(run_chaos_amplified(
        &Pool::current(),
        tester,
        &input,
        repetitions,
        base_seed,
        plan,
        quorum,
    ))
}

/// The quorum rule of a **single** repetition — what a networked
/// `triad serve` run applies after driving one execution over its
/// sockets: a witness triangle stands regardless of faults (one-sided
/// error makes it verifiable), an unrecovered fault without a witness is
/// [`ChaosOutcome::Inconclusive`] (never an accept), and a clean
/// fault-free accept stands. This is exactly the `repetitions = 1`,
/// `quorum = 1` case of [`run_chaos_amplified`], factored out so remote
/// runs degrade identically to in-process ones (pinned by
/// `tests/tcp_differential.rs`).
pub fn single_run_verdict(outcome: crate::TestOutcome, fault: Option<&RunError>) -> ChaosOutcome {
    match (outcome, fault) {
        (crate::TestOutcome::TriangleFound(t), _) => ChaosOutcome::TriangleFound(t),
        (crate::TestOutcome::NoTriangleFound, Some(_)) => ChaosOutcome::Inconclusive,
        (crate::TestOutcome::NoTriangleFound, None) => ChaosOutcome::NoTriangleFound,
    }
}

/// Down-converts a chaos verdict for callers that only understand the
/// two-way [`crate::TestOutcome`] — `Inconclusive` maps to `None`, never
/// to an accept.
pub fn to_test_outcome(outcome: ChaosOutcome) -> Option<crate::TestOutcome> {
    match outcome {
        ChaosOutcome::TriangleFound(t) => Some(crate::TestOutcome::TriangleFound(t)),
        ChaosOutcome::NoTriangleFound => Some(crate::TestOutcome::NoTriangleFound),
        ChaosOutcome::Inconclusive => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_comm::FaultRates;
    use triad_graph::generators::far_graph;
    use triad_graph::partition::random_disjoint;
    use triad_graph::Graph;

    #[test]
    fn fault_free_chaos_matches_amplified_verdict() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = far_graph(300, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 6.0 },
        );
        let input = PreparedInput::new(&g, &parts).unwrap();
        let plain =
            crate::amplify::run_amplified_prepared(&Pool::serial(), &tester, &input, 6, 3).unwrap();
        let chaos = run_chaos_amplified(
            &Pool::serial(),
            &tester,
            &input,
            6,
            3,
            &FaultPlan::fault_free(9),
            DEFAULT_QUORUM,
        );
        assert_eq!(chaos.outcome.triangle(), plain.outcome.triangle());
        assert_eq!(chaos.stats, plain.stats);
        assert_eq!(chaos.failures.total(), 0);
        assert_eq!(chaos.retransmit_bits(), 0);
        assert_eq!(chaos.injected.total(), 0);
        assert_eq!(chaos.survived, chaos.attempted);
    }

    #[test]
    fn total_omission_is_inconclusive_never_accept() {
        // Every delivery dropped: no repetition can survive, and with
        // the default quorum the verdict must refuse to guess.
        let g = Graph::from_edges(30, (0..29).map(|i| (i as u32, i as u32 + 1)));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let parts = random_disjoint(&g, 3, &mut rng);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let tester = UnrestrictedTester::new(Tuning::practical(0.2));
        let plan = FaultPlan::new(5, FaultRates::omission(1.0));
        let chaos = run_chaos_amplified(&Pool::serial(), &tester, &input, 4, 1, &plan, 1.0);
        assert!(chaos.outcome.is_inconclusive(), "{:?}", chaos.outcome);
        assert_eq!(chaos.survived, 0);
        assert_eq!(chaos.attempted, 4);
        assert_eq!(chaos.failures.timeout, 4, "{:?}", chaos.failures);
        // Under total omission nothing is ever delivered, so no
        // retransmission can be *observed* to arrive — the corrected
        // accounting charges zero retransmit traffic and leaves the
        // attempt record to the injection counters. (The old accounting
        // charged every retry optimistically before its outcome was
        // known, inflating rollups relative to `FaultStats`.)
        let retrans = chaos
            .tally
            .breakdown()
            .into_iter()
            .find(|l| l.label == triad_comm::RETRANSMIT_LABEL);
        assert!(
            retrans.as_ref().is_none_or(|l| l.messages == 0),
            "undelivered retries must not be charged: {retrans:?}"
        );
        assert!(chaos.injected.drops > 0);
    }

    #[test]
    fn witness_short_circuits_even_under_faults() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let tester = UnrestrictedTester::new(Tuning::practical(0.2));
        // Mild corruption: retries recover, the witness still surfaces.
        let plan = FaultPlan::new(
            11,
            FaultRates {
                corrupt: 0.05,
                ..FaultRates::default()
            },
        );
        let chaos = run_chaos_amplified(&Pool::serial(), &tester, &input, 5, 11, &plan, 1.0);
        let t = chaos.outcome.triangle().expect("witness expected");
        assert!(t.exists_in(&g), "one-sided error must survive chaos");
    }

    #[test]
    fn quorum_gates_the_accept() {
        let g = Graph::from_edges(30, (0..29).map(|i| (i as u32, i as u32 + 1)));
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let parts = random_disjoint(&g, 3, &mut rng);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let tester = SimultaneousTester::new(
            Tuning::practical(0.2),
            SimProtocolKind::Low { avg_degree: 2.0 },
        );
        // Drop rate high enough that some one-round reps die.
        let plan = FaultPlan::new(21, FaultRates::omission(0.4));
        let strict = run_chaos_amplified(&Pool::serial(), &tester, &input, 8, 2, &plan, 1.0);
        let lax = run_chaos_amplified(&Pool::serial(), &tester, &input, 8, 2, &plan, 0.25);
        assert!(strict.failures.total() > 0, "plan should kill some reps");
        assert!(strict.outcome.is_inconclusive());
        assert_eq!(lax.outcome, ChaosOutcome::NoTriangleFound);
        assert_eq!(strict.attempted, lax.attempted);
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let tester = UnrestrictedTester::new(Tuning::practical(0.2));
        let plan = FaultPlan::new(7, FaultRates::mixed(0.1));
        let serial = run_chaos_amplified(&Pool::serial(), &tester, &input, 6, 9, &plan, 1.0);
        for threads in [2, 8] {
            let par = run_chaos_amplified(&Pool::new(threads), &tester, &input, 6, 9, &plan, 1.0);
            assert_eq!(par.outcome, serial.outcome, "t{threads}");
            assert_eq!(par.stats, serial.stats, "t{threads}");
            assert_eq!(par.failures, serial.failures, "t{threads}");
            assert_eq!(par.survived, serial.survived, "t{threads}");
            assert_eq!(
                par.retransmit_bits(),
                serial.retransmit_bits(),
                "t{threads}"
            );
        }
    }

    #[test]
    fn single_run_verdict_mirrors_quorum_semantics() {
        let t = Triangle::new(
            triad_graph::VertexId(0),
            triad_graph::VertexId(1),
            triad_graph::VertexId(2),
        );
        let err = RunError::Timeout { player: 1 };
        // A witness is trustworthy even when a fault occurred.
        assert_eq!(
            single_run_verdict(crate::TestOutcome::TriangleFound(t), Some(&err)),
            ChaosOutcome::TriangleFound(t)
        );
        // An accept with any unrecovered fault refuses to guess…
        assert_eq!(
            single_run_verdict(crate::TestOutcome::NoTriangleFound, Some(&err)),
            ChaosOutcome::Inconclusive
        );
        // …and stands only when the run was clean.
        assert_eq!(
            single_run_verdict(crate::TestOutcome::NoTriangleFound, None),
            ChaosOutcome::NoTriangleFound
        );
    }

    #[test]
    fn outcome_strings_are_stable() {
        let t = Triangle::new(
            triad_graph::VertexId(0),
            triad_graph::VertexId(1),
            triad_graph::VertexId(2),
        );
        assert_eq!(ChaosOutcome::TriangleFound(t).as_str(), "triangle-found");
        assert_eq!(ChaosOutcome::NoTriangleFound.as_str(), "accepted");
        assert_eq!(ChaosOutcome::Inconclusive.as_str(), "inconclusive");
        assert!(to_test_outcome(ChaosOutcome::Inconclusive).is_none());
        assert_eq!(
            to_test_outcome(ChaosOutcome::NoTriangleFound),
            Some(crate::TestOutcome::NoTriangleFound)
        );
    }
}
