//! Protocol outcomes and errors.

use triad_comm::{CommStats, Tally, Transcript};
use triad_graph::Triangle;

/// The verdict of a one-sided triangle-freeness test.
///
/// All protocols in this crate have one-sided error: a returned triangle
/// always exists in the input graph, so `TriangleFound` is a certificate.
/// `NoTriangleFound` means "accept as triangle-free", which is wrong with
/// probability at most δ when the input is ε-far.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestOutcome {
    /// A witness triangle was exposed.
    TriangleFound(Triangle),
    /// No triangle surfaced; the tester accepts.
    NoTriangleFound,
}

impl TestOutcome {
    /// `true` if a witness triangle was found.
    pub fn found_triangle(&self) -> bool {
        matches!(self, TestOutcome::TriangleFound(_))
    }

    /// The witness triangle, if any.
    pub fn triangle(&self) -> Option<Triangle> {
        match self {
            TestOutcome::TriangleFound(t) => Some(*t),
            TestOutcome::NoTriangleFound => None,
        }
    }

    /// `true` if the tester accepts the graph as triangle-free.
    pub fn accepts(&self) -> bool {
        !self.found_triangle()
    }
}

impl From<Option<Triangle>> for TestOutcome {
    fn from(t: Option<Triangle>) -> Self {
        match t {
            Some(t) => TestOutcome::TriangleFound(t),
            None => TestOutcome::NoTriangleFound,
        }
    }
}

/// A completed protocol execution: verdict plus communication
/// statistics, generic over the cost recorder. The default
/// (`R = Transcript`) carries the full event log behind `triad report`;
/// the fast path of amplified sweeps uses [`TallyRun`], which carries
/// only counters (see `docs/RUNTIME.md`).
#[derive(Debug, Clone)]
pub struct ProtocolRun<R = Transcript> {
    /// The tester's verdict.
    pub outcome: TestOutcome,
    /// Bits, rounds and message counts of the run.
    pub stats: CommStats,
    /// The recorder: the full per-phase event log by default, or a
    /// [`Tally`] of the same charges on the fast path.
    pub transcript: R,
}

/// A run recorded by the zero-allocation [`Tally`] — what
/// [`run_prepared`](crate::amplify::Repeatable::run_prepared) and the
/// amplified fast path return.
pub type TallyRun = ProtocolRun<Tally>;

impl<R> ProtocolRun<R> {
    /// The verdict as the stable string used in exported reports.
    pub fn outcome_str(&self) -> &'static str {
        if self.outcome.found_triangle() {
            "triangle-found"
        } else {
            "accepted"
        }
    }
}

impl ProtocolRun {
    /// Down-converts the full event log to a counters-only tally (every
    /// rollup unchanged) — the compatibility bridge for [`Repeatable`]
    /// implementations without a native fast path.
    ///
    /// [`Repeatable`]: crate::amplify::Repeatable
    pub fn to_tally(&self) -> TallyRun {
        TallyRun {
            outcome: self.outcome,
            stats: self.stats,
            transcript: Tally::from_transcript(&self.transcript),
        }
    }
}

/// Errors raised before or during a protocol run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The player shares or parameters are malformed.
    InvalidInput(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

/// Validates that every share edge fits the graph's vertex range — the
/// common precondition of every protocol runner.
pub(crate) fn validate_shares(
    g: &triad_graph::Graph,
    partition: &triad_graph::partition::Partition,
) -> Result<(), ProtocolError> {
    validate_shares_n(g.vertex_count(), partition)
}

/// [`validate_shares`] against a bare vertex count — what graph-free
/// prepared inputs (shares partitioned off an out-of-core store) use.
pub(crate) fn validate_shares_n(
    n: usize,
    partition: &triad_graph::partition::Partition,
) -> Result<(), ProtocolError> {
    for share in partition.shares() {
        for e in share {
            if e.v().index() >= n {
                return Err(ProtocolError::InvalidInput(format!(
                    "edge {e} outside graph on {n} vertices"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::VertexId;

    #[test]
    fn outcome_accessors() {
        let t = Triangle::new(VertexId(0), VertexId(1), VertexId(2));
        let found = TestOutcome::TriangleFound(t);
        assert!(found.found_triangle());
        assert!(!found.accepts());
        assert_eq!(found.triangle(), Some(t));
        let none = TestOutcome::NoTriangleFound;
        assert!(none.accepts());
        assert_eq!(none.triangle(), None);
        assert_eq!(TestOutcome::from(Some(t)), found);
        assert_eq!(TestOutcome::from(None), none);
    }

    #[test]
    fn error_display_and_traits() {
        let e = ProtocolError::InvalidInput("k must be positive".into());
        assert!(e.to_string().contains("k must be positive"));
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<ProtocolError>();
    }
}
