//! `H`-freeness testing — the paper's §5 future-work direction,
//! implemented for the simultaneous induced-sampler.
//!
//! AlgHigh's mechanism is pattern-agnostic: publicly sample a vertex set
//! `S`, have every player post its induced edges (capped), and let the
//! referee search the exposed subgraph — for a triangle or for any small
//! pattern `H`. For a graph that is ε-far from `H`-free (≥ `ε|E|/e(H)`
//! edge-disjoint copies), a copy survives the sample with probability
//! `p^{v(H)}`, so `p = Θ((e(H)/(ε·m))^{1/v(H)})` exposes one in
//! expectation — the direct generalization of the `(n²/εd)^{1/3}`
//! sample.
//!
//! One-sided as ever: a reported embedding is checked against nothing —
//! it *is* edges the players actually hold.

use crate::config::Tuning;
use crate::outcome::{ProtocolError, ProtocolRun};
use triad_comm::{
    run_simultaneous, CommStats, Payload, PlayerState, SharedRandomness, SimMessage,
    SimultaneousProtocol,
};
use triad_graph::partition::Partition;
use triad_graph::subgraphs::{find_copy, Pattern};
use triad_graph::{Graph, GraphBuilder, VertexId};

/// Shared-randomness tag naming the vertex sample.
const H_TAG: u64 = 0x4846_5245; // "HFRE"

/// The one-round `H`-freeness tester.
#[derive(Debug, Clone)]
pub struct SimHFreeness {
    tuning: Tuning,
    pattern: Pattern,
    avg_degree: f64,
}

impl SimHFreeness {
    /// A tester for pattern `h` on graphs of (known) average degree
    /// `avg_degree`.
    pub fn new(tuning: Tuning, pattern: Pattern, avg_degree: f64) -> Self {
        SimHFreeness {
            tuning,
            pattern,
            avg_degree,
        }
    }

    /// The pattern under test.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Per-vertex sampling probability
    /// `p = (c·e(H) / (ε·m))^{1/v(H)}`, clamped to 1.
    pub fn sample_probability(&self, n: usize) -> f64 {
        let m = (n as f64 * self.avg_degree / 2.0).max(1.0);
        let c = 4.0 / self.tuning.delta;
        let base = c * self.pattern.edges() as f64 / (self.tuning.epsilon * m);
        base.powf(1.0 / self.pattern.vertices() as f64)
            .clamp(0.0, 1.0)
            * self.tuning.scale
    }

    /// Per-player cap: the Markov cutoff `m·p²·(4/δ)`.
    pub fn cap(&self, n: usize) -> usize {
        let m = n as f64 * self.avg_degree / 2.0;
        let p = self.sample_probability(n);
        ((m * p * p * 4.0 / self.tuning.delta).ceil() as usize).max(16)
    }
}

impl SimultaneousProtocol for SimHFreeness {
    type Output = Option<Vec<VertexId>>;

    fn message<'a>(&self, player: &'a PlayerState, shared: &SharedRandomness) -> SimMessage<'a> {
        let n = player.n();
        let p = self.sample_probability(n).min(1.0);
        let cap = self.cap(n);
        let mut out = Vec::new();
        for e in player.edges() {
            if shared.vertex_sampled(H_TAG, e.u(), p) && shared.vertex_sampled(H_TAG, e.v(), p) {
                out.push(*e);
                if out.len() >= cap {
                    break;
                }
            }
        }
        SimMessage::of(Payload::Edges(out.into()))
    }

    fn referee(
        &self,
        n: usize,
        messages: &[SimMessage],
        _shared: &SharedRandomness,
    ) -> Option<Vec<VertexId>> {
        let mut b = GraphBuilder::new(n);
        for m in messages {
            for e in m.edges() {
                b.add_edge(e);
            }
        }
        find_copy(&b.build(), &self.pattern)
    }
}

/// A completed `H`-freeness run.
#[derive(Debug, Clone)]
pub struct HFreenessRun {
    /// The witness embedding (pattern vertex `i` → host), if found.
    pub witness: Option<Vec<VertexId>>,
    /// Communication statistics.
    pub stats: CommStats,
    /// Per-payload event log with phase attribution.
    pub transcript: triad_comm::Transcript,
}

/// Runs the one-round `H`-freeness tester over a partitioned input.
///
/// # Errors
///
/// Returns [`ProtocolError::InvalidInput`] on malformed shares or a
/// non-positive degree hint.
pub fn run_h_freeness(
    tuning: Tuning,
    pattern: Pattern,
    g: &Graph,
    partition: &Partition,
    avg_degree: f64,
    seed: u64,
) -> Result<HFreenessRun, ProtocolError> {
    if avg_degree <= 0.0 {
        return Err(ProtocolError::InvalidInput(
            "average degree must be positive".into(),
        ));
    }
    let n = g.vertex_count();
    crate::outcome::validate_shares(g, partition)?;
    let protocol = SimHFreeness::new(tuning, pattern, avg_degree);
    let run = run_simultaneous(
        &protocol,
        n,
        partition.shares(),
        SharedRandomness::new(seed),
    );
    Ok(HFreenessRun {
        witness: run.output,
        stats: run.stats,
        transcript: run.transcript,
    })
}

/// Convenience: expose a [`ProtocolRun`]-shaped verdict for triangle
/// patterns, for drop-in comparison against the dedicated testers.
pub fn as_protocol_run(run: &HFreenessRun) -> ProtocolRun {
    use crate::outcome::TestOutcome;
    let outcome = match &run.witness {
        Some(hosts) if hosts.len() == 3 => {
            TestOutcome::TriangleFound(triad_graph::Triangle::new(hosts[0], hosts[1], hosts[2]))
        }
        Some(_) => TestOutcome::NoTriangleFound,
        None => TestOutcome::NoTriangleFound,
    };
    ProtocolRun {
        outcome,
        stats: run.stats,
        transcript: run.transcript.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::planted_copies;
    use triad_graph::partition::random_disjoint;
    use triad_graph::Edge;

    fn workload(pattern: &Pattern, copies: usize, n: usize) -> (Graph, Partition) {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = planted_copies(n, pattern, copies, n / 10, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        (g, parts)
    }

    fn success_rate(pattern: Pattern, copies: usize, n: usize) -> f64 {
        let (g, parts) = workload(&pattern, copies, n);
        let d = g.average_degree();
        let mut hits = 0u32;
        let trials: u32 = 10;
        for seed in 0..trials {
            let run = run_h_freeness(
                Tuning::practical(0.2),
                pattern.clone(),
                &g,
                &parts,
                d,
                u64::from(seed),
            )
            .unwrap();
            if let Some(hosts) = run.witness {
                // Witness soundness: every pattern edge maps to a host edge.
                for e in pattern.graph().edges() {
                    assert!(g.has_edge(Edge::new(hosts[e.u().index()], hosts[e.v().index()])));
                }
                hits += 1;
            }
        }
        f64::from(hits) / f64::from(trials)
    }

    #[test]
    fn finds_planted_k4() {
        let rate = success_rate(Pattern::clique(4), 120, 1000);
        assert!(rate >= 0.7, "K4 found at rate {rate}");
    }

    #[test]
    fn finds_planted_c5() {
        let rate = success_rate(Pattern::cycle(5), 150, 1000);
        assert!(rate >= 0.7, "C5 found at rate {rate}");
    }

    #[test]
    fn triangle_case_matches_dedicated_tester_shape() {
        let rate = success_rate(Pattern::triangle(), 150, 900);
        assert!(rate >= 0.7, "triangle found at rate {rate}");
    }

    #[test]
    fn h_free_inputs_always_accept() {
        // A bipartite-ish noise graph has no odd cycles; C5 and K4 free.
        let g = Graph::from_edges(200, (0..100u32).map(|i| (i, i + 100)));
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let parts = random_disjoint(&g, 3, &mut rng);
        for pattern in [Pattern::clique(4), Pattern::cycle(5), Pattern::triangle()] {
            for seed in 0..5 {
                let run = run_h_freeness(
                    Tuning::practical(0.2),
                    pattern.clone(),
                    &g,
                    &parts,
                    2.0,
                    seed,
                )
                .unwrap();
                assert!(run.witness.is_none(), "{pattern:?} fabricated a witness");
            }
        }
    }

    #[test]
    fn sample_probability_shrinks_with_pattern_size() {
        let t = Tuning::practical(0.2);
        let d = 10.0;
        let tri = SimHFreeness::new(t, Pattern::triangle(), d);
        let k5 = SimHFreeness::new(t, Pattern::clique(5), d);
        let n = 1 << 16;
        // Larger patterns need a larger p (harder to catch v(H) vertices).
        assert!(k5.sample_probability(n) > tri.sample_probability(n));
        assert!(tri.sample_probability(n) > 0.0);
    }

    #[test]
    fn rejects_bad_degree() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let parts = Partition::new(vec![g.edges().to_vec()]);
        assert!(run_h_freeness(
            Tuning::practical(0.2),
            Pattern::triangle(),
            &g,
            &parts,
            0.0,
            0
        )
        .is_err());
    }
}
