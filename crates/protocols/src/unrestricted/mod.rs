//! The unrestricted-communication tester of §3.3
//! (Algorithms 1–6, Theorem 3.20, Corollaries 3.21–3.22).
//!
//! The protocol exploits the key advantage of the communication model
//! over the query model: once any *triangle-vee* (two edges sharing a
//! source whose closing edge exists somewhere) is exposed, whichever
//! player holds the closing edge can finish the job for free. Finding a
//! triangle therefore reduces to finding a vee, which reduces to finding
//! a *full vertex* — one whose incident edges are rich in disjoint vees —
//! and sampling `Θ̃(√deg)` of its edges (the extended birthday paradox,
//! Lemma 3.9).
//!
//! Full vertices are hunted by degree bucket: some bucket between
//! `d_l = εd/(2 log n)` and `d_h = √(nd/ε)` must be *full* (Lemma 3.12),
//! a `poly(ε/log n)`-fraction of a full bucket's neighborhood is full
//! vertices (Lemma 3.7), and per-player suspect sets `B̃_i^j` let the
//! coordinator sample near-uniformly from a bucket nobody can see
//! directly (Algorithm 1). Candidates are filtered by the α-approximate
//! degree of Theorem 3.1 before the expensive edge-sampling step.

mod search;

pub use search::{
    find_triangle_vee, get_full_candidates, sample_edges_at, sample_uniform_from_btilde, Candidate,
};

use crate::blocks;
use crate::config::Tuning;
use crate::outcome::{ProtocolError, ProtocolRun, TestOutcome};
use triad_comm::{CostModel, Recorder, Runtime, SharedRandomness};
use triad_graph::buckets;
use triad_graph::partition::Partition;
use triad_graph::Graph;

/// The unrestricted-communication triangle-freeness tester
/// (one-sided error, cost `Õ(k·(nd)^{1/4} + k²)`).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use triad_graph::generators::far_graph;
/// use triad_graph::partition::random_disjoint;
/// use triad_protocols::{Tuning, UnrestrictedTester};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let g = far_graph(240, 6.0, 0.2, &mut rng)?;
/// let parts = random_disjoint(&g, 4, &mut rng);
/// let run = UnrestrictedTester::new(Tuning::practical(0.2)).run(&g, &parts, 5)?;
/// assert!(run.outcome.found_triangle());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct UnrestrictedTester {
    tuning: Tuning,
    cost_model: CostModel,
}

impl UnrestrictedTester {
    /// A tester with the given tuning under the coordinator cost model.
    pub fn new(tuning: Tuning) -> Self {
        UnrestrictedTester {
            tuning,
            cost_model: CostModel::Coordinator,
        }
    }

    /// Switches to blackboard charging (Theorem 3.23's `k`-factor saving
    /// on posted edges).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// The tuning in force.
    pub fn tuning(&self) -> &Tuning {
        &self.tuning
    }

    /// Runs the tester over a partitioned input on a fresh local runtime.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidInput`] if a share references a
    /// vertex outside `g`.
    pub fn run(
        &self,
        g: &Graph,
        partition: &Partition,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        let n = g.vertex_count();
        crate::outcome::validate_shares(g, partition)?;
        let mut rt = Runtime::local(
            n,
            partition.shares(),
            SharedRandomness::new(seed),
            self.cost_model,
        );
        let outcome = self.run_on(&mut rt);
        Ok(ProtocolRun {
            outcome,
            stats: rt.stats(),
            transcript: rt.into_transcript(),
        })
    }

    /// Runs the tester with **private coins**, via Newman's conversion
    /// (§2): the parties pre-agree on `family_size` candidate seeds, the
    /// coordinator announces one (paying `k·⌈log₂ family_size⌉` bits),
    /// and the protocol proceeds under it. Total cost therefore exceeds
    /// [`run`](Self::run)'s by exactly the announcement.
    ///
    /// # Errors
    ///
    /// Returns [`ProtocolError::InvalidInput`] if a share references a
    /// vertex outside `g`.
    pub fn run_private(
        &self,
        g: &Graph,
        partition: &Partition,
        family_size: u64,
        seed: u64,
    ) -> Result<ProtocolRun, ProtocolError> {
        crate::outcome::validate_shares(g, partition)?;
        let mut rt = Runtime::local(
            g.vertex_count(),
            partition.shares(),
            SharedRandomness::new(seed),
            self.cost_model,
        );
        rt.phase("newman-conversion", |rt| {
            let announced = rt.announce_seed_from_family(family_size);
            rt.adopt_shared(announced);
        });
        let outcome = self.run_on(&mut rt);
        Ok(ProtocolRun {
            outcome,
            stats: rt.stats(),
            transcript: rt.into_transcript(),
        })
    }

    /// Runs the tester over a [`PreparedInput`](crate::amplify::PreparedInput),
    /// recording only a tally — the per-repetition fast path: shares are
    /// already validated and the player states already built and shared
    /// behind an `Arc`, so a repetition re-rolls nothing but the shared
    /// randomness.
    pub fn run_prepared_tally(
        &self,
        input: &crate::amplify::PreparedInput<'_>,
        seed: u64,
    ) -> crate::outcome::TallyRun {
        self.run_prepared_recorded::<triad_comm::Tally>(input, seed)
    }

    /// [`run_prepared_tally`](Self::run_prepared_tally) with the recorder
    /// left to the caller — prepared players, any cost bookkeeping.
    pub fn run_prepared_recorded<R: Recorder>(
        &self,
        input: &crate::amplify::PreparedInput<'_>,
        seed: u64,
    ) -> crate::outcome::ProtocolRun<R> {
        let mut rt = Runtime::<R>::prepared_with(
            input.n(),
            input.shared_players(),
            SharedRandomness::new(seed),
            self.cost_model,
        );
        let outcome = self.run_on(&mut rt);
        crate::outcome::ProtocolRun {
            outcome,
            stats: rt.stats(),
            transcript: rt.into_recorder(),
        }
    }

    /// Runs the tester under a [`FaultPlan`](triad_comm::FaultPlan): the
    /// prepared local transport is wrapped in a
    /// [`FaultyTransport`](triad_comm::FaultyTransport), the runtime
    /// retries retryable delivery faults up to `retry_budget` times per
    /// delivery (charged under [`triad_comm::RETRANSMIT_LABEL`]), and
    /// the run is killed — bits preserved — if a fault goes unrecovered.
    ///
    /// One-sided error survives faults in one direction: a witness found
    /// despite a poisoned runtime is still a real triangle, so such a
    /// repetition counts as survived.
    ///
    /// # Errors
    ///
    /// Returns [`FailedRep`](crate::chaos::FailedRep) when an
    /// unrecovered fault killed the run without a witness.
    pub fn run_chaos_tally(
        &self,
        input: &crate::amplify::PreparedInput<'_>,
        seed: u64,
        plan: &triad_comm::FaultPlan,
        rep: u32,
        retry_budget: u32,
    ) -> Result<crate::chaos::ChaosRep, Box<crate::chaos::FailedRep>> {
        let transport = triad_comm::FaultyTransport::new(
            triad_comm::LocalTransport::from_shared(
                input.shared_players(),
                SharedRandomness::new(seed),
            ),
            *plan,
            rep,
        );
        let counters = transport.counters();
        let mut rt = Runtime::<triad_comm::Tally>::new_with(
            Box::new(transport),
            input.n(),
            SharedRandomness::new(seed),
            self.cost_model,
        )
        .with_retry_budget(retry_budget);
        let outcome = self.run_on(&mut rt);
        let fault = rt.take_fault();
        let stats = rt.stats();
        let transcript = rt.into_recorder();
        let injected = counters.snapshot();
        match fault {
            Some(error) if !outcome.found_triangle() => Err(Box::new(crate::chaos::FailedRep {
                error,
                stats,
                transcript,
                injected,
            })),
            _ => Ok(crate::chaos::ChaosRep {
                run: crate::outcome::TallyRun {
                    outcome,
                    stats,
                    transcript,
                },
                injected,
            }),
        }
    }

    /// Runs the tester over an existing runtime (threaded, blackboard,
    /// tally-recording, …).
    ///
    /// This is FindTriangle (Algorithm 6) with the degree-oblivious window
    /// of Corollary 3.22: the scan range is derived from communicated
    /// bounds on the edge count, never from ground truth.
    pub fn run_on<R: Recorder>(&self, rt: &mut Runtime<R>) -> TestOutcome {
        let n = rt.n();
        let k = rt.k() as f64;
        // Corollary 3.22: bracket the average degree from the players'
        // local counts (free of duplication assumptions, up to factor k).
        let (m_lo, m_hi) = rt.phase("estimate-degree", blocks::total_edge_count_bound);
        if m_hi == 0.0 {
            return TestOutcome::NoTriangleFound; // empty graph
        }
        let d_lo = (2.0 * m_lo / n as f64).max(1.0 / k);
        let d_hi = 2.0 * m_hi / n as f64;
        let low = buckets::DegreeThresholds::compute(n, d_lo, self.tuning.epsilon).low;
        let high = buckets::DegreeThresholds::compute(n, d_hi, self.tuning.epsilon).high;
        let first = buckets::bucket_of_degree(low.max(1.0) as usize).unwrap_or(0);
        let last = buckets::bucket_of_degree(high.max(1.0).ceil() as usize).unwrap_or(0);
        for bucket in first..=last {
            rt.next_round();
            if let Some(t) = find_triangle_vee(rt, bucket, &self.tuning) {
                return TestOutcome::TriangleFound(t);
            }
        }
        TestOutcome::NoTriangleFound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::generators::{dense_core, far_graph};
    use triad_graph::partition::{adversarial_triangle_split, random_disjoint, with_duplication};

    #[test]
    fn finds_triangle_in_far_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = UnrestrictedTester::new(Tuning::practical(0.2));
        let run = tester.run(&g, &parts, 11).unwrap();
        let t = run
            .outcome
            .triangle()
            .expect("far graph must yield a triangle");
        assert!(t.exists_in(&g), "one-sided error: witness must be real");
        assert!(run.stats.total_bits > 0);
    }

    #[test]
    fn finds_triangle_under_duplication() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = with_duplication(&g, 4, 0.4, &mut rng);
        let run = UnrestrictedTester::new(Tuning::practical(0.2))
            .run(&g, &parts, 3)
            .unwrap();
        let t = run
            .outcome
            .triangle()
            .expect("duplication must not break the tester");
        assert!(t.exists_in(&g));
    }

    #[test]
    fn finds_triangle_with_adversarial_split() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = adversarial_triangle_split(&g, 3, &mut rng);
        // (The packed triangles are guaranteed split; incidental triangles
        // formed by leftover noise edges may still be local — the point of
        // the test is that the protocol needs no local triangle anywhere.)
        let run = UnrestrictedTester::new(Tuning::practical(0.2))
            .run(&g, &parts, 4)
            .unwrap();
        assert!(run.outcome.found_triangle());
    }

    #[test]
    fn accepts_triangle_free_graph_always() {
        // One-sided error: NO input ever yields a (fake) triangle.
        let g = Graph::from_edges(
            50,
            (0..49).map(|i| (i as u32, i as u32 + 1)), // a path
        );
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let parts = random_disjoint(&g, 4, &mut rng);
        for seed in 0..5 {
            let run = UnrestrictedTester::new(Tuning::practical(0.2))
                .run(&g, &parts, seed)
                .unwrap();
            assert!(run.outcome.accepts());
        }
    }

    #[test]
    fn finds_triangles_in_dense_core_instance() {
        // The instance that defeats uniform vertex sampling: bucketing must
        // still find the high-degree hubs.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let dc = dense_core(300, 4, &mut rng).unwrap();
        let parts = random_disjoint(dc.graph(), 4, &mut rng);
        let run = UnrestrictedTester::new(Tuning::practical(0.2))
            .run(dc.graph(), &parts, 6)
            .unwrap();
        let t = run
            .outcome
            .triangle()
            .expect("dense core is far from triangle-free");
        assert!(t.exists_in(dc.graph()));
    }

    #[test]
    fn empty_graph_accepts_cheaply() {
        let g = Graph::from_edges(10, []);
        let parts = Partition::new(vec![vec![], vec![]]);
        let run = UnrestrictedTester::new(Tuning::practical(0.2))
            .run(&g, &parts, 0)
            .unwrap();
        assert!(run.outcome.accepts());
        assert!(run.stats.total_bits < 100);
    }

    #[test]
    fn rejects_out_of_range_share() {
        let g = Graph::from_edges(4, [(0, 1)]);
        let bad = Partition::new(vec![vec![triad_graph::Edge::new(
            triad_graph::VertexId(7),
            triad_graph::VertexId(8),
        )]]);
        let err = UnrestrictedTester::new(Tuning::practical(0.2)).run(&g, &bad, 0);
        assert!(err.is_err());
    }

    #[test]
    fn private_coins_cost_exactly_the_announcement() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = UnrestrictedTester::new(Tuning::practical(0.2));
        let private = tester.run_private(&g, &parts, 1 << 12, 21).unwrap();
        let t = private
            .outcome
            .triangle()
            .expect("still finds the triangle");
        assert!(t.exists_in(&g));
        // The run under the announced seed, replayed directly, costs the
        // private run minus the k × 13-bit announcement.
        let mut rt = Runtime::local(
            g.vertex_count(),
            parts.shares(),
            SharedRandomness::new(21),
            CostModel::Coordinator,
        );
        let announced = rt.announce_seed_from_family(1 << 12);
        let announce_bits = rt.stats().total_bits;
        assert_eq!(announce_bits, 4 * 13);
        let mut replay = Runtime::local(
            g.vertex_count(),
            parts.shares(),
            announced,
            CostModel::Coordinator,
        );
        let replay_outcome = tester.run_on(&mut replay);
        assert_eq!(replay_outcome, private.outcome);
        assert_eq!(
            private.stats.total_bits,
            replay.stats().total_bits + announce_bits
        );
    }

    #[test]
    fn blackboard_model_is_cheaper() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let g = far_graph(240, 6.0, 0.2, &mut rng).unwrap();
        let parts = with_duplication(&g, 6, 0.5, &mut rng);
        let tuning = Tuning::practical(0.2);
        let coord = UnrestrictedTester::new(tuning).run(&g, &parts, 9).unwrap();
        let board = UnrestrictedTester::new(tuning)
            .with_cost_model(CostModel::Blackboard)
            .run(&g, &parts, 9)
            .unwrap();
        assert!(board.stats.total_bits < coord.stats.total_bits);
        assert_eq!(
            board.outcome.found_triangle(),
            coord.outcome.found_triangle(),
            "cost model must not change the verdict"
        );
    }
}
