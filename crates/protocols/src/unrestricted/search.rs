//! The bucket-search machinery of §3.3: Algorithms 1 (uniform sampling
//! from `B̃_i`), 3 (GetFullCandidates), 4 (SampleEdges) and 5
//! (FindTriangleVee).

use crate::blocks::approx_degree;
use crate::config::Tuning;
use std::collections::HashSet;
use triad_comm::{Payload, PlayerRequest, Recorder, Runtime};
use triad_graph::{buckets, Triangle, VertexId};

/// A candidate full vertex with its approximate degree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The sampled vertex.
    pub vertex: VertexId,
    /// Its Theorem-3.1 degree estimate.
    pub degree_estimate: f64,
}

/// Degree-filter widening: the Theorem 3.1 estimate is within a constant
/// factor, so candidates are kept when the estimate falls within this
/// factor of the bucket's degree window (paper: `√3` on each side; we
/// allow the estimator's full worst-case factor).
const FILTER_ALPHA: f64 = 3.0;

/// Algorithm 1: samples a uniformly random vertex from
/// `B̃_i = ⋃_j B̃_i^j` by taking the first suspect under a public random
/// permutation. Unbiased regardless of how many players suspect a vertex.
/// Returns `None` if no player has any suspect for this bucket.
pub fn sample_uniform_from_btilde<R: Recorder>(
    rt: &mut Runtime<R>,
    bucket: usize,
    perm_tag: u64,
) -> Option<VertexId> {
    let shared = rt.shared();
    let k = rt.k();
    rt.broadcast(PlayerRequest::FirstSuspectInBucket {
        bucket,
        k,
        perm_tag,
    })
    .into_iter()
    .filter_map(|p| match p {
        Payload::Vertex(v) => v,
        _ => None,
    })
    .min_by_key(|v| shared.vertex_rank(perm_tag, *v))
}

/// Algorithm 3: samples up to the tuning's budget of vertices from
/// `B̃_i`, approximates each one's degree, and keeps those whose estimate
/// matches the bucket window — stopping once the candidate target is hit.
///
/// Sampling uses the batched form of Algorithm 1 (one
/// [`PlayerRequest::SuspectSample`] round instead of `q` single-sample
/// rounds): each player reports its lowest-ranked suspects under the
/// public permutation and the merged prefix is a uniform sample without
/// replacement from `B̃_i` — same total bits, one pass per player. A
/// first small batch usually suffices; the full budget is fetched only
/// if the degree filter starves.
pub fn get_full_candidates<R: Recorder>(
    rt: &mut Runtime<R>,
    bucket: usize,
    tuning: &Tuning,
) -> Vec<Candidate> {
    let n = rt.n();
    let k = rt.k();
    let budget = tuning.sample_budget(n, k);
    let target = tuning.candidate_target(n);
    let lo = buckets::d_minus(bucket) as f64 / FILTER_ALPHA;
    let hi = buckets::d_plus(bucket) as f64 * FILTER_ALPHA;
    let mut seen: HashSet<VertexId> = HashSet::new();
    let mut out = Vec::new();
    let mut batch = (4 * target).min(budget);
    let mut examined = 0usize;
    // One permutation for both batch rounds, so the larger batch extends
    // the first batch's prefix exactly and `skip(examined)` stays aligned.
    let tag = rt.fresh_tag();
    loop {
        let samples = suspect_batch(rt, bucket, tag, batch);
        for v in samples.iter().skip(examined) {
            if out.len() >= target || examined >= budget {
                break;
            }
            examined += 1;
            if !seen.insert(*v) {
                continue;
            }
            let est = rt.phase("approx-degree", |rt| approx_degree(rt, *v, tuning));
            if est.value >= lo && est.value <= hi {
                out.push(Candidate {
                    vertex: *v,
                    degree_estimate: est.value,
                });
            }
        }
        let exhausted = samples.len() < batch;
        if out.len() >= target || examined >= budget || batch >= budget || exhausted {
            break;
        }
        batch = budget;
    }
    out
}

/// One batched suspect round: the `count` globally lowest-ranked
/// suspects of `B̃_i` under the public permutation named by `tag`.
fn suspect_batch<R: Recorder>(
    rt: &mut Runtime<R>,
    bucket: usize,
    tag: u64,
    count: usize,
) -> Vec<VertexId> {
    let shared = rt.shared();
    let k = rt.k();
    let mut all: Vec<VertexId> = Vec::new();
    for resp in rt.broadcast(PlayerRequest::SuspectSample {
        bucket,
        k,
        perm_tag: tag,
        count,
    }) {
        if let Payload::Vertices(vs) = resp {
            all.extend(vs);
        }
    }
    all.sort_unstable_by_key(|v| shared.vertex_rank(tag, *v));
    all.dedup();
    all.truncate(count);
    all
}

/// Algorithm 4: samples each edge incident to `v` with the
/// birthday-paradox probability `p ≈ c·√(log n/(ε·d'))` and collects the
/// players' sampled edges (per-player cap per the cutoff rule).
pub fn sample_edges_at<R: Recorder>(
    rt: &mut Runtime<R>,
    candidate: Candidate,
    tuning: &Tuning,
) -> Vec<triad_graph::Edge> {
    let n = rt.n();
    // The estimate may be up to ×3 high; sampling for the pessimistic
    // (smaller) degree only raises p, preserving the vee guarantee.
    let p = tuning.edge_sample_probability(n, candidate.degree_estimate / FILTER_ALPHA);
    let cap = tuning.edge_sample_cap(candidate.degree_estimate * FILTER_ALPHA, p);
    let tag = rt.fresh_tag();
    rt.gather_edges(PlayerRequest::IncidentEdgesSampled {
        v: candidate.vertex,
        tag,
        p,
        cap,
    })
}

/// Algorithm 5: for each candidate, sample its edges, post them to all
/// players, and let anyone holding a closing edge finish the triangle.
pub fn find_triangle_vee<R: Recorder>(
    rt: &mut Runtime<R>,
    bucket: usize,
    tuning: &Tuning,
) -> Option<Triangle> {
    let candidates = rt.phase("find-candidates", |rt| {
        get_full_candidates(rt, bucket, tuning)
    });
    for candidate in candidates {
        let sampled = rt.phase("sample-edges", |rt| sample_edges_at(rt, candidate, tuning));
        if sampled.len() < 2 {
            continue; // no vee can exist among fewer than two edges
        }
        rt.next_round();
        let found = rt.phase("close-triangle", |rt| {
            rt.broadcast(PlayerRequest::FindClosingTriangle { edges: sampled })
                .into_iter()
                .find_map(|resp| match resp {
                    Payload::Triangle(Some(t)) => Some(t),
                    _ => None,
                })
        });
        if let Some(t) = found {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_comm::{CostModel, SharedRandomness};
    use triad_graph::Edge;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    /// Hub 0 with 12 leaves paired into 6 disjoint vees; the closing
    /// edges live on player 1 only.
    fn book_shares() -> Vec<Vec<Edge>> {
        let mut spokes = Vec::new();
        let mut pages = Vec::new();
        for i in 0..6u32 {
            let a = 1 + 2 * i;
            let b = 2 + 2 * i;
            spokes.push(e(0, a));
            spokes.push(e(0, b));
            pages.push(e(a, b));
        }
        vec![spokes, pages]
    }

    fn runtime(seed: u64) -> Runtime {
        Runtime::local(
            13,
            &book_shares(),
            SharedRandomness::new(seed),
            CostModel::Coordinator,
        )
    }

    #[test]
    fn sample_uniform_respects_bucket() {
        let mut rt = runtime(1);
        // Hub degree (player 0's view) = 12 ⇒ bucket 2 [9,27).
        let tag = rt.fresh_tag();
        let v = sample_uniform_from_btilde(&mut rt, 2, tag);
        assert_eq!(
            v,
            Some(VertexId(0)),
            "only the hub is suspected in bucket 2"
        );
        // Bucket 4 [81,243): nobody qualifies (k=2 ⇒ window [40.5, 243]).
        let tag = rt.fresh_tag();
        assert_eq!(sample_uniform_from_btilde(&mut rt, 4, tag), None);
    }

    #[test]
    fn candidates_include_hub() {
        let mut rt = runtime(2);
        let tuning = Tuning::practical(0.3);
        let cands = get_full_candidates(&mut rt, 2, &tuning);
        assert!(
            cands.iter().any(|c| c.vertex == VertexId(0)),
            "hub must be a candidate, got {cands:?}"
        );
        for c in &cands {
            assert!(c.degree_estimate > 0.0);
        }
    }

    #[test]
    fn candidate_filter_rejects_wrong_bucket() {
        let mut rt = runtime(3);
        let tuning = Tuning::practical(0.3);
        // Bucket 0 [1,3): the leaves qualify (local degree 1–2), and the
        // filter must reject any whose true degree estimate lands far out.
        let cands = get_full_candidates(&mut rt, 0, &tuning);
        for c in &cands {
            assert!(
                c.degree_estimate <= 3.0 * 3.0,
                "leaf estimates stay small: {c:?}"
            );
            assert_ne!(
                c.vertex,
                VertexId(0),
                "hub (degree 12) must be filtered out"
            );
        }
    }

    #[test]
    fn sample_edges_returns_incident_edges() {
        let mut rt = runtime(4);
        let tuning = Tuning::practical(0.3);
        let cand = Candidate {
            vertex: VertexId(0),
            degree_estimate: 12.0,
        };
        let edges = sample_edges_at(&mut rt, cand, &tuning);
        assert!(!edges.is_empty());
        for edge in &edges {
            assert!(edge.is_incident_to(VertexId(0)));
        }
    }

    #[test]
    fn find_triangle_vee_closes_across_players() {
        let mut rt = runtime(5);
        let tuning = Tuning::practical(0.3);
        let t = find_triangle_vee(&mut rt, 2, &tuning)
            .expect("the book graph's hub sources 6 disjoint vees");
        // Verify against the union graph.
        let union = {
            let mut b = triad_graph::GraphBuilder::new(13);
            for s in book_shares() {
                b.extend_edges(s);
            }
            b.build()
        };
        assert!(t.exists_in(&union));
    }

    #[test]
    fn find_triangle_vee_none_without_triangles() {
        // Star only: vees but no closing edges anywhere.
        let spokes: Vec<Edge> = (1..=12).map(|i| e(0, i)).collect();
        let mut rt = Runtime::local(
            13,
            &[spokes, vec![]],
            SharedRandomness::new(6),
            CostModel::Coordinator,
        );
        let tuning = Tuning::practical(0.3);
        assert_eq!(find_triangle_vee(&mut rt, 2, &tuning), None);
    }
}
