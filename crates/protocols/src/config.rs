//! Protocol tuning: ε, δ and the constants behind every sample size.
//!
//! The paper's protocols carry polylogarithmic factors with enormous
//! constants (e.g. `q = ln(6/δ)·108·log²n·k/ε²` samples per bucket).
//! Those constants make the asymptotic proofs go through but swamp any
//! finite experiment, so the tuning distinguishes two presets:
//!
//! * [`Tuning::paper_faithful`] — the constants exactly as printed, for
//!   small-n validation runs;
//! * [`Tuning::practical`] — the same formulas with the leading constants
//!   reduced and one `log n` factor dropped where the paper itself notes
//!   slack. Every dependence on `n`, `d`, `k`, `ε`, `δ` is preserved, so
//!   scaling experiments measure the same exponents.

use triad_comm::PayloadRepr;

/// Which constant regime to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Constants exactly as in the paper.
    PaperFaithful,
    /// Reduced constants; identical asymptotics.
    Practical,
}

/// All knobs of the testing protocols.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tuning {
    /// Distance parameter ε: inputs are promised triangle-free or ε-far.
    pub epsilon: f64,
    /// Error probability budget δ.
    pub delta: f64,
    /// Constant regime.
    pub preset: Preset,
    /// Extra global multiplier on sample sizes (1.0 = preset default).
    pub scale: f64,
    /// How edge-set payloads are represented on the wire (edge list vs
    /// packed bitset). Purely a runtime choice: recorded bits, verdicts
    /// and witnesses are identical under every setting (the
    /// `tests/payload_differential.rs` contract).
    pub repr: PayloadRepr,
}

impl Tuning {
    /// The paper's constants at error budget δ = 1/10.
    pub fn paper_faithful(epsilon: f64) -> Self {
        Tuning {
            epsilon,
            delta: 0.1,
            preset: Preset::PaperFaithful,
            scale: 1.0,
            repr: PayloadRepr::Auto,
        }
    }

    /// Reduced constants at error budget δ = 1/10.
    pub fn practical(epsilon: f64) -> Self {
        Tuning {
            epsilon,
            delta: 0.1,
            preset: Preset::Practical,
            scale: 1.0,
            repr: PayloadRepr::Auto,
        }
    }

    /// Overrides δ.
    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    /// Overrides the global sample multiplier.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Overrides the edge-payload representation policy.
    pub fn with_repr(mut self, repr: PayloadRepr) -> Self {
        self.repr = repr;
        self
    }

    /// `⌈log₂ n⌉` as a float (the paper's `log n`).
    pub fn log_n(n: usize) -> f64 {
        (n.max(2) as f64).log2().ceil()
    }

    // ------------------------------------------------------------------
    // Unrestricted protocol (§3.3)
    // ------------------------------------------------------------------

    /// Target size of the candidate set `C` per bucket
    /// (paper: `ln(6/δ)·312·log²n/ε²`, Algorithm 3's second stop rule).
    pub fn candidate_target(&self, n: usize) -> usize {
        let ln6d = (6.0 / self.delta).ln();
        let l = Self::log_n(n);
        let raw = match self.preset {
            Preset::PaperFaithful => ln6d * 312.0 * l * l / (self.epsilon * self.epsilon),
            Preset::Practical => l / self.epsilon,
        };
        ((raw * self.scale).ceil() as usize).max(2)
    }

    /// Total sampling budget `q` per bucket (paper:
    /// `ln(6/δ)·108·log²n·k/ε²`; the extra `k` covers the dilution of
    /// `B_i` inside `B̃_i ⊆ N_k(B_i)`).
    pub fn sample_budget(&self, n: usize, k: usize) -> usize {
        let ln6d = (6.0 / self.delta).ln();
        let l = Self::log_n(n);
        let raw = match self.preset {
            Preset::PaperFaithful => {
                ln6d * 108.0 * l * l * k as f64 / (self.epsilon * self.epsilon)
            }
            Preset::Practical => 2.0 * l * k as f64 / self.epsilon,
        };
        ((raw * self.scale).ceil() as usize).max(4)
    }

    /// Per-edge sampling probability at a vertex of (approximate) degree
    /// `d_approx` (Corollary 3.10: `4·sqrt(ln(6/δ))·sqrt(12·log n/(ε·d))`),
    /// clamped to 1.
    pub fn edge_sample_probability(&self, n: usize, d_approx: f64) -> f64 {
        let l = Self::log_n(n);
        let c = match self.preset {
            Preset::PaperFaithful => 4.0 * (6.0 / self.delta).ln().sqrt(),
            Preset::Practical => 2.0,
        };
        let p = c * (12.0 * l / (self.epsilon * d_approx.max(1.0))).sqrt() * self.scale;
        p.clamp(0.0, 1.0)
    }

    /// Per-player cap on edges sent in one SampleEdges step (Algorithm 4's
    /// cutoff `≈ √3·d'·p` with Chernoff slack).
    pub fn edge_sample_cap(&self, d_approx: f64, p: f64) -> usize {
        let expected = 3f64.sqrt() * d_approx * p;
        let slack = match self.preset {
            Preset::PaperFaithful => 1.0 + 18.0 / (d_approx * p).max(1.0) * (6.0 / self.delta).ln(),
            Preset::Practical => 2.0,
        };
        ((expected * slack).ceil() as usize).max(8)
    }

    /// Degree-approximation ratio α used to filter candidates
    /// (paper: √3-approximation checked against a widened bucket window).
    pub fn degree_alpha(&self) -> f64 {
        3f64.sqrt()
    }

    /// Experiments per guess round in Theorem 3.1's sampling phase
    /// (`Θ(log log k)` with constants absorbing the union bound over
    /// `O(log k)` rounds).
    pub fn degree_experiments(&self, k: usize) -> usize {
        let base = ((k.max(2) as f64).ln().ln().max(1.0) * (6.0 / self.delta).ln()).ceil();
        let c = match self.preset {
            Preset::PaperFaithful => 24.0,
            Preset::Practical => 4.0,
        };
        ((base * c * self.scale) as usize).max(8)
    }

    // ------------------------------------------------------------------
    // Simultaneous protocols (§3.4)
    // ------------------------------------------------------------------

    /// AlgHigh vertex-sample size `|S| = c·(n²/(ε·d))^{1/3}` (Algorithm 7).
    pub fn high_sample_size(&self, n: usize, d: f64) -> f64 {
        let c = match self.preset {
            Preset::PaperFaithful => 8.0 / (9.0 * self.delta),
            Preset::Practical => 3.0,
        };
        c * ((n as f64) * (n as f64) / (self.epsilon * d.max(1.0))).cbrt() * self.scale
    }

    /// AlgHigh per-player edge cap `l = (|S|/n)²·(4/δ)·(nd/2)` —
    /// the Markov cutoff of Algorithm 7 step 2.
    pub fn high_cap(&self, n: usize, d: f64) -> usize {
        let s = self.high_sample_size(n, d);
        let frac = (s / n as f64).min(1.0);
        let m = n as f64 * d / 2.0;
        ((frac * frac * (4.0 / self.delta) * m).ceil() as usize).max(16)
    }

    /// AlgLow constant `c` (the paper fixes `c = 8/(9δ)`).
    pub fn low_c(&self) -> f64 {
        let c = match self.preset {
            Preset::PaperFaithful => 8.0 / (9.0 * self.delta),
            Preset::Practical => 3.0,
        };
        c * self.scale
    }

    /// AlgLow probabilities `(p₁, p₂) = (min(c/d, 1), c/√n)` (Algorithm 8).
    pub fn low_probabilities(&self, n: usize, d: f64) -> (f64, f64) {
        let c = self.low_c();
        ((c / d.max(1.0)).min(1.0), (c / (n as f64).sqrt()).min(1.0))
    }

    /// AlgLow per-player cap `q = 2c²(√n + d)·(2/δ)`.
    pub fn low_cap(&self, n: usize, d: f64) -> usize {
        let c = self.low_c();
        ((2.0 * c * c * ((n as f64).sqrt() + d) * 2.0 / self.delta).ceil() as usize).max(16)
    }

    /// Degree-oblivious per-instance cap for a high-degree guess
    /// (§3.4.3: `O((n·d̄_j)^{1/3}·log n·log(k·log n))`).
    pub fn oblivious_high_cap(&self, n: usize, local_avg_degree: f64, k: usize) -> usize {
        let l = Self::log_n(n);
        let base = (n as f64 * local_avg_degree.max(1.0)).cbrt();
        let polylog = match self.preset {
            Preset::PaperFaithful => l * (k as f64 * l).ln().max(1.0),
            Preset::Practical => (k as f64 * l).ln().max(1.0),
        };
        ((base * polylog * (4.0 / self.delta) * self.scale).ceil() as usize).max(16)
    }

    /// Degree-oblivious per-instance cap for a low-degree guess
    /// (§3.4.3: `O(√n·log n·log(k·log n))`).
    pub fn oblivious_low_cap(&self, n: usize, k: usize) -> usize {
        let l = Self::log_n(n);
        let base = (n as f64).sqrt();
        let polylog = match self.preset {
            Preset::PaperFaithful => l * (k as f64 * l).ln().max(1.0),
            Preset::Practical => (k as f64 * l).ln().max(1.0),
        };
        ((base * polylog * (4.0 / self.delta) * self.scale).ceil() as usize).max(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_in_constants_not_shape() {
        let paper = Tuning::paper_faithful(0.1);
        let prac = Tuning::practical(0.1);
        assert!(paper.candidate_target(1024) > prac.candidate_target(1024));
        assert!(paper.sample_budget(1024, 8) > prac.sample_budget(1024, 8));
        // shape: budget grows linearly in k for both
        for t in [paper, prac] {
            let b1 = t.sample_budget(1024, 4) as f64;
            let b2 = t.sample_budget(1024, 8) as f64;
            assert!((b2 / b1 - 2.0).abs() < 0.3, "budget not ~linear in k");
        }
    }

    #[test]
    fn edge_probability_decreases_with_degree() {
        let t = Tuning::practical(0.2);
        let p_low = t.edge_sample_probability(1024, 4.0);
        let p_high = t.edge_sample_probability(1024, 400.0);
        assert!(p_low >= p_high);
        assert!(p_high > 0.0 && p_low <= 1.0);
        // shape: p ~ 1/√d once unclamped
        let p1 = t.edge_sample_probability(1 << 20, 10_000.0);
        let p2 = t.edge_sample_probability(1 << 20, 40_000.0);
        assert!(
            (p1 / p2 - 2.0).abs() < 0.05,
            "p should scale as d^-1/2: {}",
            p1 / p2
        );
    }

    #[test]
    fn high_sample_size_shape() {
        let t = Tuning::practical(0.1);
        // |S| ∝ (n²/d)^{1/3}: quadrupling d divides |S|³ by 4.
        let s1 = t.high_sample_size(1 << 16, 256.0);
        let s2 = t.high_sample_size(1 << 16, 1024.0);
        assert!((s1 / s2 - 4f64.cbrt()).abs() < 0.01);
    }

    #[test]
    fn low_probabilities_clamp() {
        let t = Tuning::practical(0.1);
        let (p1, p2) = t.low_probabilities(100, 1.0);
        assert_eq!(p1, 1.0);
        assert!(p2 <= 1.0);
        let (p1, _) = t.low_probabilities(1 << 20, 1000.0);
        assert!(p1 < 0.01);
    }

    #[test]
    fn caps_are_positive_and_scale() {
        let t = Tuning::practical(0.1);
        assert!(t.high_cap(4096, 64.0) >= 16);
        assert!(t.low_cap(4096, 10.0) >= 16);
        assert!(t.oblivious_low_cap(4096, 8) >= 16);
        assert!(t.oblivious_high_cap(4096, 64.0, 8) >= t.oblivious_high_cap(4096, 8.0, 8));
        let scaled = t.with_scale(4.0);
        assert!(scaled.high_sample_size(4096, 64.0) > t.high_sample_size(4096, 64.0));
    }

    #[test]
    fn paper_faithful_formulas_match_the_printed_expressions() {
        // The PaperFaithful preset must evaluate the paper's formulas
        // verbatim; spot-check at n = 1024 (log n = 10), δ = 0.1, ε = 0.1.
        let t = Tuning::paper_faithful(0.1);
        let n = 1024;
        let ln6d = (6.0f64 / 0.1).ln();
        // |C| target: ln(6/δ)·312·log²n/ε².
        let expected_c = (ln6d * 312.0 * 100.0 / 0.01).ceil() as usize;
        assert_eq!(t.candidate_target(n), expected_c);
        // q: ln(6/δ)·108·log²n·k/ε².
        let expected_q = (ln6d * 108.0 * 100.0 * 8.0 / 0.01).ceil() as usize;
        assert_eq!(t.sample_budget(n, 8), expected_q);
        // Edge-sampling probability: 4·√(ln 6/δ)·√(12·log n/(ε·d)).
        let d: f64 = 400.0;
        let expected_p = 4.0 * ln6d.sqrt() * (12.0f64 * 10.0 / (0.1 * d)).sqrt();
        assert!((t.edge_sample_probability(n, d) - expected_p.min(1.0)).abs() < 1e-12);
        // AlgHigh sample size: (8/(9δ))·(n²/(εd))^{1/3}.
        let expected_s = 8.0 / 0.9 * ((1024.0f64 * 1024.0) / (0.1 * d)).cbrt();
        assert!((t.high_sample_size(n, d) - expected_s).abs() < 1e-9);
        // AlgLow constant: c = 8/(9δ).
        assert!((t.low_c() - 8.0 / 0.9).abs() < 1e-12);
        // AlgLow cap: 2c²(√n + d)·(2/δ).
        let c = 8.0 / 0.9;
        let expected_cap = (2.0 * c * c * ((n as f64).sqrt() + d) * 20.0).ceil() as usize;
        assert_eq!(t.low_cap(n, d), expected_cap);
    }

    #[test]
    fn builders() {
        let t = Tuning::practical(0.2).with_delta(0.05);
        assert_eq!(t.delta, 0.05);
        assert_eq!(t.epsilon, 0.2);
        assert_eq!(t.repr, PayloadRepr::Auto);
        assert_eq!(t.with_repr(PayloadRepr::Bits).repr, PayloadRepr::Bits);
        assert!(t.degree_experiments(16) >= 8);
        assert!((t.degree_alpha() - 3f64.sqrt()).abs() < 1e-12);
    }
}
