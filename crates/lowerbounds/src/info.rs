//! Information-theory toolkit (§2, §4.1): entropy, KL divergence,
//! Lemma 4.3's Bernoulli bound, and exact transcript-information
//! accounting for small protocols.
//!
//! The lower-bound proofs revolve around one inequality chain:
//! `|Π| ≥ I(Π; E) ≥ Σ_e I(Π; X_e)` (super-additivity over independent
//! edge indicators, Lemma 4.2/4.6). For message functions over few enough
//! input bits we can *compute* every quantity exactly by enumeration and
//! check the chain numerically.

use std::collections::HashMap;
use std::hash::Hash;

/// Shannon entropy (bits) of a distribution given as probabilities.
///
/// Zero-probability entries contribute zero. Probabilities should sum to
/// 1; no normalization is performed.
pub fn entropy(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|p| **p > 0.0)
        .map(|p| -p * p.log2())
        .sum()
}

/// Binary entropy `H(p)` in bits.
pub fn binary_entropy(p: f64) -> f64 {
    entropy(&[p, 1.0 - p])
}

/// KL divergence `D(μ ‖ η)` in bits between two distributions on the
/// same support. Returns `f64::INFINITY` if `μ` puts mass where `η`
/// does not.
pub fn kl_divergence(mu: &[f64], eta: &[f64]) -> f64 {
    assert_eq!(mu.len(), eta.len(), "distributions need equal support");
    let mut sum = 0.0;
    for (&m, &e) in mu.iter().zip(eta) {
        if m > 0.0 {
            if e <= 0.0 {
                return f64::INFINITY;
            }
            sum += m * (m / e).log2();
        }
    }
    sum
}

/// KL divergence between `Bernoulli(q)` and `Bernoulli(p)`.
pub fn bernoulli_kl(q: f64, p: f64) -> f64 {
    kl_divergence(&[q, 1.0 - q], &[p, 1.0 - p])
}

/// Lemma 4.3: for `p < 1/2`, `D(q ‖ p) ≥ q − 2p` (in bits the paper's
/// statement holds a fortiori since `log₂ ≥ ln`). Returns the slack
/// `D(q ‖ p) − (q − 2p)`, which the lemma asserts is non-negative.
pub fn lemma_4_3_slack(q: f64, p: f64) -> f64 {
    bernoulli_kl(q, p) - (q - 2.0 * p)
}

/// Exact information accounting of a deterministic message function over
/// iid `Bernoulli(p)` input bits.
#[derive(Debug, Clone)]
pub struct InfoReport {
    /// Entropy of the message `H(M)` (bits).
    pub message_entropy: f64,
    /// Mutual information `I(X; M)` with the full input.
    pub total_information: f64,
    /// Per-bit informations `I(X_i; M)`.
    pub per_bit: Vec<f64>,
}

impl InfoReport {
    /// Super-additivity check (Lemma 4.2): `Σ_i I(X_i; M) ≤ I(X; M)`.
    pub fn superadditivity_slack(&self) -> f64 {
        self.total_information - self.per_bit.iter().sum::<f64>()
    }
}

/// Enumerates all `2^len` inputs (weights from iid `Bernoulli(p)`) and
/// computes `H(M)`, `I(X; M)` and every `I(X_i; M)` exactly for the
/// deterministic message function `f`.
///
/// # Panics
///
/// Panics if `len > 20` (enumeration would be too large).
pub fn exact_information<M, F>(len: usize, p: f64, f: F) -> InfoReport
where
    M: Hash + Eq + Clone,
    F: Fn(&[bool]) -> M,
{
    assert!(len <= 20, "enumeration limited to 20 input bits");
    let size = 1usize << len;
    // P(m) and P(m, X_i = 1).
    let mut p_m: HashMap<M, f64> = HashMap::new();
    let mut p_m_xi: HashMap<M, Vec<f64>> = HashMap::new();
    let mut input = vec![false; len];
    for mask in 0..size {
        let mut weight = 1.0;
        for (i, b) in input.iter_mut().enumerate() {
            *b = (mask >> i) & 1 == 1;
            weight *= if *b { p } else { 1.0 - p };
        }
        if weight == 0.0 {
            continue;
        }
        let m = f(&input);
        *p_m.entry(m.clone()).or_insert(0.0) += weight;
        let slot = p_m_xi.entry(m).or_insert_with(|| vec![0.0; len]);
        for (i, b) in input.iter().enumerate() {
            if *b {
                slot[i] += weight;
            }
        }
    }
    let message_entropy = entropy(&p_m.values().copied().collect::<Vec<_>>());
    // I(X_i; M) = Σ_m P(m)·D( P(X_i | m) ‖ P(X_i) ).
    let mut per_bit = vec![0.0; len];
    for (m, pm) in &p_m {
        let joint = &p_m_xi[m];
        for i in 0..len {
            let q = joint[i] / pm;
            per_bit[i] += pm * bernoulli_kl(q.clamp(0.0, 1.0), p);
        }
    }
    // I(X; M) = H(M) for deterministic f (H(M|X) = 0).
    InfoReport {
        message_entropy,
        total_information: message_entropy,
        per_bit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_basics() {
        assert!((entropy(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy(&[1.0, 0.0]), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
        assert!(binary_entropy(0.1) < 0.5);
    }

    #[test]
    fn kl_properties() {
        assert_eq!(kl_divergence(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
        assert!(kl_divergence(&[0.9, 0.1], &[0.5, 0.5]) > 0.0);
        assert_eq!(kl_divergence(&[0.5, 0.5], &[1.0, 0.0]), f64::INFINITY);
        assert!(bernoulli_kl(0.9, 0.1) > bernoulli_kl(0.2, 0.1));
    }

    #[test]
    fn lemma_4_3_nonnegative_on_grid() {
        for qi in 1..100 {
            for pi in 1..50 {
                let q = qi as f64 / 100.0;
                let p = pi as f64 / 100.0; // p < 1/2
                assert!(
                    lemma_4_3_slack(q, p) > -1e-9,
                    "Lemma 4.3 violated at q={q}, p={p}"
                );
            }
        }
    }

    #[test]
    fn identity_message_reveals_everything() {
        let report = exact_information(4, 0.3, |x| x.to_vec());
        let h = binary_entropy(0.3);
        assert!((report.message_entropy - 4.0 * h).abs() < 1e-9);
        for b in &report.per_bit {
            assert!((b - h).abs() < 1e-9, "each bit fully revealed");
        }
        assert!(report.superadditivity_slack().abs() < 1e-9);
    }

    #[test]
    fn constant_message_reveals_nothing() {
        let report = exact_information(5, 0.4, |_| 0u8);
        assert_eq!(report.message_entropy, 0.0);
        for b in &report.per_bit {
            assert!(b.abs() < 1e-12);
        }
    }

    #[test]
    fn parity_shows_strict_superadditivity() {
        // At p = 1/2, parity carries 1 bit about X jointly but 0 about
        // each X_i individually — the canonical strict case.
        let report = exact_information(6, 0.5, |x| x.iter().filter(|b| **b).count() % 2 == 0);
        assert!((report.message_entropy - 1.0).abs() < 1e-9);
        for b in &report.per_bit {
            assert!(b.abs() < 1e-9);
        }
        assert!((report.superadditivity_slack() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn superadditivity_holds_for_arbitrary_functions() {
        // A lossy, asymmetric function: count of ones clamped at 2.
        let report = exact_information(8, 0.25, |x| x.iter().filter(|b| **b).count().min(2) as u8);
        assert!(
            report.superadditivity_slack() > -1e-9,
            "Σ I(X_i;M) must not exceed I(X;M)"
        );
        assert!(report.message_entropy <= 8.0);
    }

    #[test]
    #[should_panic(expected = "limited to 20")]
    fn enumeration_guard() {
        let _ = exact_information(21, 0.5, |_| 0u8);
    }
}
