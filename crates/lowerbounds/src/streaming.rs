//! A one-pass streaming algorithm for the triangle-edge task, and its
//! place in the §4.2.2 reduction.
//!
//! [`TriangleEdgeStream`] keeps a rank-based reservoir of `capacity`
//! edges; when an arriving edge closes a wedge with two reservoir edges,
//! that edge is certified a triangle edge and recorded. Running it over
//! a μ instance split at the three players' block boundaries (via
//! [`triad_comm::streaming::stream_as_one_way`]) turns its space bound
//! into a one-way communication cost — so the paper's `Ω(n^{1/4})`
//! one-way bound is an `Ω(n^{1/4})` space bound for this task, and this
//! algorithm's `O(√n·log n)` space shows the gap from above.

use std::collections::{BinaryHeap, HashMap, HashSet};
use triad_comm::bits::{bits_per_edge, BitCost};
use triad_comm::streaming::StreamAlgorithm;
use triad_comm::SharedRandomness;
use triad_graph::{Edge, VertexId};

/// One-pass triangle-edge detector with bounded memory.
#[derive(Debug, Clone)]
pub struct TriangleEdgeStream {
    shared: SharedRandomness,
    tag: u64,
    capacity: usize,
    /// Reservoir edges as a max-heap by rank (O(log cap) eviction).
    kept: BinaryHeap<(u64, Edge)>,
    /// Membership set mirroring the heap.
    members: HashSet<Edge>,
    /// Adjacency over reservoir edges for O(deg) wedge checks.
    adj: HashMap<VertexId, Vec<VertexId>>,
    answer: Option<Edge>,
}

impl TriangleEdgeStream {
    /// A detector keeping at most `capacity` reservoir edges, ranked by
    /// the public permutation `(shared, tag)`.
    pub fn new(shared: SharedRandomness, tag: u64, capacity: usize) -> Self {
        TriangleEdgeStream {
            shared,
            tag,
            capacity,
            kept: BinaryHeap::new(),
            members: HashSet::new(),
            adj: HashMap::new(),
            answer: None,
        }
    }

    /// The certified triangle edge, if one was found.
    pub fn answer(&self) -> Option<Edge> {
        self.answer
    }

    fn closes_wedge(&self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        match (self.adj.get(&u), self.adj.get(&v)) {
            (Some(nu), Some(nv)) => {
                let (small, large) = if nu.len() <= nv.len() {
                    (nu, nv)
                } else {
                    (nv, nu)
                };
                small.iter().any(|w| large.contains(w))
            }
            _ => false,
        }
    }

    fn insert(&mut self, rank: u64, e: Edge) {
        self.kept.push((rank, e));
        self.members.insert(e);
        self.adj.entry(e.u()).or_default().push(e.v());
        self.adj.entry(e.v()).or_default().push(e.u());
        if self.kept.len() > self.capacity {
            let (_, evicted) = self.kept.pop().expect("non-empty after push");
            self.members.remove(&evicted);
            self.remove_adj(evicted);
        }
    }

    fn remove_adj(&mut self, e: Edge) {
        if let Some(list) = self.adj.get_mut(&e.u()) {
            list.retain(|w| *w != e.v());
        }
        if let Some(list) = self.adj.get_mut(&e.v()) {
            list.retain(|w| *w != e.u());
        }
    }
}

impl StreamAlgorithm for TriangleEdgeStream {
    type Output = Option<Edge>;

    fn process(&mut self, edge: Edge) {
        if self.answer.is_some() {
            return;
        }
        if self.closes_wedge(edge) {
            self.answer = Some(edge);
            return;
        }
        if self.members.contains(&edge) {
            return; // duplicate stream item
        }
        let rank = self.shared.edge_rank(self.tag, edge).0;
        if self.kept.len() < self.capacity {
            self.insert(rank, edge);
        } else if let Some((max_rank, _)) = self.kept.peek() {
            if rank < *max_rank {
                self.insert(rank, edge);
            }
        }
    }

    fn memory_bits(&self, n: usize) -> BitCost {
        let e = bits_per_edge(n);
        let answer = if self.answer.is_some() { e } else { 0 };
        BitCost(self.kept.len() as u64 * e + answer + 1)
    }

    fn output(&self) -> Option<Edge> {
        self.answer
    }
}

/// Result of a two-pass run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoPassResult {
    /// A certified triangle edge, if found.
    pub output: Option<Edge>,
    /// Peak memory over both passes (bits).
    pub peak_memory_bits: u64,
}

/// Two-pass, vertex-sampled wedge detection:
///
/// * **pass 1** tracks, for the `capacity` publicly lowest-ranked
///   non-isolated vertices, their two lowest-ranked incident edges —
///   one candidate wedge per sampled vertex (≤ `2·capacity` edges of
///   memory);
/// * **pass 2** scans the stream for any wedge's closing edge.
///
/// The defining property (which the single-pass reservoir detector
/// lacks): the *success or failure* of the run is a function of the
/// edge **set** alone — the end-of-pass-1 state is the same under any
/// permutation of the stream, because "lowest-ranked vertices" and
/// "lowest-ranked incident edges" are order-free notions. An adversary
/// controlling arrival order gains nothing.
pub fn two_pass_triangle_edge(
    shared: SharedRandomness,
    tag: u64,
    capacity: usize,
    n: usize,
    edges: &[Edge],
) -> TwoPassResult {
    let e_bits = bits_per_edge(n);
    let v_bits = triad_comm::bits::bits_per_vertex(n);
    // Pass 1. Tracked vertices: the `capacity` lowest by public rank
    // among those seen; per vertex the two lowest-ranked incident edges.
    // A lazy max-heap over (rank, vertex) finds the evictee in
    // O(log capacity) amortized (stale entries are skipped on pop).
    let mut tracked: HashMap<VertexId, [Option<(u64, Edge)>; 2]> = HashMap::new();
    let mut rank_heap: BinaryHeap<((u64, u32), VertexId)> = BinaryHeap::new();
    let mut peak_items = 0usize;
    for e in edges {
        for x in [e.u(), e.v()] {
            // Insert x if it can belong to the lowest-`capacity` set.
            if !tracked.contains_key(&x) {
                if tracked.len() < capacity {
                    tracked.insert(x, [None, None]);
                    rank_heap.push((shared.vertex_rank(tag, x), x));
                } else {
                    // Pop stale heap entries until the top is tracked.
                    let worst = loop {
                        let top = rank_heap.peek().expect("heap mirrors tracked").1;
                        if tracked.contains_key(&top) {
                            break top;
                        }
                        rank_heap.pop();
                    };
                    if shared.vertex_rank(tag, x) < shared.vertex_rank(tag, worst) {
                        tracked.remove(&worst);
                        rank_heap.pop();
                        tracked.insert(x, [None, None]);
                        rank_heap.push((shared.vertex_rank(tag, x), x));
                    }
                }
            }
            if let Some(slots) = tracked.get_mut(&x) {
                let rank = shared.edge_rank(tag ^ 0x57ED, *e).0;
                // Keep the two lowest-ranked incident edges.
                match slots {
                    [None, _] => slots[0] = Some((rank, *e)),
                    [Some(a), None] if a.1 != *e => slots[1] = Some((rank, *e)),
                    [Some(a), Some(b)] if a.1 != *e && b.1 != *e => {
                        // Replace the larger if the newcomer is smaller.
                        let (hi_idx, hi) = if a.0 >= b.0 {
                            (0usize, a.0)
                        } else {
                            (1usize, b.0)
                        };
                        if rank < hi {
                            slots[hi_idx] = Some((rank, *e));
                        }
                    }
                    _ => {}
                }
            }
        }
        peak_items = peak_items.max(tracked.len());
    }
    // NOTE: a vertex inserted late misses edges that arrived before its
    // insertion — but insertion only ever happens on the vertex's FIRST
    // incident edge or not at all (rank comparisons are order-free), so
    // the final tracked set and each vertex's candidate edges depend
    // only on the edge set.
    let mut closings: HashMap<Edge, ()> = HashMap::new();
    for (v, slots) in &tracked {
        if let [Some((_, a)), Some((_, b))] = slots {
            let x = a.other(*v).expect("incident");
            let y = b.other(*v).expect("incident");
            if x != y {
                closings.insert(Edge::new(x, y), ());
            }
        }
    }
    let memory_bits =
        peak_items as u64 * (v_bits + 2 * e_bits) + closings.len() as u64 * e_bits + 1;
    // Pass 2: scan for a closing edge.
    let output = edges.iter().copied().find(|e| closings.contains_key(e));
    TwoPassResult {
        output,
        peak_memory_bits: memory_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangle_edge::{verify, TaskAttempt, TaskVerdict};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_comm::streaming::{run_stream, stream_as_one_way};
    use triad_graph::generators::TripartiteMu;
    use triad_graph::Graph;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn certifies_only_real_triangle_edges() {
        let mu = TripartiteMu::new(64, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for trial in 0..10u64 {
            let inst = mu.sample(&mut rng);
            let alg = TriangleEdgeStream::new(SharedRandomness::new(trial), 1, 128);
            let run = run_stream(alg, 192, inst.graph().edges().iter().copied());
            let attempt = TaskAttempt {
                output: run.output,
                stats: triad_comm::CommStats::default(),
            };
            assert_ne!(
                verify(inst.graph(), &attempt),
                TaskVerdict::WrongEdge,
                "a certified wedge closure is always a triangle edge"
            );
        }
    }

    #[test]
    fn finds_triangle_with_enough_memory() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2)]);
        let alg = TriangleEdgeStream::new(SharedRandomness::new(1), 1, 10);
        let run = run_stream(alg, 4, g.edges().iter().copied());
        let found = run.output.expect("full memory must catch the triangle");
        assert!(g.has_edge(found));
    }

    #[test]
    fn memory_stays_within_capacity() {
        let edges: Vec<Edge> = (0..100).map(|i| e(i, i + 100)).collect();
        let alg = TriangleEdgeStream::new(SharedRandomness::new(2), 1, 8);
        let run = run_stream(alg, 200, edges);
        // 8 edges × 16 bits (200 vertices ⇒ 8-bit ids) + flag bit.
        assert!(run.peak_memory_bits <= 8 * 16 + 16 + 1);
        assert!(run.output.is_none(), "matching has no triangles");
    }

    #[test]
    fn success_grows_with_memory() {
        let mu = TripartiteMu::new(96, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut rates = Vec::new();
        for capacity in [4usize, 4096] {
            let mut hits = 0;
            for trial in 0..15u64 {
                let inst = mu.sample(&mut rng);
                let alg = TriangleEdgeStream::new(SharedRandomness::new(trial), 1, capacity);
                let run = run_stream(alg, 288, inst.graph().edges().iter().copied());
                if run.output.is_some() {
                    hits += 1;
                }
            }
            rates.push(hits);
        }
        assert!(rates[1] > rates[0], "more memory must help: {rates:?}");
        assert!(
            rates[1] >= 12,
            "near-unbounded memory should almost always win"
        );
    }

    #[test]
    fn two_pass_output_is_always_a_triangle_edge() {
        let mu = TripartiteMu::new(64, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for t in 0..8u64 {
            let inst = mu.sample(&mut rng);
            let res =
                two_pass_triangle_edge(SharedRandomness::new(t), 1, 96, 192, inst.graph().edges());
            if let Some(e) = res.output {
                assert!(triad_graph::triangles::is_triangle_edge(inst.graph(), e));
            }
            assert!(res.peak_memory_bits > 0);
        }
    }

    #[test]
    fn two_pass_success_is_order_invariant_single_pass_is_not() {
        use rand::seq::SliceRandom;
        let mu = TripartiteMu::new(96, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let mut single_varies = false;
        let capacity = 48;
        for t in 0..12u64 {
            let inst = mu.sample(&mut rng);
            let mut stream: Vec<Edge> = inst.graph().edges().to_vec();
            let shared = SharedRandomness::new(t);
            let mut two_pass_verdicts = std::collections::HashSet::new();
            let mut single_verdicts = std::collections::HashSet::new();
            for perm in 0..4 {
                if perm > 0 {
                    stream.shuffle(&mut rng);
                }
                let two = two_pass_triangle_edge(shared, 1, capacity, 288, &stream);
                two_pass_verdicts.insert(two.output.is_some());
                let alg = TriangleEdgeStream::new(shared, 1, capacity);
                let single = run_stream(alg, 288, stream.iter().copied());
                single_verdicts.insert(single.output.is_some());
            }
            assert_eq!(
                two_pass_verdicts.len(),
                1,
                "two-pass success must not depend on stream order"
            );
            if single_verdicts.len() > 1 {
                single_varies = true;
            }
        }
        assert!(
            single_varies,
            "the single-pass detector's verdict should vary with order on some instance \
             (otherwise this test is vacuous)"
        );
    }

    #[test]
    fn two_pass_succeeds_with_enough_tracked_vertices() {
        let mu = TripartiteMu::new(64, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut hits = 0;
        let trials = 10u64;
        for t in 0..trials {
            let inst = mu.sample(&mut rng);
            // Track every vertex: each vertex's two lowest-ranked incident
            // edges form a random wedge; with ~γ²·√n closing probability
            // per vertex and 3n vertices, success is near-certain.
            let res =
                two_pass_triangle_edge(SharedRandomness::new(t), 1, 192, 192, inst.graph().edges());
            if res.output.is_some() {
                hits += 1;
            }
        }
        assert!(
            hits >= 8,
            "full tracking should usually succeed ({hits}/{trials})"
        );
    }

    #[test]
    fn reduction_to_one_way_charges_boundaries() {
        let mu = TripartiteMu::new(64, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = mu.sample(&mut rng);
        let shares = inst.player_inputs().to_vec();
        let capacity = 64;
        let alg = TriangleEdgeStream::new(SharedRandomness::new(5), 1, capacity);
        let run = stream_as_one_way(alg, 192, &shares);
        assert_eq!(run.boundary_bits.len(), 2);
        let cap_bits = capacity as u64 * bits_per_edge(192) + bits_per_edge(192) + 1;
        for b in &run.boundary_bits {
            assert!(
                *b <= cap_bits,
                "boundary snapshot {b} exceeds memory cap {cap_bits}"
            );
        }
        if let Some(found) = run.output {
            assert!(triad_graph::triangles::is_triangle_edge(
                inst.graph(),
                found
            ));
        }
    }
}
