//! The symmetrization lift of §4.3 (Theorem 4.15), executable.
//!
//! Given any k-player **simultaneous** protocol Π and a symmetric
//! 3-player input distribution, build the 3-player **one-way** protocol
//! Π′: Alice and Bob impersonate two random players `i ≠ j` (neither is
//! player `k−1`), Charlie impersonates everyone else *and* the referee.
//! Alice and Bob forward exactly the messages players `i`, `j` would send
//! under Π, so `CC(Π′) = |Π_i| + |Π_j|`, whose expectation over the
//! random choice of `(i, j)` is `(2/k)·CC(Π)` — a k-player simultaneous
//! lower bound follows from a 3-player one-way lower bound.

use rand::Rng;
use triad_comm::{PlayerState, SharedRandomness, SimMessage, SimultaneousProtocol};
use triad_graph::Edge;

/// The outcome of one symmetrized execution.
#[derive(Debug, Clone)]
pub struct SymmetrizedRun<O> {
    /// The simulated referee's output.
    pub output: O,
    /// Bits Alice and Bob actually sent (`|Π_i| + |Π_j|`).
    pub one_way_bits: u64,
    /// Total bits of the underlying k-player execution (`CC(Π)` sample).
    pub k_player_bits: u64,
    /// The impersonated players `(i, j)`.
    pub roles: (usize, usize),
}

/// Runs the lift once: embeds the 3-player input `(x1, x2, x3)` into `k`
/// players (random `i` gets `x1`, random `j` gets `x2`, everyone else
/// gets a copy of `x3`), executes Π, and accounts Alice's and Bob's
/// shares of the cost.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn symmetrize_once<P, R>(
    protocol: &P,
    n: usize,
    x: &[Vec<Edge>; 3],
    k: usize,
    shared: SharedRandomness,
    rng: &mut R,
) -> SymmetrizedRun<P::Output>
where
    P: SimultaneousProtocol,
    R: Rng + ?Sized,
{
    assert!(k >= 3, "symmetrization needs k >= 3");
    // Two distinct impersonated players, neither of which is player k−1
    // (the paper's convention keeps the last player on X3).
    let i = rng.gen_range(0..k - 1);
    let j = loop {
        let j = rng.gen_range(0..k - 1);
        if j != i {
            break j;
        }
    };
    // Build every impersonated player first: messages may borrow from
    // their states, so the states must outlive the referee call.
    let states: Vec<PlayerState> = (0..k)
        .map(|player_id| {
            let share = if player_id == i {
                &x[0]
            } else if player_id == j {
                &x[1]
            } else {
                &x[2]
            };
            PlayerState::new(player_id, n, share)
        })
        .collect();
    let mut messages: Vec<SimMessage> = Vec::with_capacity(k);
    let mut one_way_bits = 0u64;
    let mut total = 0u64;
    for state in &states {
        let msg = protocol.message(state, &shared);
        let bits = msg.bit_len(n).get();
        total += bits;
        if state.id() == i || state.id() == j {
            one_way_bits += bits;
        }
        messages.push(msg);
    }
    let output = protocol.referee(n, &messages, &shared);
    SymmetrizedRun {
        output,
        one_way_bits,
        k_player_bits: total,
        roles: (i, j),
    }
}

/// Averages the lift's cost accounting over `trials` role draws,
/// returning `(mean one-way bits, mean k-player bits)`. Under a
/// symmetric input the ratio approaches `2/k` — Theorem 4.15's factor.
pub fn mean_cost_ratio<P, R>(
    protocol: &P,
    n: usize,
    x: &[Vec<Edge>; 3],
    k: usize,
    shared: SharedRandomness,
    trials: usize,
    rng: &mut R,
) -> (f64, f64)
where
    P: SimultaneousProtocol,
    R: Rng + ?Sized,
{
    let mut ow = 0u64;
    let mut kp = 0u64;
    for _ in 0..trials {
        let run = symmetrize_once(protocol, n, x, k, shared, rng);
        ow += run.one_way_bits;
        kp += run.k_player_bits;
    }
    (
        ow as f64 / trials.max(1) as f64,
        kp as f64 / trials.max(1) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::VertexId;
    use triad_protocols::baseline::SendEverything;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    fn inputs() -> [Vec<Edge>; 3] {
        [
            vec![e(0, 1), e(0, 2)],          // X1
            vec![e(1, 2)],                   // X2
            vec![e(3, 4), e(4, 5), e(3, 5)], // X3 (its own triangle)
        ]
    }

    #[test]
    fn lift_preserves_referee_output() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let run = symmetrize_once(
            &SendEverything::default(),
            6,
            &inputs(),
            5,
            SharedRandomness::new(2),
            &mut rng,
        );
        // With full inputs embedded, the union contains both triangles.
        assert!(run.output.is_some());
        let (i, j) = run.roles;
        assert!(i != j && i < 4 && j < 4, "roles avoid player k-1");
    }

    #[test]
    fn cost_ratio_approaches_two_over_k() {
        // For SendEverything the per-player message size is input-sized;
        // under the theorem's symmetric-marginal accounting we check the
        // realized ratio sits in the right ballpark for a symmetric-ish
        // input (all three inputs the same size).
        let x = [
            vec![e(0, 1), e(1, 2)],
            vec![e(2, 3), e(3, 4)],
            vec![e(4, 5), e(0, 5)],
        ];
        let k = 6;
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let (ow, kp) = mean_cost_ratio(
            &SendEverything::default(),
            6,
            &x,
            k,
            SharedRandomness::new(4),
            50,
            &mut rng,
        );
        let ratio = ow / kp;
        assert!(
            (ratio - 2.0 / k as f64).abs() < 0.02,
            "ratio {ratio} should approach 2/k = {}",
            2.0 / k as f64
        );
    }

    #[test]
    #[should_panic(expected = "k >= 3")]
    fn rejects_small_k() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = symmetrize_once(
            &SendEverything::default(),
            6,
            &inputs(),
            2,
            SharedRandomness::new(0),
            &mut rng,
        );
    }
}
