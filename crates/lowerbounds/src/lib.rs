//! # triad-lowerbounds
//!
//! Executable artifacts for §4 of *"On the Multiparty Communication
//! Complexity of Testing Triangle-Freeness"* (PODC 2017).
//!
//! Lower bounds cannot be "run", but everything they are built from can:
//!
//! * [`mu`] — the hard tripartite distribution μ and empirical
//!   verification of Lemma 4.5 (a sample is Ω(1)-far w.p. ≥ 1/2),
//! * [`triangle_edge`] — the triangle-edge-finding task `T^ε_{n,d}` and
//!   its verifier,
//! * [`adversary`] — concrete budget-limited protocols for the task whose
//!   success collapses below a budget threshold; sweeping budgets gives
//!   empirical curves to set against the Ω((nd)^{1/3}) / Ω((nd)^{1/6})
//!   bounds,
//! * [`symmetrization`] — the §4.3 lift from k-player simultaneous
//!   protocols to 3-player one-way protocols, executable and
//!   cost-accounted (Theorem 4.15's `2/k` factor),
//! * [`bhm`] — the §4.4 Boolean-Matching reduction and a one-way sketch
//!   protocol exhibiting the `Θ(√n)` threshold for `d = Θ(1)`,
//! * [`embedding`] — Lemma 4.17's degree embedding applied to μ,
//! * [`info`] — the information-theory toolkit (entropy, KL divergence,
//!   Lemma 4.3's Bernoulli bound, exact transcript-information accounting
//!   for small protocols, superadditivity checks).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod bhm;
pub mod embedding;
pub mod info;
pub mod mu;
pub mod streaming;
pub mod symmetrization;
pub mod triangle_edge;
