//! The triangle-edge-finding task `T^ε_{n,d}` (Theorem 4.1).
//!
//! Players must output an edge of the input graph that participates in a
//! triangle. This is weaker than finding a whole triangle — which is why
//! hardness of this task is *evidence* for hardness of testing — and the
//! paper proves it requires `Ω(k·(nd)^{1/6})` bits simultaneously and
//! `Ω((nd)^{1/3})` for three players.

use triad_comm::CommStats;
use triad_graph::{triangles, Edge, Graph};

/// One attempt at the task: the protocol's output edge plus its cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskAttempt {
    /// The edge the protocol output, if any.
    pub output: Option<Edge>,
    /// Communication spent.
    pub stats: CommStats,
}

/// Verdict of the verifier on one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskVerdict {
    /// The output edge exists and lies in a triangle — success.
    Correct,
    /// An edge was output but it is not a triangle edge (or not an edge).
    WrongEdge,
    /// The protocol declined to answer.
    NoOutput,
}

/// Checks an attempt against the ground-truth graph.
pub fn verify(g: &Graph, attempt: &TaskAttempt) -> TaskVerdict {
    match attempt.output {
        None => TaskVerdict::NoOutput,
        Some(e) => {
            if triangles::is_triangle_edge(g, e) {
                TaskVerdict::Correct
            } else {
                TaskVerdict::WrongEdge
            }
        }
    }
}

/// Success-rate summary of a budget sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// The per-player budget, in edges.
    pub budget_edges: usize,
    /// Mean bits actually spent.
    pub mean_bits: f64,
    /// Fraction of trials verified [`TaskVerdict::Correct`].
    pub success_rate: f64,
    /// Fraction of trials that output a wrong edge.
    pub error_rate: f64,
}

/// Aggregates verdicts into a sweep point.
pub fn summarize(budget_edges: usize, results: &[(TaskVerdict, u64)]) -> SweepPoint {
    let n = results.len().max(1) as f64;
    let ok = results
        .iter()
        .filter(|(v, _)| *v == TaskVerdict::Correct)
        .count() as f64;
    let bad = results
        .iter()
        .filter(|(v, _)| *v == TaskVerdict::WrongEdge)
        .count() as f64;
    let bits: u64 = results.iter().map(|(_, b)| *b).sum();
    SweepPoint {
        budget_edges,
        mean_bits: bits as f64 / n,
        success_rate: ok / n,
        error_rate: bad / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use triad_graph::VertexId;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn verifier_distinguishes_cases() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        let stats = CommStats::default();
        assert_eq!(
            verify(
                &g,
                &TaskAttempt {
                    output: Some(e(0, 1)),
                    stats
                }
            ),
            TaskVerdict::Correct
        );
        assert_eq!(
            verify(
                &g,
                &TaskAttempt {
                    output: Some(e(2, 3)),
                    stats
                }
            ),
            TaskVerdict::WrongEdge
        );
        assert_eq!(
            verify(
                &g,
                &TaskAttempt {
                    output: Some(e(0, 3)),
                    stats
                }
            ),
            TaskVerdict::WrongEdge
        );
        assert_eq!(
            verify(
                &g,
                &TaskAttempt {
                    output: None,
                    stats
                }
            ),
            TaskVerdict::NoOutput
        );
    }

    #[test]
    fn summary_rates() {
        let rs = vec![
            (TaskVerdict::Correct, 100),
            (TaskVerdict::Correct, 120),
            (TaskVerdict::WrongEdge, 80),
            (TaskVerdict::NoOutput, 60),
        ];
        let p = summarize(32, &rs);
        assert_eq!(p.budget_edges, 32);
        assert!((p.success_rate - 0.5).abs() < 1e-12);
        assert!((p.error_rate - 0.25).abs() < 1e-12);
        assert!((p.mean_bits - 90.0).abs() < 1e-12);
    }
}
