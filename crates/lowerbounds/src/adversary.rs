//! Budget-limited protocols for the triangle-edge task on μ.
//!
//! A lower bound cannot be executed, but its *prediction* can be probed:
//! any concrete protocol family, swept over a communication budget, must
//! show its success probability collapse before the budget falls below
//! the bound. This module implements three natural families on the μ
//! distribution:
//!
//! * [`uniform_sketch_attempt`] — simultaneous, each player posts a
//!   uniform random subset of its edges (the naive sketch; threshold
//!   `Θ(n log n)` bits),
//! * [`targeted_sketch_attempt`] — simultaneous, Alice and Bob
//!   concentrate their budgets on a public random prefix of `U`, which
//!   correlates their samples and buys a polynomial improvement,
//! * [`one_way_vee_attempt`] — the one-way model of §4.2.2: Alice sketches
//!   to Bob, Bob (who sees his whole input) forwards *covered pairs* to
//!   Charlie, Charlie answers from his input. Threshold `Θ(√n · log n)`
//!   bits, a full quadratic above the `Ω(n^{1/4})` bound.
//!
//! All three respect the bounds; the gaps between the measured thresholds
//! and the proven floors quantify how much room the paper's open
//! questions leave.

use crate::triangle_edge::{summarize, SweepPoint, TaskAttempt};
use rand::Rng;
use std::collections::HashSet;
use triad_comm::bits::bits_per_edge;
use triad_comm::{CommStats, SharedRandomness};
use triad_graph::generators::{MuInstance, TripartiteMu};
use triad_graph::{triangles, Edge, GraphBuilder, VertexId};

fn sketch_of(edges: &[Edge], budget: usize, shared: &SharedRandomness, tag: u64) -> Vec<Edge> {
    if edges.len() <= budget {
        return edges.to_vec();
    }
    // Take the `budget` lowest-ranked edges under a public permutation —
    // a uniform random subset.
    let mut ranked: Vec<(u64, &Edge)> = edges
        .iter()
        .map(|e| (shared.edge_rank(tag, *e).0, e))
        .collect();
    ranked.sort_unstable_by_key(|(r, _)| *r);
    ranked.into_iter().take(budget).map(|(_, e)| *e).collect()
}

fn edge_bits(inst: &MuInstance, count: usize) -> u64 {
    count as u64 * bits_per_edge(3 * inst.part_size())
}

/// Simultaneous uniform sketch: every player posts `budget_edges` uniform
/// random edges; the referee outputs a `V₁×V₂` edge of any fully-sampled
/// triangle.
pub fn uniform_sketch_attempt(inst: &MuInstance, budget_edges: usize, seed: u64) -> TaskAttempt {
    let shared = SharedRandomness::new(seed);
    let shares = inst.player_inputs();
    let mut sent = 0usize;
    let mut max_sent = 0usize;
    let mut b = GraphBuilder::new(3 * inst.part_size());
    for (j, share) in shares.iter().enumerate() {
        let sketch = sketch_of(share, budget_edges, &shared, 100 + j as u64);
        sent += sketch.len();
        max_sent = max_sent.max(sketch.len());
        b.extend_edges(sketch.iter().copied());
    }
    let union = b.build();
    let output = triangles::find_triangle(&union).and_then(|t| {
        t.edges().into_iter().find(|e| {
            inst.part_of(e.u()) != triad_graph::generators::tripartite::Part::U
                && inst.part_of(e.v()) != triad_graph::generators::tripartite::Part::U
        })
    });
    TaskAttempt {
        output,
        stats: CommStats {
            total_bits: edge_bits(inst, sent),
            rounds: 1,
            messages: 3,
            max_player_sent_bits: edge_bits(inst, max_sent),
        },
    }
}

/// Simultaneous targeted sketch: Alice and Bob spend their budgets on
/// edges incident to the publicly lowest-ranked vertices of `U`; Charlie
/// posts a uniform sketch. Correlating Alice's and Bob's samples at the
/// same `u` multiplies the vee yield.
pub fn targeted_sketch_attempt(inst: &MuInstance, budget_edges: usize, seed: u64) -> TaskAttempt {
    let shared = SharedRandomness::new(seed);
    let n = inst.part_size();
    const U_PERM: u64 = 7;
    let mut u_order: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
    u_order.sort_unstable_by_key(|v| shared.vertex_rank(U_PERM, *v));
    let u_rank: std::collections::HashMap<VertexId, usize> =
        u_order.iter().enumerate().map(|(i, v)| (*v, i)).collect();
    let prefix_sketch = |edges: &[Edge]| -> Vec<Edge> {
        // Edges sorted by their U endpoint's public rank; take a budget's
        // worth, so the kept edges concentrate on a shared U prefix.
        let mut owned: Vec<Edge> = edges.to_vec();
        owned.sort_unstable_by_key(|e| {
            let u_end = if inst.part_of(e.u()) == triad_graph::generators::tripartite::Part::U {
                e.u()
            } else {
                e.v()
            };
            u_rank[&u_end]
        });
        owned.truncate(budget_edges);
        owned
    };
    let alice = prefix_sketch(inst.alice_edges());
    let bob = prefix_sketch(inst.bob_edges());
    let charlie = sketch_of(inst.charlie_edges(), budget_edges, &shared, 300);
    let sent = alice.len() + bob.len() + charlie.len();
    let max_sent = alice.len().max(bob.len()).max(charlie.len());
    let mut b = GraphBuilder::new(3 * n);
    b.extend_edges(alice);
    b.extend_edges(bob);
    b.extend_edges(charlie);
    let union = b.build();
    let output = triangles::find_triangle(&union).and_then(|t| {
        t.edges().into_iter().find(|e| {
            inst.part_of(e.u()) != triad_graph::generators::tripartite::Part::U
                && inst.part_of(e.v()) != triad_graph::generators::tripartite::Part::U
        })
    });
    TaskAttempt {
        output,
        stats: CommStats {
            total_bits: edge_bits(inst, sent),
            rounds: 1,
            messages: 3,
            max_player_sent_bits: edge_bits(inst, max_sent),
        },
    }
}

/// One-way vee hunter (the §4.2.2 model): Alice sketches `budget_edges`
/// of her edges to Bob; Bob, using his *entire* input, lists up to
/// `budget_edges` covered `V₁×V₂` pairs for Charlie; Charlie outputs the
/// first covered pair present in his input.
pub fn one_way_vee_attempt(inst: &MuInstance, budget_edges: usize, seed: u64) -> TaskAttempt {
    let shared = SharedRandomness::new(seed);
    let alice_sketch = sketch_of(inst.alice_edges(), budget_edges, &shared, 400);
    // Bob joins Alice's (u, v1) edges with his own (u, v2) edges.
    let mut bob_by_u: std::collections::HashMap<VertexId, Vec<VertexId>> =
        std::collections::HashMap::new();
    for e in inst.bob_edges() {
        let (u, v2) = if inst.part_of(e.u()) == triad_graph::generators::tripartite::Part::U {
            (e.u(), e.v())
        } else {
            (e.v(), e.u())
        };
        bob_by_u.entry(u).or_default().push(v2);
    }
    let mut covered: Vec<Edge> = Vec::new();
    let mut seen = HashSet::new();
    'outer: for e in &alice_sketch {
        let (u, v1) = if inst.part_of(e.u()) == triad_graph::generators::tripartite::Part::U {
            (e.u(), e.v())
        } else {
            (e.v(), e.u())
        };
        if let Some(v2s) = bob_by_u.get(&u) {
            for v2 in v2s {
                let pair = Edge::new(v1, *v2);
                if seen.insert(pair) {
                    covered.push(pair);
                    if covered.len() >= budget_edges {
                        break 'outer;
                    }
                }
            }
        }
    }
    let charlie: HashSet<Edge> = inst.charlie_edges().iter().copied().collect();
    let output = covered.iter().copied().find(|pair| charlie.contains(pair));
    let bits =
        edge_bits(inst, alice_sketch.len() + covered.len()) + bits_per_edge(3 * inst.part_size());
    TaskAttempt {
        output,
        stats: CommStats {
            total_bits: bits,
            rounds: 2,
            messages: 3,
            max_player_sent_bits: edge_bits(inst, alice_sketch.len().max(covered.len())),
        },
    }
}

/// Sweeps a protocol family over per-player budgets, measuring success
/// against fresh μ samples.
pub fn sweep<R, F>(
    mu: &TripartiteMu,
    budgets: &[usize],
    trials: usize,
    rng: &mut R,
    attempt: F,
) -> Vec<SweepPoint>
where
    R: Rng + ?Sized,
    F: Fn(&MuInstance, usize, u64) -> TaskAttempt,
{
    budgets
        .iter()
        .map(|&budget| {
            let mut results = Vec::with_capacity(trials);
            for t in 0..trials {
                let inst = mu.sample(rng);
                let a = attempt(&inst, budget, 1000 * budget as u64 + t as u64);
                let verdict = crate::triangle_edge::verify(inst.graph(), &a);
                results.push((verdict, a.stats.total_bits));
            }
            summarize(budget, &results)
        })
        .collect()
}

/// First budget in an ascending sweep whose success rate reaches `target`.
pub fn threshold_budget(points: &[SweepPoint], target: f64) -> Option<usize> {
    points
        .iter()
        .find(|p| p.success_rate >= target)
        .map(|p| p.budget_edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangle_edge::TaskVerdict;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mu() -> TripartiteMu {
        TripartiteMu::new(48, 1.2)
    }

    #[test]
    fn outputs_are_never_wrong() {
        // One-sidedness of all three families: any output edge is a real
        // triangle edge (the referee only outputs fully witnessed edges —
        // for the one-way hunter, a covered pair in Charlie's input *is*
        // a triangle edge by construction).
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..10 {
            let inst = mu().sample(&mut rng);
            for attempt in [
                uniform_sketch_attempt(&inst, 64, 1),
                targeted_sketch_attempt(&inst, 64, 2),
                one_way_vee_attempt(&inst, 64, 3),
            ] {
                let v = crate::triangle_edge::verify(inst.graph(), &attempt);
                assert_ne!(v, TaskVerdict::WrongEdge, "one-sidedness violated");
            }
        }
    }

    #[test]
    fn unlimited_budget_succeeds_on_far_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut successes = 0;
        let trials = 10;
        for _ in 0..trials {
            let inst = mu().sample(&mut rng);
            if !triad_graph::triangles::contains_triangle(inst.graph()) {
                successes += 1; // vacuously fine: nothing to find
                continue;
            }
            let a = uniform_sketch_attempt(&inst, usize::MAX >> 1, 9);
            if crate::triangle_edge::verify(inst.graph(), &a) == TaskVerdict::Correct {
                successes += 1;
            }
        }
        assert_eq!(
            successes, trials,
            "full input must always find a triangle edge"
        );
    }

    #[test]
    fn success_collapses_with_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let points = sweep(&mu(), &[2, 1 << 14], 12, &mut rng, uniform_sketch_attempt);
        assert!(points[0].success_rate < points[1].success_rate);
        assert!(
            points[0].success_rate < 0.3,
            "2-edge sketches should almost never witness a triangle: {}",
            points[0].success_rate
        );
        assert!(points[1].success_rate > 0.7, "huge budget should succeed");
    }

    #[test]
    fn one_way_beats_uniform_at_equal_budget() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let budget = 48; // ≈ √n·γ region for n = 48
        let uni = sweep(&mu(), &[budget], 30, &mut rng, uniform_sketch_attempt);
        let ow = sweep(&mu(), &[budget], 30, &mut rng, one_way_vee_attempt);
        assert!(
            ow[0].success_rate >= uni[0].success_rate,
            "interaction should help: one-way {} vs uniform {}",
            ow[0].success_rate,
            uni[0].success_rate
        );
    }

    #[test]
    fn threshold_extraction() {
        let pts = vec![
            SweepPoint {
                budget_edges: 1,
                mean_bits: 10.0,
                success_rate: 0.1,
                error_rate: 0.0,
            },
            SweepPoint {
                budget_edges: 2,
                mean_bits: 20.0,
                success_rate: 0.6,
                error_rate: 0.0,
            },
            SweepPoint {
                budget_edges: 4,
                mean_bits: 40.0,
                success_rate: 0.9,
                error_rate: 0.0,
            },
        ];
        assert_eq!(threshold_budget(&pts, 0.5), Some(2));
        assert_eq!(threshold_budget(&pts, 0.95), None);
    }
}
