//! The communication side of the §4.4 Boolean-Matching reduction
//! (Theorem 4.16): constant-degree triangle testing needs `Ω(√n)` bits
//! one-way.
//!
//! The graph construction lives in
//! [`triad_graph::generators::bhm`]; this module supplies the matching
//! communication experiment: the natural one-way *index sketch* protocol
//! for `BM_n`, whose success threshold sits at `Θ(√n)` revealed indices —
//! the birthday-paradox witness that the bound is tight for this family.

use rand::Rng;
use triad_comm::bits::{bits_for_count, bits_per_vertex};
use triad_graph::generators::{BmInstance, BmSide};

/// Bob's verdict on one sketch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmGuess {
    /// Bob resolved some matched pair and read the answer off it.
    Informed(BmSide),
    /// No pair was fully revealed; Bob must guess blind.
    Blind,
}

/// One run of the index-sketch protocol.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BmAttempt {
    /// Bob's verdict.
    pub guess: BmGuess,
    /// Bits Alice sent (`budget` × (index + bit)).
    pub bits: u64,
}

/// Alice reveals `budget` uniformly random coordinates of `x` (index +
/// value); Bob scans his matching for a pair with both endpoints
/// revealed and, if found, reads `(Mx ⊕ w)_j` off it — which determines
/// the promise side exactly.
pub fn index_sketch_attempt<R: Rng + ?Sized>(
    inst: &BmInstance,
    budget: usize,
    rng: &mut R,
) -> BmAttempt {
    let len = inst.x().len();
    let budget = budget.min(len);
    let mut revealed = vec![false; len];
    // Uniform subset of `budget` indices (partial Fisher–Yates).
    let mut idx: Vec<usize> = (0..len).collect();
    for t in 0..budget {
        let swap = rng.gen_range(t..len);
        idx.swap(t, swap);
        revealed[idx[t]] = true;
    }
    let bits = budget as u64 * (bits_per_vertex(len) + 1);
    for (j, &(a, b)) in inst.matching().iter().enumerate() {
        if revealed[a] && revealed[b] {
            let bit = inst.x()[a] ^ inst.x()[b] ^ inst.w()[j];
            let side = if bit { BmSide::AllOne } else { BmSide::AllZero };
            return BmAttempt {
                guess: BmGuess::Informed(side),
                bits,
            };
        }
    }
    BmAttempt {
        guess: BmGuess::Blind,
        bits,
    }
}

/// A point in the budget sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BmSweepPoint {
    /// Revealed coordinates per trial.
    pub budget: usize,
    /// Mean bits sent.
    pub mean_bits: f64,
    /// Fraction of trials where Bob was informed (exact answer).
    pub informed_rate: f64,
    /// Overall success probability (informed ⇒ correct; blind ⇒ 1/2).
    pub success_rate: f64,
}

/// Sweeps the index-sketch protocol over budgets, fresh instance per
/// trial (alternating promise sides).
pub fn sweep<R: Rng + ?Sized>(
    n_pairs: usize,
    budgets: &[usize],
    trials: usize,
    rng: &mut R,
) -> Vec<BmSweepPoint> {
    budgets
        .iter()
        .map(|&budget| {
            let mut informed = 0usize;
            let mut correct = 0.0f64;
            let mut bits = 0u64;
            for t in 0..trials {
                let side = if t % 2 == 0 {
                    BmSide::AllZero
                } else {
                    BmSide::AllOne
                };
                let inst = BmInstance::sample(n_pairs, side, rng);
                let attempt = index_sketch_attempt(&inst, budget, rng);
                bits += attempt.bits;
                match attempt.guess {
                    BmGuess::Informed(answer) => {
                        informed += 1;
                        assert_eq!(answer, side, "informed answers are exact");
                        correct += 1.0;
                    }
                    BmGuess::Blind => correct += 0.5,
                }
            }
            BmSweepPoint {
                budget,
                mean_bits: bits as f64 / trials.max(1) as f64,
                informed_rate: informed as f64 / trials.max(1) as f64,
                success_rate: correct / trials.max(1) as f64,
            }
        })
        .collect()
}

/// Theorem 4.16 executed in the *reduction direction*: solve `BM_n` by
/// building the reduction graph and running a triangle-freeness tester
/// on it with Alice and Bob as the two players. `AllZero` instances are
/// 1-far (n disjoint triangles) so the tester finds a witness w.h.p.;
/// `AllOne` instances are triangle-free so it never does — hence any
/// tester cheaper than the `Ω(√n)` BM bound would contradict it.
///
/// Returns the guessed side and the tester's communication bill.
pub fn solve_bm_via_triangle_tester(
    inst: &BmInstance,
    seed: u64,
) -> (BmSide, triad_comm::CommStats) {
    use triad_graph::partition::Partition;
    use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};
    let g = inst.reduction_graph();
    let parts = Partition::new(vec![inst.alice_edges(), inst.bob_edges()]);
    // Constant average degree (< 2); the low-degree tester applies.
    let tester = SimultaneousTester::new(
        Tuning::practical(0.5),
        SimProtocolKind::Low {
            avg_degree: g.average_degree().max(1.0),
        },
    );
    let run = tester
        .run(&g, &parts, seed)
        .expect("reduction inputs are valid");
    let side = if run.outcome.found_triangle() {
        BmSide::AllZero
    } else {
        BmSide::AllOne
    };
    (side, run.stats)
}

/// The theoretical informed-rate at budget `s` over `n` pairs:
/// `1 − (1 − (s/2n)²)ⁿ ≈ 1 − e^{−s²/4n}` — the birthday-paradox curve
/// whose knee sits at `s = Θ(√n)`.
pub fn predicted_informed_rate(n_pairs: usize, budget: usize) -> f64 {
    let p_pair = (budget as f64 / (2.0 * n_pairs as f64)).min(1.0).powi(2);
    1.0 - (1.0 - p_pair).powi(n_pairs as i32)
}

/// Bit cost of revealing `budget` coordinates at `n` pairs.
pub fn budget_bits(n_pairs: usize, budget: usize) -> u64 {
    budget as u64 * (bits_per_vertex(2 * n_pairs) + 1) + bits_for_count(budget as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn full_reveal_is_always_informed() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let inst = BmInstance::sample(16, BmSide::AllZero, &mut rng);
        let a = index_sketch_attempt(&inst, 32, &mut rng);
        assert_eq!(a.guess, BmGuess::Informed(BmSide::AllZero));
    }

    #[test]
    fn zero_budget_is_blind() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let inst = BmInstance::sample(16, BmSide::AllOne, &mut rng);
        let a = index_sketch_attempt(&inst, 0, &mut rng);
        assert_eq!(a.guess, BmGuess::Blind);
        assert_eq!(a.bits, 0);
    }

    #[test]
    fn success_tracks_birthday_threshold() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 256;
        // Budgets well below and well above 2√n = 32.
        let pts = sweep(n, &[4, 128], 60, &mut rng);
        assert!(
            pts[0].informed_rate < 0.3,
            "tiny budget: {}",
            pts[0].informed_rate
        );
        assert!(
            pts[1].informed_rate > 0.9,
            "huge budget: {}",
            pts[1].informed_rate
        );
        assert!(pts[0].success_rate < pts[1].success_rate);
    }

    #[test]
    fn predicted_rate_matches_measurement() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let n = 128;
        let budget = 30;
        let pts = sweep(n, &[budget], 200, &mut rng);
        let predicted = predicted_informed_rate(n, budget);
        assert!(
            (pts[0].informed_rate - predicted).abs() < 0.15,
            "measured {} vs predicted {predicted}",
            pts[0].informed_rate
        );
    }

    #[test]
    fn triangle_tester_solves_bm() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 64;
        // AllOne side: never wrong (one-sided tester on a triangle-free
        // graph cannot fabricate a witness).
        for t in 0..10u64 {
            let inst = BmInstance::sample(n, BmSide::AllOne, &mut rng);
            let (side, _) = solve_bm_via_triangle_tester(&inst, t);
            assert_eq!(side, BmSide::AllOne);
        }
        // AllZero side: 1-far, so the tester should find a triangle in
        // most runs.
        let mut hits = 0;
        for t in 0..10u64 {
            let inst = BmInstance::sample(n, BmSide::AllZero, &mut rng);
            let (side, stats) = solve_bm_via_triangle_tester(&inst, t);
            assert!(stats.total_bits > 0);
            if side == BmSide::AllZero {
                hits += 1;
            }
        }
        assert!(hits >= 7, "AllZero detected only {hits}/10 times");
    }

    #[test]
    fn budget_bits_scale() {
        assert!(budget_bits(256, 32) > budget_bits(256, 16));
        assert_eq!(budget_bits(256, 0), 1);
    }
}
