//! Lemma 4.17 applied to μ: hard instances at any average degree
//! `d' ≤ √n`.
//!
//! The μ distribution lives at degree `Θ(√n)`. To probe lower densities,
//! embed a μ core on `3q` vertices (degree `2γ√q`) into `n` total
//! vertices by padding with isolated vertices; the distance to
//! triangle-freeness is untouched and the average degree scales to
//! `2γ√q · 3q/n`, so choosing `q = (d'·n/(6γ))^{2/3}` hits the target.

use rand::Rng;
use triad_graph::generators::{pad_with_isolated_vertices, MuInstance, TripartiteMu};
use triad_graph::{Edge, Graph, GraphError};

/// A degree-embedded hard instance.
#[derive(Debug, Clone)]
pub struct EmbeddedMu {
    /// The μ core (on vertices `0..3q`).
    pub core: MuInstance,
    /// The padded graph on `n` vertices.
    pub padded: Graph,
    /// Three-player shares in the padded id space (ids are unchanged by
    /// padding, so these are the core's blocks verbatim).
    pub shares: Vec<Vec<Edge>>,
}

/// The core part size `q` for target degree `d'` at `n` vertices.
pub fn core_part_size(n: usize, target_degree: f64, gamma: f64) -> usize {
    ((target_degree * n as f64 / (6.0 * gamma)).powf(2.0 / 3.0))
        .round()
        .max(4.0) as usize
}

/// Builds an embedded hard instance of average degree ≈ `target_degree`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if the core would not fit
/// (`3q > n`), which happens when `target_degree` exceeds `Θ(√n)`.
pub fn embedded_mu<R: Rng + ?Sized>(
    n: usize,
    target_degree: f64,
    gamma: f64,
    rng: &mut R,
) -> Result<EmbeddedMu, GraphError> {
    let q = core_part_size(n, target_degree, gamma);
    if 3 * q > n {
        return Err(GraphError::InvalidParameters(format!(
            "core 3q = {} exceeds n = {n}; target degree too high for μ embedding",
            3 * q
        )));
    }
    let core = TripartiteMu::new(q, gamma).sample(rng);
    let padded = pad_with_isolated_vertices(core.graph(), n)?;
    let shares = core.player_inputs().to_vec();
    Ok(EmbeddedMu {
        core,
        padded,
        shares,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use triad_graph::distance;

    #[test]
    fn hits_target_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 3000;
        let target = 4.0;
        let emb = embedded_mu(n, target, 1.0, &mut rng).unwrap();
        let d = emb.padded.average_degree();
        assert!(
            (d - target).abs() / target < 0.35,
            "padded degree {d} vs target {target}"
        );
        assert_eq!(emb.padded.vertex_count(), n);
    }

    #[test]
    fn distance_is_preserved_by_padding() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let emb = embedded_mu(2000, 3.0, 1.2, &mut rng).unwrap();
        let core_bounds = distance::distance_bounds(emb.core.graph());
        let pad_bounds = distance::distance_bounds(&emb.padded);
        assert_eq!(core_bounds, pad_bounds);
    }

    #[test]
    fn rejects_overdense_targets() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // target ≈ n ≫ √n: impossible for a μ embedding.
        assert!(embedded_mu(300, 250.0, 1.0, &mut rng).is_err());
    }

    #[test]
    fn shares_cover_padded_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let emb = embedded_mu(1500, 3.0, 1.0, &mut rng).unwrap();
        let total: usize = emb.shares.iter().map(Vec::len).sum();
        assert_eq!(total, emb.padded.edge_count());
    }
}
