//! The hard distribution μ (§4.2.1) and empirical Lemma 4.5.

use rand::Rng;
use triad_graph::generators::{MuInstance, TripartiteMu};
use triad_graph::{distance, triangles};

/// Aggregate statistics over samples of μ.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MuFarnessReport {
    /// Number of instances sampled.
    pub trials: usize,
    /// Fraction of instances certified ε-far by triangle packing.
    pub far_fraction: f64,
    /// Mean packing size (edge-disjoint triangles).
    pub mean_packing: f64,
    /// Mean edge count.
    pub mean_edges: f64,
    /// The ε used for certification.
    pub epsilon: f64,
}

/// Samples μ `trials` times and reports how often the instance is
/// *certifiably* ε-far from triangle-free.
///
/// Lemma 4.5 promises, for sufficiently small γ, constant farness with
/// probability ≥ 1/2; the packing certificate makes the check one-sided
/// (reported instances are genuinely far).
pub fn verify_farness<R: Rng + ?Sized>(
    mu: &TripartiteMu,
    epsilon: f64,
    trials: usize,
    rng: &mut R,
) -> MuFarnessReport {
    let mut far = 0usize;
    let mut packing_sum = 0usize;
    let mut edge_sum = 0usize;
    for _ in 0..trials {
        let inst = mu.sample(rng);
        let g = inst.graph();
        let packing = triangles::greedy_triangle_packing(g).len();
        packing_sum += packing;
        edge_sum += g.edge_count();
        if g.edge_count() > 0 && packing as f64 >= epsilon * g.edge_count() as f64 {
            far += 1;
        }
    }
    MuFarnessReport {
        trials,
        far_fraction: far as f64 / trials.max(1) as f64,
        mean_packing: packing_sum as f64 / trials.max(1) as f64,
        mean_edges: edge_sum as f64 / trials.max(1) as f64,
        epsilon,
    }
}

/// The three players' shares of a μ instance, in the lower bound's
/// arrangement (Alice: `U×V₁`, Bob: `U×V₂`, Charlie: `V₁×V₂`).
pub fn three_player_shares(inst: &MuInstance) -> Vec<Vec<triad_graph::Edge>> {
    inst.player_inputs().to_vec()
}

/// Fraction of Charlie's edges that are triangle edges — the a-priori
/// marginal the paper calls "small constant": each `V₁×V₂` edge closes a
/// triangle with probability `≈ 1 − (1 − γ²/n)ⁿ ≈ 1 − e^{−γ²}`.
pub fn charlie_triangle_edge_fraction(inst: &MuInstance) -> f64 {
    let g = inst.graph();
    let charlie = inst.charlie_edges();
    if charlie.is_empty() {
        return 0.0;
    }
    let hits = charlie
        .iter()
        .filter(|e| triangles::is_triangle_edge(g, **e))
        .count();
    hits as f64 / charlie.len() as f64
}

/// Convenience: is the instance certifiably far / triangle-free?
pub fn classify(inst: &MuInstance, epsilon: f64) -> MuClass {
    let g = inst.graph();
    if distance::is_triangle_free(g) {
        MuClass::TriangleFree
    } else if distance::is_certifiably_far(g, epsilon) {
        MuClass::CertifiablyFar
    } else {
        MuClass::Intermediate
    }
}

/// Trichotomy of a μ sample with respect to the promise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuClass {
    /// No triangle at all.
    TriangleFree,
    /// Certified ε-far via packing.
    CertifiablyFar,
    /// Has triangles but the certificate falls short of ε·|E|.
    Intermediate,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn lemma_4_5_constant_farness() {
        // γ = 1.2, parts of 64: packing should certify Ω(1)-farness in
        // well over half the samples at a small ε.
        let mu = TripartiteMu::new(64, 1.2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = verify_farness(&mu, 0.05, 30, &mut rng);
        assert!(
            report.far_fraction >= 0.5,
            "far fraction {} below Lemma 4.5's 1/2",
            report.far_fraction
        );
        assert!(report.mean_packing > 0.0);
        // Mean edges ≈ 3·n²·γ/√n = 3γ·n^{3/2} = 3·1.2·512 ≈ 1843.
        assert!(
            (report.mean_edges - 1843.0).abs() < 300.0,
            "{}",
            report.mean_edges
        );
    }

    #[test]
    fn tiny_gamma_often_triangle_free() {
        let mu = TripartiteMu::new(16, 0.05);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut free = 0;
        for _ in 0..20 {
            if classify(&mu.sample(&mut rng), 0.1) == MuClass::TriangleFree {
                free += 1;
            }
        }
        assert!(
            free >= 15,
            "nearly-empty graphs should be triangle-free ({free}/20)"
        );
    }

    #[test]
    fn charlie_marginal_is_small_constant() {
        let mu = TripartiteMu::new(100, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = mu.sample(&mut rng);
        let frac = charlie_triangle_edge_fraction(&inst);
        // 1 − e^{−γ²} ≈ 0.63 at γ = 1; allow wide tolerance.
        assert!(frac > 0.3 && frac < 0.9, "marginal {frac}");
    }

    #[test]
    fn shares_cover_graph() {
        let mu = TripartiteMu::new(32, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inst = mu.sample(&mut rng);
        let shares = three_player_shares(&inst);
        assert_eq!(shares.len(), 3);
        let total: usize = shares.iter().map(Vec::len).sum();
        assert_eq!(total, inst.graph().edge_count());
    }
}
