//! Size probe for the Behrend construction across scales.
#[test]
fn probe_sizes() {
    for m in [64usize, 256, 1024, 4096, 16384] {
        let s = triad_graph::generators::behrend_set(m);
        println!("m={m} |S|={} sqrt={:.1}", s.len(), (m as f64).sqrt());
        assert!(triad_graph::generators::behrend::is_three_ap_free(&s));
    }
}
