//! # triad-graph
//!
//! Graph substrate for the `triad` reproduction of *"On the Multiparty
//! Communication Complexity of Testing Triangle-Freeness"* (Fischer,
//! Gershtein, Oshman — PODC 2017).
//!
//! This crate provides everything the paper's protocols and lower bounds
//! need from graphs:
//!
//! * a compact immutable [`Graph`] representation with sorted adjacency,
//! * triangle machinery: enumeration, counting, triangle-vees and
//!   edge-disjoint triangle packings ([`triangles`]),
//! * the fast kernels behind it: degree-ordered forward adjacency,
//!   incremental edge-deletion views and pool-parallel counting
//!   ([`kernels`]),
//! * distance to triangle-freeness and ε-farness certification
//!   ([`distance`]),
//! * the degree-bucketing analysis of the paper's §3.2 ([`buckets`]),
//! * every input-distribution generator the paper uses or implies
//!   ([`generators`]),
//! * partitioning of edge sets among `k` players, with or without edge
//!   duplication ([`partition`]).
//!
//! # Example
//!
//! ```
//! use triad_graph::{GraphBuilder, Edge, VertexId};
//!
//! let mut b = GraphBuilder::new(4);
//! b.add_edge(Edge::new(VertexId(0), VertexId(1)));
//! b.add_edge(Edge::new(VertexId(1), VertexId(2)));
//! b.add_edge(Edge::new(VertexId(0), VertexId(2)));
//! let g = b.build();
//! assert_eq!(g.edge_count(), 3);
//! assert!(triad_graph::triangles::contains_triangle(&g));
//! ```

// `deny`, not `forbid`: the one exception is `store::mmap`, which declares
// the raw `mmap`/`munmap` FFI behind `#[allow(unsafe_code)]` (see
// `docs/IO.md`). Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![deny(missing_docs)]

mod builder;
mod edge;
mod error;
mod graph;
mod vertex;

pub mod buckets;
pub mod csr;
pub mod distance;
pub mod generators;
pub mod io;
pub mod kernels;
pub mod partition;
pub mod store;
pub mod subgraphs;
pub mod triangles;

pub use builder::GraphBuilder;
pub use csr::AsCsr;
pub use edge::Edge;
pub use error::GraphError;
pub use graph::Graph;
pub use store::CsrStore;
pub use vertex::VertexId;

/// A triangle, stored with vertices in strictly increasing order.
///
/// Constructed through [`Triangle::new`], which canonicalizes the vertex
/// order, so two triangles over the same vertex set always compare equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triangle {
    a: VertexId,
    b: VertexId,
    c: VertexId,
}

impl Triangle {
    /// Creates a triangle from three distinct vertices, canonicalizing order.
    ///
    /// # Panics
    ///
    /// Panics if any two of the vertices are equal.
    pub fn new(a: VertexId, b: VertexId, c: VertexId) -> Self {
        assert!(
            a != b && b != c && a != c,
            "triangle vertices must be distinct"
        );
        let mut v = [a, b, c];
        v.sort_unstable();
        Triangle {
            a: v[0],
            b: v[1],
            c: v[2],
        }
    }

    /// The three vertices in increasing order.
    pub fn vertices(&self) -> [VertexId; 3] {
        [self.a, self.b, self.c]
    }

    /// The three edges of the triangle.
    pub fn edges(&self) -> [Edge; 3] {
        [
            Edge::new(self.a, self.b),
            Edge::new(self.b, self.c),
            Edge::new(self.a, self.c),
        ]
    }

    /// Returns `true` if `e` is one of the triangle's edges.
    pub fn contains_edge(&self, e: Edge) -> bool {
        self.edges().contains(&e)
    }

    /// Returns `true` if every edge of the triangle is present in `g`.
    pub fn exists_in(&self, g: &Graph) -> bool {
        self.edges().iter().all(|e| g.has_edge(*e))
    }
}

impl std::fmt::Display for Triangle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}, {}, {}}}", self.a, self.b, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_canonicalizes() {
        let t1 = Triangle::new(VertexId(3), VertexId(1), VertexId(2));
        let t2 = Triangle::new(VertexId(1), VertexId(2), VertexId(3));
        assert_eq!(t1, t2);
        assert_eq!(t1.vertices(), [VertexId(1), VertexId(2), VertexId(3)]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn triangle_rejects_duplicates() {
        let _ = Triangle::new(VertexId(1), VertexId(1), VertexId(2));
    }

    #[test]
    fn triangle_edges_and_containment() {
        let t = Triangle::new(VertexId(0), VertexId(5), VertexId(9));
        assert!(t.contains_edge(Edge::new(VertexId(5), VertexId(0))));
        assert!(t.contains_edge(Edge::new(VertexId(9), VertexId(5))));
        assert!(!t.contains_edge(Edge::new(VertexId(0), VertexId(1))));
    }

    #[test]
    fn triangle_display() {
        let t = Triangle::new(VertexId(2), VertexId(0), VertexId(1));
        assert_eq!(t.to_string(), "{0, 1, 2}");
    }
}
