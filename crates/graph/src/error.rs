use crate::VertexId;

/// Errors produced by graph construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// A vertex id was at least the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The declared number of vertices.
        n: usize,
    },
    /// A generator was asked for parameters it cannot satisfy
    /// (e.g. more planted triangles than fit in `n` vertices).
    InvalidParameters(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::VertexOutOfRange {
            vertex: VertexId(9),
            n: 5,
        };
        assert!(e.to_string().contains("out of range"));
        let e = GraphError::InvalidParameters("bad".into());
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
