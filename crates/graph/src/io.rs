//! Plain-text edge-list serialization.
//!
//! Format: a header line `n m`, then `m` lines `u v` (whitespace
//! separated, 0-based vertex indices). Lines starting with `#` are
//! comments. This is the interchange format of the `triad` CLI.

use crate::{Edge, Graph, GraphBuilder, GraphError, VertexId};
use std::io::{BufRead, Write};

/// Writes `g` in edge-list format.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_edge_list<W: Write>(g: &Graph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "{} {}", g.vertex_count(), g.edge_count())?;
    for e in g.edges() {
        writeln!(w, "{} {}", e.u(), e.v())?;
    }
    Ok(())
}

/// Reads a graph in edge-list format.
///
/// # Errors
///
/// Returns [`ReadError::Io`] on reader failures and
/// [`ReadError::Parse`]/[`ReadError::Graph`] on malformed content.
pub fn read_edge_list<R: BufRead>(r: R) -> Result<Graph, ReadError> {
    let mut lines = r.lines();
    let header = loop {
        match lines.next() {
            None => return Err(ReadError::Parse("missing header line".into())),
            Some(line) => {
                let line = line?;
                let trimmed = line.trim();
                if !trimmed.is_empty() && !trimmed.starts_with('#') {
                    break trimmed.to_string();
                }
            }
        }
    };
    let mut parts = header.split_whitespace();
    let n: usize = parse(parts.next(), "vertex count")?;
    let m: usize = parse(parts.next(), "edge count")?;
    let mut b = GraphBuilder::with_capacity(n, m);
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut read_edges = 0usize;
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u32 = parse(parts.next(), "edge endpoint")?;
        let v: u32 = parse(parts.next(), "edge endpoint")?;
        if u == v {
            return Err(ReadError::Parse(format!("self-loop {u}-{v}")));
        }
        let e = Edge::new(VertexId(u), VertexId(v));
        if !seen.insert(e) {
            // Duplicates would make the header count silently disagree
            // with the loaded graph; reject them outright.
            return Err(ReadError::Parse(format!("duplicate edge {e}")));
        }
        b.try_add_edge(e).map_err(ReadError::Graph)?;
        read_edges += 1;
    }
    if read_edges != m {
        return Err(ReadError::Parse(format!(
            "header promised {m} edges, found {read_edges}"
        )));
    }
    Ok(b.build())
}

fn parse<T: std::str::FromStr>(tok: Option<&str>, what: &str) -> Result<T, ReadError> {
    tok.ok_or_else(|| ReadError::Parse(format!("missing {what}")))?
        .parse()
        .map_err(|_| ReadError::Parse(format!("invalid {what}")))
}

/// Errors from [`read_edge_list`].
#[derive(Debug)]
#[non_exhaustive]
pub enum ReadError {
    /// The underlying reader failed.
    Io(std::io::Error),
    /// The content is not valid edge-list format.
    Parse(String),
    /// The edges are inconsistent with the declared vertex count.
    Graph(GraphError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "io error: {e}"),
            ReadError::Parse(msg) => write!(f, "parse error: {msg}"),
            ReadError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Graph(e) => Some(e),
            ReadError::Parse(_) => None,
        }
    }
}

impl From<std::io::Error> for ReadError {
    fn from(e: std::io::Error) -> Self {
        ReadError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (3, 4)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let back = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn comments_and_blank_lines() {
        let text = "# a comment\n\n4 2\n0 1\n# another\n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn rejects_bad_content() {
        assert!(read_edge_list("".as_bytes()).is_err());
        assert!(read_edge_list("4".as_bytes()).is_err()); // missing m
        assert!(read_edge_list("4 1\n0 0\n".as_bytes()).is_err()); // self-loop
        assert!(read_edge_list("4 2\n0 1\n".as_bytes()).is_err()); // count mismatch
        assert!(read_edge_list("2 1\n0 5\n".as_bytes()).is_err()); // out of range
        assert!(read_edge_list("2 1\nx y\n".as_bytes()).is_err()); // not numbers
                                                                   // duplicate edges contradict the header's count
        let err = read_edge_list("3 2\n0 1\n1 0\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn error_display() {
        let e = read_edge_list("4 2\n0 1\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("promised 2"));
    }
}
