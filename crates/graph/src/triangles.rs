//! Triangle machinery: detection, enumeration, counting, triangle-vees
//! (the paper's Definition 2) and edge-disjoint triangle packings.
//!
//! A *triangle-vee* is a pair of edges `{u,v}, {v,w}` sharing the source
//! vertex `v` such that the closing edge `{u,w}` is also in the graph.
//! The paper's unrestricted protocol reduces triangle finding to vee
//! finding, because in the communication model any player holding the
//! closing edge can announce it.

use crate::{Edge, Graph, Triangle, VertexId};

/// A pair of edges sharing a source vertex (Definition 2 of the paper),
/// which closes into a triangle if the third edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vee {
    source: VertexId,
    left: VertexId,
    right: VertexId,
}

impl Vee {
    /// Creates a vee with `source` as the shared vertex and `left`, `right`
    /// the outer endpoints (canonicalized so `left < right`).
    ///
    /// # Panics
    ///
    /// Panics if the three vertices are not distinct.
    pub fn new(source: VertexId, a: VertexId, b: VertexId) -> Self {
        assert!(
            source != a && source != b && a != b,
            "vee vertices must be distinct"
        );
        let (left, right) = if a < b { (a, b) } else { (b, a) };
        Vee {
            source,
            left,
            right,
        }
    }

    /// Attempts to form a vee from two edges; `None` unless they share
    /// exactly one endpoint.
    pub fn from_edges(e1: Edge, e2: Edge) -> Option<Self> {
        let s = e1.shared_endpoint(e2)?;
        let a = e1.other(s).expect("shared endpoint must be on e1");
        let b = e2.other(s).expect("shared endpoint must be on e2");
        Some(Vee::new(s, a, b))
    }

    /// The shared (source) vertex.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The two arms of the vee.
    pub fn arms(&self) -> [Edge; 2] {
        [
            Edge::new(self.source, self.left),
            Edge::new(self.source, self.right),
        ]
    }

    /// The edge that would close the vee into a triangle.
    pub fn closing_edge(&self) -> Edge {
        Edge::new(self.left, self.right)
    }

    /// Returns the closed triangle if the closing edge is in `g`
    /// (a *triangle-vee* per Definition 2).
    pub fn close_in(&self, g: &Graph) -> Option<Triangle> {
        if g.has_edge(self.closing_edge()) {
            Some(Triangle::new(self.source, self.left, self.right))
        } else {
            None
        }
    }
}

/// Returns `true` if `g` contains at least one triangle.
///
/// Runs the degree-ordered forward-adjacency kernel
/// ([`crate::kernels::Forward`]): each edge is intersected over the
/// forward lists of its endpoints, which are `O(√m)` long, giving a
/// genuine `O(m^{3/2})` worst case (see `docs/KERNELS.md`).
pub fn contains_triangle(g: &Graph) -> bool {
    find_triangle(g).is_some()
}

/// Returns some triangle of `g`, or `None` if triangle-free, in
/// `O(m^{3/2})` via the forward-adjacency kernel. The witness is a
/// deterministic function of the graph; see
/// [`crate::kernels::find_triangle`] for which triangle it is.
pub fn find_triangle(g: &Graph) -> Option<Triangle> {
    crate::kernels::find_triangle(g)
}

/// Smallest common neighbor of `u` and `v`, probing adaptively: when
/// the degree skew makes it cheaper, each element of the smaller list
/// is binary-searched in the larger one instead of linearly merging
/// both (`min·log max` vs `min + max`).
fn first_common_neighbor(g: &Graph, u: VertexId, v: VertexId) -> Option<VertexId> {
    let (mut a, mut b) = (g.neighbors(u), g.neighbors(v));
    if a.len() > b.len() {
        std::mem::swap(&mut a, &mut b);
    }
    // `min·ceil(log₂ max)` probes vs a `min + max` merge.
    let log_b = usize::BITS - b.len().leading_zeros();
    if a.len() * (log_b as usize) < a.len() + b.len() {
        // Skewed: probe the big list for each element of the small one.
        // Iterating `a` ascending returns the smallest common neighbor,
        // exactly as the merge would.
        return a.iter().find(|w| b.binary_search(w).is_ok()).copied();
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return Some(a[i]),
        }
    }
    None
}

/// Enumerates all triangles of `g`, each exactly once, in canonical
/// (sorted) order, in `O(m^{3/2} + t)` via the forward-adjacency kernel.
pub fn enumerate_triangles(g: &Graph) -> Vec<Triangle> {
    crate::kernels::enumerate_triangles(g)
}

/// Counts triangles of `g` without materializing them, in `O(m^{3/2})`
/// via the forward-adjacency kernel. For large graphs,
/// [`crate::kernels::count_triangles_par`] shards this over a worker
/// pool with byte-identical output.
pub fn count_triangles(g: &Graph) -> u64 {
    crate::kernels::count_triangles(g)
}

/// Returns `true` if edge `e` participates in some triangle of `g`
/// (a *triangle edge*, Definition 3). This is the object of the paper's
/// lower-bound task `T^ε_{n,d}`.
///
/// Probes the smaller endpoint's adjacency list, binary-searching the
/// larger list when the degrees are skewed (`O(min·log max)`), so
/// hub-heavy graphs do not pay `Θ(Δ)` per query.
pub fn is_triangle_edge(g: &Graph, e: Edge) -> bool {
    if !g.has_edge(e) {
        return false;
    }
    let (u, v) = e.endpoints();
    first_common_neighbor(g, u, v).is_some()
}

/// All edges of `g` that participate in at least one triangle, in
/// canonical order, via sharded forward enumeration
/// ([`crate::kernels::triangle_edges`]).
pub fn triangle_edges(g: &Graph) -> Vec<Edge> {
    crate::kernels::triangle_edges(g)
}

/// Greedily packs edge-disjoint triangles; the size of the packing is a
/// lower bound on the number of edges that must be removed to make `g`
/// triangle-free (removing one edge kills at most one packed triangle).
///
/// The paper's ε-far analysis works with exactly such families ("at least
/// εnd disjoint triangle-vees"); generators use this to certify farness.
pub fn greedy_triangle_packing(g: &Graph) -> Vec<Triangle> {
    // A DeletionView holds the "unused" edge set: packing a triangle
    // deletes its three edges, so "both closing edges unused" is exactly
    // "w is a live common neighbor". Output is pinned identical to the
    // HashSet-membership loop it replaced (kernels::naive) by the
    // differential suite.
    let mut view = crate::kernels::DeletionView::new(g);
    let mut packing = Vec::new();
    for e in g.edges() {
        if !view.is_alive(*e) {
            continue;
        }
        let (u, v) = e.endpoints();
        if let Some(w) = view.first_common_alive_neighbor(u, v) {
            view.delete_edge(*e);
            view.delete_edge(Edge::new(u, w));
            view.delete_edge(Edge::new(v, w));
            packing.push(Triangle::new(u, v, w));
        }
    }
    packing
}

/// Counts, for a given vertex `v`, a maximal set of edge-disjoint
/// triangle-vees sourced at `v` (greedy matching on v's triangle-closing
/// neighbor pairs). Used to decide whether `v` is a *full vertex*
/// (Definition 5).
pub fn disjoint_vees_at(g: &Graph, v: VertexId) -> usize {
    let nbrs = g.neighbors(v);
    // Build the "link graph": neighbors of v, connected when they share an
    // edge in g. A set of edge-disjoint vees sourced at v is a matching in
    // the link graph; greedily match.
    let mut used = vec![false; nbrs.len()];
    let mut count = 0usize;
    for i in 0..nbrs.len() {
        if used[i] {
            continue;
        }
        for j in (i + 1)..nbrs.len() {
            if used[j] {
                continue;
            }
            if g.has_edge(Edge::new(nbrs[i], nbrs[j])) {
                used[i] = true;
                used[j] = true;
                count += 1;
                break;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn k4() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn vee_construction_and_closing() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
        let vee = Vee::from_edges(
            Edge::new(VertexId(0), VertexId(1)),
            Edge::new(VertexId(1), VertexId(2)),
        )
        .unwrap();
        assert_eq!(vee.source(), VertexId(1));
        assert_eq!(vee.closing_edge(), Edge::new(VertexId(0), VertexId(2)));
        assert_eq!(
            vee.close_in(&g),
            Some(Triangle::new(VertexId(0), VertexId(1), VertexId(2)))
        );
    }

    #[test]
    fn vee_from_disjoint_edges_is_none() {
        assert!(Vee::from_edges(
            Edge::new(VertexId(0), VertexId(1)),
            Edge::new(VertexId(2), VertexId(3))
        )
        .is_none());
    }

    #[test]
    fn vee_does_not_close_without_edge() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let vee = Vee::new(VertexId(1), VertexId(0), VertexId(2));
        assert_eq!(vee.close_in(&g), None);
    }

    #[test]
    fn detect_path_is_triangle_free() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(!contains_triangle(&g));
        assert_eq!(count_triangles(&g), 0);
        assert!(enumerate_triangles(&g).is_empty());
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = k4();
        assert!(contains_triangle(&g));
        assert_eq!(count_triangles(&g), 4);
        let ts = enumerate_triangles(&g);
        assert_eq!(ts.len(), 4);
        let uniq: HashSet<_> = ts.iter().collect();
        assert_eq!(uniq.len(), 4);
        for t in &ts {
            assert!(t.exists_in(&g));
        }
    }

    #[test]
    fn find_triangle_returns_valid_triangle() {
        let g = k4();
        let t = find_triangle(&g).unwrap();
        assert!(t.exists_in(&g));
    }

    #[test]
    fn triangle_edge_detection() {
        // triangle 0-1-2 plus pendant edge 2-3
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert!(is_triangle_edge(&g, Edge::new(VertexId(0), VertexId(1))));
        assert!(!is_triangle_edge(&g, Edge::new(VertexId(2), VertexId(3))));
        // edges not in the graph are never triangle edges
        assert!(!is_triangle_edge(&g, Edge::new(VertexId(0), VertexId(3))));
        assert_eq!(triangle_edges(&g).len(), 3);
    }

    #[test]
    fn packing_on_k4_is_one_triangle() {
        // K4 has 4 triangles but any two share an edge, so max packing = 1.
        let g = k4();
        let p = greedy_triangle_packing(&g);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn packing_on_disjoint_triangles_is_all() {
        let g = Graph::from_edges(
            9,
            [
                (0, 1),
                (1, 2),
                (0, 2),
                (3, 4),
                (4, 5),
                (3, 5),
                (6, 7),
                (7, 8),
                (6, 8),
            ],
        );
        assert_eq!(greedy_triangle_packing(&g).len(), 3);
    }

    #[test]
    fn packing_triangles_are_edge_disjoint_and_present() {
        let g = k4().union_with(&[]);
        let p = greedy_triangle_packing(&g);
        let mut seen = HashSet::new();
        for t in &p {
            assert!(t.exists_in(&g));
            for e in t.edges() {
                assert!(seen.insert(e), "packing must be edge-disjoint");
            }
        }
    }

    #[test]
    fn disjoint_vees_at_hub() {
        // Star center 0 with leaves 1..=4, plus edges (1,2) and (3,4):
        // two edge-disjoint vees at 0.
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]);
        assert_eq!(disjoint_vees_at(&g, VertexId(0)), 2);
        // vertex 1 has neighbors {0, 2} which are adjacent: one vee.
        assert_eq!(disjoint_vees_at(&g, VertexId(1)), 1);
    }

    #[test]
    fn disjoint_vees_zero_without_triangles() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(disjoint_vees_at(&g, VertexId(0)), 0);
    }
}
