//! Degree bucketing and the full-bucket / full-vertex analysis of the
//! paper's §3.2.
//!
//! Vertices are partitioned by degree into powers-of-3 buckets: bucket `i`
//! holds vertices with degree in `[3^i, 3^{i+1})`, and isolated vertices
//! live outside all buckets. The unrestricted protocol iterates buckets
//! between the thresholds `d_l = εd / (2 log n)` and `d_h = sqrt(nd/ε)`
//! (Definitions 7–8), looking for a *full bucket* — one whose adjacent
//! edges contain `εnd / (2 log n)` disjoint triangle-vees — and inside it a
//! *full vertex* (Definition 5), whose incident edges are vee-rich enough
//! that the birthday-paradox edge sampling of Lemma 3.9 exposes a
//! triangle-vee.
//!
//! "Disjoint" follows the paper's convention: two triangle-vees are
//! disjoint when they are edge-disjoint **or** sourced at different
//! vertices, so per-vertex greedy vee matchings sum to a valid disjoint
//! family.

use crate::{triangles, Graph, VertexId};

/// Lower degree bound of bucket `i`: `3^i`.
pub fn d_minus(i: usize) -> u64 {
    3u64.saturating_pow(i as u32)
}

/// Upper (exclusive) degree bound of bucket `i`: `3^{i+1}`.
pub fn d_plus(i: usize) -> u64 {
    3u64.saturating_pow(i as u32 + 1)
}

/// The bucket a degree falls into; `None` for isolated vertices.
///
/// # Example
///
/// ```
/// use triad_graph::buckets::bucket_of_degree;
/// assert_eq!(bucket_of_degree(0), None);
/// assert_eq!(bucket_of_degree(1), Some(0));
/// assert_eq!(bucket_of_degree(2), Some(0));
/// assert_eq!(bucket_of_degree(3), Some(1));
/// assert_eq!(bucket_of_degree(9), Some(2));
/// ```
pub fn bucket_of_degree(d: usize) -> Option<usize> {
    if d == 0 {
        return None;
    }
    let mut i = 0usize;
    let mut bound = 3u64;
    while (d as u64) >= bound {
        i += 1;
        bound = bound.saturating_mul(3);
    }
    Some(i)
}

/// Number of buckets needed to cover degrees up to `n`: `⌈log₃ n⌉ + 1`.
pub fn bucket_count_for(n: usize) -> usize {
    bucket_of_degree(n.max(1)).unwrap_or(0) + 1
}

/// A degree-bucket partition of a graph's vertices.
#[derive(Debug, Clone)]
pub struct Bucketing {
    assignment: Vec<Option<usize>>,
    buckets: Vec<Vec<VertexId>>,
}

impl Bucketing {
    /// Buckets every vertex of `g` by degree.
    pub fn new(g: &Graph) -> Self {
        let nb = bucket_count_for(g.vertex_count());
        let mut buckets = vec![Vec::new(); nb];
        let mut assignment = Vec::with_capacity(g.vertex_count());
        for v in g.vertices() {
            let b = bucket_of_degree(g.degree(v));
            assignment.push(b);
            if let Some(i) = b {
                buckets[i].push(v);
            }
        }
        Bucketing {
            assignment,
            buckets,
        }
    }

    /// Which bucket vertex `v` belongs to (`None` if isolated).
    pub fn bucket_of(&self, v: VertexId) -> Option<usize> {
        self.assignment[v.index()]
    }

    /// The vertices of bucket `i` (empty slice if `i` exceeds the range).
    pub fn bucket(&self, i: usize) -> &[VertexId] {
        self.buckets.get(i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of bucket slots tracked.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Indices of non-empty buckets, ascending.
    pub fn nonempty(&self) -> Vec<usize> {
        (0..self.buckets.len())
            .filter(|i| !self.buckets[*i].is_empty())
            .collect()
    }

    /// Combined size of buckets `i-1, i, i+1` (the paper's `N(B_i)`).
    pub fn neighborhood_size(&self, i: usize) -> usize {
        let lo = i.saturating_sub(1);
        let hi = (i + 1).min(self.buckets.len().saturating_sub(1));
        (lo..=hi).map(|j| self.bucket(j).len()).sum()
    }

    /// Combined size of the `r`-neighborhood `N_r(B_i)`: all buckets of
    /// index `≥ i − log₃ r` (Definition 6).
    pub fn r_neighborhood_size(&self, i: usize, r: usize) -> usize {
        let lo = i.saturating_sub(log3_ceil(r));
        (lo..self.buckets.len()).map(|j| self.bucket(j).len()).sum()
    }
}

/// Parameters governing fullness thresholds.
///
/// The paper's thresholds carry a `1/log n` factor with base-2 logarithms;
/// `log_scale` lets experiments relax the constant (the `practical` tuning)
/// while keeping every dependence on `n`, `d`, `ε` intact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FarnessParams {
    /// Distance parameter ε.
    pub epsilon: f64,
    /// Multiplier on the paper's thresholds (1.0 = paper-faithful).
    pub log_scale: f64,
}

impl FarnessParams {
    /// Paper-faithful parameters for a given ε.
    pub fn new(epsilon: f64) -> Self {
        FarnessParams {
            epsilon,
            log_scale: 1.0,
        }
    }

    /// Fraction threshold of Definition 5: `ε / (12 log n)`.
    pub fn full_vertex_fraction(&self, n: usize) -> f64 {
        self.epsilon / (12.0 * log2_ceil(n) * self.log_scale).max(1.0)
    }

    /// Vee-count threshold of Definition 4: `ε n d / (2 log n)`.
    pub fn full_bucket_vees(&self, n: usize, avg_degree: f64) -> f64 {
        self.epsilon * n as f64 * avg_degree / (2.0 * log2_ceil(n) * self.log_scale).max(1.0)
    }
}

fn log2_ceil(n: usize) -> f64 {
    (n.max(2) as f64).log2().ceil()
}

/// Smallest `t` with `3^t ≥ r` (i.e. `⌈log₃ r⌉`).
fn log3_ceil(r: usize) -> usize {
    let mut t = 0usize;
    let mut pow = 1u64;
    while pow < r as u64 {
        pow = pow.saturating_mul(3);
        t += 1;
    }
    t
}

/// Degree window `[d_l, d_h]` the unrestricted protocol scans
/// (Definitions 7–8): `d_l = εd / (2 log n)`, `d_h = sqrt(nd/ε)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeThresholds {
    /// Lower scan bound `d_l`.
    pub low: f64,
    /// Upper scan bound `d_h`.
    pub high: f64,
}

impl DegreeThresholds {
    /// Computes the scan window for a graph with `n` vertices and average
    /// degree `d` at distance parameter `epsilon`.
    pub fn compute(n: usize, avg_degree: f64, epsilon: f64) -> Self {
        let low = epsilon * avg_degree / (2.0 * log2_ceil(n));
        let high = (n as f64 * avg_degree / epsilon).sqrt();
        DegreeThresholds { low, high }
    }

    /// Bucket indices whose degree range intersects `[low, high]`.
    pub fn bucket_range(&self) -> std::ops::RangeInclusive<usize> {
        let lo = bucket_of_degree(self.low.max(1.0) as usize).unwrap_or(0);
        let hi = bucket_of_degree(self.high.max(1.0).ceil() as usize).unwrap_or(0);
        lo..=hi
    }
}

/// Returns `true` if `v` is a *full vertex* (Definition 5): the edges of a
/// maximal disjoint vee family at `v` make up at least a
/// `full_vertex_fraction` of `deg(v)`.
pub fn is_full_vertex(g: &Graph, v: VertexId, params: &FarnessParams) -> bool {
    let d = g.degree(v);
    if d < 2 {
        return false;
    }
    let vees = triangles::disjoint_vees_at(g, v);
    (2 * vees) as f64 >= params.full_vertex_fraction(g.vertex_count()) * d as f64
}

/// Counts disjoint triangle-vees sourced in bucket `i` (per-vertex greedy
/// matchings; disjoint per the paper's convention).
pub fn bucket_vee_count(g: &Graph, bucketing: &Bucketing, i: usize) -> usize {
    bucketing
        .bucket(i)
        .iter()
        .map(|v| triangles::disjoint_vees_at(g, *v))
        .sum()
}

/// Indices of *full buckets* (Definition 4) of `g`.
pub fn full_buckets(g: &Graph, bucketing: &Bucketing, params: &FarnessParams) -> Vec<usize> {
    let threshold = params.full_bucket_vees(g.vertex_count(), g.average_degree());
    (0..bucketing.num_buckets())
        .filter(|i| bucket_vee_count(g, bucketing, *i) as f64 >= threshold)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(d_minus(0), 1);
        assert_eq!(d_plus(0), 3);
        assert_eq!(d_minus(2), 9);
        assert_eq!(d_plus(2), 27);
        for d in 1..200usize {
            let i = bucket_of_degree(d).unwrap();
            assert!(
                d as u64 >= d_minus(i) && (d as u64) < d_plus(i),
                "d={d} i={i}"
            );
        }
    }

    #[test]
    fn bucketing_assigns_all_vertices() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (1, 3), (1, 4)]);
        let b = Bucketing::new(&g);
        assert_eq!(b.bucket_of(VertexId(5)), None); // isolated
        assert_eq!(b.bucket_of(VertexId(0)), Some(0)); // degree 1
        assert_eq!(b.bucket_of(VertexId(1)), Some(1)); // degree 4 ∈ [3,9)
        let total: usize = (0..b.num_buckets()).map(|i| b.bucket(i).len()).sum();
        assert_eq!(total, 5);
        assert_eq!(b.nonempty(), vec![0, 1]);
    }

    #[test]
    fn neighborhood_sizes() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (1, 3), (1, 4)]);
        let b = Bucketing::new(&g);
        // bucket 0 has 4 vertices (deg 1-2), bucket 1 has 1 vertex.
        assert_eq!(b.neighborhood_size(0), 5);
        assert_eq!(b.neighborhood_size(1), 5);
        assert!(b.r_neighborhood_size(1, 3) >= b.bucket(1).len());
        // r-neighborhood with r=1 is just buckets >= i.
        assert_eq!(b.r_neighborhood_size(0, 1), 5);
        assert_eq!(b.r_neighborhood_size(1, 1), 1);
    }

    #[test]
    fn full_vertex_on_book_graph() {
        // "Book": vertex 0 joined to 1..=6, with pages (1,2),(3,4),(5,6):
        // three disjoint vees at 0 covering all 6 incident edges.
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (0, 6),
                (1, 2),
                (3, 4),
                (5, 6),
            ],
        );
        let params = FarnessParams::new(0.3);
        assert!(is_full_vertex(&g, VertexId(0), &params));
        // leaf 1 has degree 2, both edges in one vee (0-1, 1-2 with 0-2 ∈ E):
        assert!(is_full_vertex(&g, VertexId(1), &params));
    }

    #[test]
    fn no_full_vertex_in_triangle_free_graph() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let params = FarnessParams::new(0.5);
        for v in g.vertices() {
            assert!(!is_full_vertex(&g, v, &params));
        }
        let b = Bucketing::new(&g);
        assert!(full_buckets(&g, &b, &params).is_empty());
    }

    #[test]
    fn full_bucket_exists_in_far_graph() {
        // Many disjoint triangles: every bucket-0 vertex sources a vee.
        let mut edges = Vec::new();
        let t = 30u32;
        for i in 0..t {
            let base = 3 * i;
            edges.extend([(base, base + 1), (base + 1, base + 2), (base, base + 2)]);
        }
        let g = Graph::from_edges(3 * t as usize, edges);
        let b = Bucketing::new(&g);
        // relax the log factor so the finite-n threshold is attainable
        let params = FarnessParams {
            epsilon: 0.9,
            log_scale: 0.2,
        };
        let fb = full_buckets(&g, &b, &params);
        assert!(
            !fb.is_empty(),
            "disjoint-triangle graph must have a full bucket"
        );
        assert_eq!(fb, vec![0]);
    }

    #[test]
    fn degree_thresholds_bracket_average() {
        let th = DegreeThresholds::compute(1024, 32.0, 0.1);
        assert!(th.low < 32.0);
        assert!(th.high > 32.0);
        let range = th.bucket_range();
        assert!(range.contains(&bucket_of_degree(32).unwrap()));
    }
}
