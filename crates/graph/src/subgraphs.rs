//! Small-subgraph detection: the machinery behind generalizing the
//! paper's simultaneous testers from triangle-freeness to `H`-freeness
//! (its §5 future-work direction, and the \[19\] line of related work on
//! testing `H`-freeness for small `H`).
//!
//! Finds (non-induced) copies of a small pattern `H` in a host graph by
//! degree-ordered backtracking. Intended for patterns of up to ~6
//! vertices — cliques and short cycles — which is the regime the
//! distributed property-testing literature treats.

use crate::kernels::{Adjacency, DeletionView};
use crate::{Edge, Graph, GraphBuilder, VertexId};

/// A small pattern graph with convenience constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    graph: Graph,
}

impl Pattern {
    /// Wraps an arbitrary (small) graph as a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the pattern has more than 8 vertices (backtracking cost)
    /// or any isolated vertex (a match would be meaningless).
    pub fn new(graph: Graph) -> Self {
        assert!(
            graph.vertex_count() <= 8,
            "patterns are limited to 8 vertices"
        );
        assert!(
            graph.vertices().all(|v| graph.degree(v) > 0),
            "pattern must have no isolated vertices"
        );
        Pattern { graph }
    }

    /// The triangle `K₃`.
    pub fn triangle() -> Self {
        Pattern::clique(3)
    }

    /// The complete graph `K_h`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ h ≤ 8`.
    pub fn clique(h: usize) -> Self {
        assert!((2..=8).contains(&h), "clique size out of range");
        let mut b = GraphBuilder::new(h);
        for a in 0..h as u32 {
            for c in (a + 1)..h as u32 {
                b.add_edge(Edge::new(VertexId(a), VertexId(c)));
            }
        }
        Pattern::new(b.build())
    }

    /// The cycle `C_h`.
    ///
    /// # Panics
    ///
    /// Panics unless `3 ≤ h ≤ 8`.
    pub fn cycle(h: usize) -> Self {
        assert!((3..=8).contains(&h), "cycle length out of range");
        let mut b = GraphBuilder::new(h);
        for i in 0..h as u32 {
            b.add_edge(Edge::new(VertexId(i), VertexId((i + 1) % h as u32)));
        }
        Pattern::new(b.build())
    }

    /// Number of pattern vertices.
    pub fn vertices(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of pattern edges.
    pub fn edges(&self) -> usize {
        self.graph.edge_count()
    }

    /// The underlying pattern graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }
}

/// Finds a (non-induced) copy of `h` in `g`: returns, for each pattern
/// vertex `i`, the host vertex it maps to. `None` if `g` is `H`-free.
pub fn find_copy(g: &Graph, h: &Pattern) -> Option<Vec<VertexId>> {
    find_copy_in(g, h)
}

/// [`find_copy`] generalized over any [`Adjacency`] host — in particular
/// a live [`DeletionView`], which is how [`greedy_copy_packing`] reuses
/// the backtracking search without rebuilding the host graph after each
/// packed copy.
pub fn find_copy_in<A: Adjacency>(host: &A, h: &Pattern) -> Option<Vec<VertexId>> {
    let hp = h.graph();
    let order = matching_order(hp);
    let mut assignment: Vec<Option<VertexId>> = vec![None; hp.vertex_count()];
    if backtrack(host, hp, &order, 0, &mut assignment) {
        Some(
            assignment
                .into_iter()
                .map(|v| v.expect("complete assignment"))
                .collect(),
        )
    } else {
        None
    }
}

/// Returns `true` if `g` contains no copy of `h`.
pub fn is_free_of(g: &Graph, h: &Pattern) -> bool {
    find_copy(g, h).is_none()
}

/// Greedily packs vertex-disjoint copies of `h` (each copy's hosts are
/// removed before searching for the next). The packing size lower-bounds
/// the number of *edge* removals needed to make `g` `H`-free, since the
/// copies are a fortiori edge-disjoint.
///
/// Runs on a [`DeletionView`]: after each packed copy, every live edge
/// incident to its host vertices is tombstoned ([`DeletionView::delete_incident`])
/// and the search continues on the same view — the pre-kernel version
/// rebuilt the host graph from scratch per copy. A view with those edges
/// dead exposes exactly the adjacency a rebuilt graph would, so the
/// packing is unchanged.
pub fn greedy_copy_packing(g: &Graph, h: &Pattern) -> Vec<Vec<VertexId>> {
    let mut view = DeletionView::new(g);
    let mut out = Vec::new();
    while let Some(copy) = find_copy_in(&view, h) {
        for v in &copy {
            view.delete_incident(*v);
        }
        out.push(copy);
    }
    out
}

/// Pattern vertices ordered so each (after the first) touches an
/// already-placed one — keeps the backtracking frontier connected.
fn matching_order(hp: &Graph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = Vec::new();
    let mut placed = vec![false; hp.vertex_count()];
    // Start from the max-degree pattern vertex.
    let start = hp
        .vertices()
        .max_by_key(|v| hp.degree(*v))
        .expect("pattern is non-empty");
    order.push(start);
    placed[start.index()] = true;
    while order.len() < hp.vertex_count() {
        let next = hp
            .vertices()
            .filter(|v| !placed[v.index()])
            .max_by_key(|v| {
                hp.neighbors(*v)
                    .iter()
                    .filter(|u| placed[u.index()])
                    .count()
            })
            .expect("vertices remain");
        placed[next.index()] = true;
        order.push(next);
    }
    order
}

fn backtrack<A: Adjacency>(
    g: &A,
    hp: &Graph,
    order: &[VertexId],
    depth: usize,
    assignment: &mut Vec<Option<VertexId>>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let pv = order[depth];
    let needed_degree = hp.degree(pv);
    // Candidate hosts: neighbors of an already-placed neighbor if one
    // exists (connected frontier), else all vertices.
    let anchored: Option<(VertexId, VertexId)> = hp
        .neighbors(pv)
        .iter()
        .find_map(|u| assignment[u.index()].map(|host| (*u, host)));
    let candidates: Vec<VertexId> = match anchored {
        Some((_, host)) => g.neighbor_list(host),
        None => (0..g.vertex_count() as u32).map(VertexId).collect(),
    };
    'cand: for cand in candidates {
        if g.degree(cand) < needed_degree {
            continue;
        }
        if assignment.contains(&Some(cand)) {
            continue;
        }
        // Every placed pattern-neighbor must be a host-neighbor.
        for u in hp.neighbors(pv) {
            if let Some(host) = assignment[u.index()] {
                if cand == host || !g.has_edge(Edge::new(cand, host)) {
                    continue 'cand;
                }
            }
        }
        assignment[pv.index()] = Some(cand);
        if backtrack(g, hp, order, depth + 1, assignment) {
            return true;
        }
        assignment[pv.index()] = None;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles;

    #[test]
    fn pattern_constructors() {
        assert_eq!(Pattern::triangle().edges(), 3);
        assert_eq!(Pattern::clique(4).edges(), 6);
        assert_eq!(Pattern::cycle(5).edges(), 5);
        assert_eq!(Pattern::cycle(5).vertices(), 5);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn pattern_rejects_isolated_vertices() {
        let g = Graph::from_edges(3, [(0, 1)]);
        let _ = Pattern::new(g);
    }

    #[test]
    fn triangle_pattern_agrees_with_triangle_machinery() {
        let with = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (3, 4)]);
        let without = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let t = Pattern::triangle();
        assert_eq!(
            find_copy(&with, &t).is_some(),
            triangles::contains_triangle(&with)
        );
        assert_eq!(
            is_free_of(&without, &t),
            !triangles::contains_triangle(&without)
        );
    }

    #[test]
    fn finds_k4() {
        let mut pairs = vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        pairs.extend([(3, 4), (4, 5)]);
        let g = Graph::from_edges(6, pairs);
        let copy = find_copy(&g, &Pattern::clique(4)).expect("K4 present");
        // Every pair in the copy must be a host edge.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(g.has_edge(Edge::new(copy[i], copy[j])));
            }
        }
        assert!(is_free_of(&g, &Pattern::clique(5)));
    }

    #[test]
    fn finds_c5_but_not_in_tree() {
        let c5 = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (0, 4)]);
        assert!(find_copy(&c5, &Pattern::cycle(5)).is_some());
        // C5 contains no triangle and no C4 (non-induced C4 needs a chord).
        assert!(is_free_of(&c5, &Pattern::triangle()));
        assert!(is_free_of(&c5, &Pattern::cycle(4)));
        let tree = Graph::from_edges(6, [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]);
        for h in [Pattern::triangle(), Pattern::cycle(4), Pattern::cycle(5)] {
            assert!(is_free_of(&tree, &h));
        }
    }

    #[test]
    fn copy_mapping_is_injective_and_valid() {
        let g = Graph::from_edges(
            7,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0), // C4
                (4, 5),
                (5, 6),
            ],
        );
        let copy = find_copy(&g, &Pattern::cycle(4)).expect("C4 present");
        let uniq: std::collections::HashSet<_> = copy.iter().collect();
        assert_eq!(uniq.len(), 4);
        let hp = Pattern::cycle(4);
        for e in hp.graph().edges() {
            assert!(g.has_edge(Edge::new(copy[e.u().index()], copy[e.v().index()])));
        }
    }

    #[test]
    fn packing_counts_disjoint_copies() {
        // Two vertex-disjoint C4s plus noise.
        let g = Graph::from_edges(
            10,
            [
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (4, 5),
                (5, 6),
                (6, 7),
                (7, 4),
                (8, 9),
            ],
        );
        let packing = greedy_copy_packing(&g, &Pattern::cycle(4));
        assert_eq!(packing.len(), 2);
        assert!(greedy_copy_packing(&g, &Pattern::clique(3)).is_empty());
    }

    #[test]
    fn view_based_packing_matches_a_rebuild_based_reference() {
        // The pre-kernel packing rebuilt the host graph after every
        // packed copy; the view-based loop must produce the identical
        // sequence of copies.
        fn rebuild_packing(g: &Graph, h: &Pattern) -> Vec<Vec<VertexId>> {
            let mut current = g.clone();
            let mut out = Vec::new();
            while let Some(copy) = find_copy(&current, h) {
                let hosts: std::collections::HashSet<VertexId> = copy.iter().copied().collect();
                let remove: std::collections::HashSet<Edge> = current
                    .edges()
                    .iter()
                    .copied()
                    .filter(|e| hosts.contains(&e.u()) || hosts.contains(&e.v()))
                    .collect();
                current = current.without_edges(&remove);
                out.push(copy);
            }
            out
        }
        use crate::generators::gnp;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        for _ in 0..4 {
            let g = gnp(18, 0.35, &mut rng);
            for h in [Pattern::triangle(), Pattern::cycle(4), Pattern::clique(4)] {
                assert_eq!(greedy_copy_packing(&g, &h), rebuild_packing(&g, &h));
            }
        }
    }

    #[test]
    fn find_copy_in_agrees_between_graph_and_fresh_view() {
        use crate::kernels::DeletionView;
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let view = DeletionView::new(&g);
        for h in [Pattern::triangle(), Pattern::cycle(4)] {
            assert_eq!(find_copy(&g, &h), find_copy_in(&view, &h));
        }
    }

    #[test]
    fn dense_host_search_terminates_quickly() {
        // K8 contains every pattern up to 8 vertices.
        let mut pairs = Vec::new();
        for a in 0..8u32 {
            for b in (a + 1)..8 {
                pairs.push((a, b));
            }
        }
        let g = Graph::from_edges(8, pairs);
        for h in [Pattern::clique(5), Pattern::cycle(6), Pattern::clique(8)] {
            assert!(find_copy(&g, &h).is_some());
        }
    }
}
