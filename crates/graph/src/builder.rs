use crate::{Edge, Graph, GraphError, VertexId};

/// Incremental builder for [`Graph`].
///
/// Deduplicates edges and validates vertex ranges. Non-consuming style
/// (methods take `&mut self`), with a consuming [`GraphBuilder::build`]
/// terminal.
///
/// # Example
///
/// ```
/// use triad_graph::{GraphBuilder, Edge, VertexId};
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(Edge::new(VertexId(0), VertexId(1)));
/// b.add_edge(Edge::new(VertexId(1), VertexId(0))); // duplicate, ignored
/// let g = b.build();
/// assert_eq!(g.edge_count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Number of vertices this builder targets.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Adds an edge; duplicates are removed at [`build`](Self::build) time.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range. Use
    /// [`try_add_edge`](Self::try_add_edge) for a fallible variant.
    pub fn add_edge(&mut self, e: Edge) -> &mut Self {
        self.try_add_edge(e).expect("edge endpoint out of range");
        self
    }

    /// Fallible edge insertion.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn try_add_edge(&mut self, e: Edge) -> Result<&mut Self, GraphError> {
        for w in [e.u(), e.v()] {
            if w.index() >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: w,
                    n: self.n,
                });
            }
        }
        self.edges.push(e);
        Ok(self)
    }

    /// Adds every edge from an iterator.
    pub fn extend_edges<I: IntoIterator<Item = Edge>>(&mut self, it: I) -> &mut Self {
        for e in it {
            self.add_edge(e);
        }
        self
    }

    /// Adds a triangle on three distinct vertices.
    pub fn add_triangle(&mut self, a: VertexId, b: VertexId, c: VertexId) -> &mut Self {
        self.add_edge(Edge::new(a, b));
        self.add_edge(Edge::new(b, c));
        self.add_edge(Edge::new(a, c));
        self
    }

    /// Number of (possibly duplicate) edges inserted so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes into an immutable [`Graph`], sorting and deduplicating.
    pub fn build(mut self) -> Graph {
        self.edges.sort_unstable();
        self.edges.dedup();
        Graph::from_sorted_dedup_edges(self.n, self.edges)
    }
}

impl Extend<Edge> for GraphBuilder {
    fn extend<T: IntoIterator<Item = Edge>>(&mut self, iter: T) {
        self.extend_edges(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_on_build() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(Edge::new(VertexId(0), VertexId(1)));
        b.add_edge(Edge::new(VertexId(1), VertexId(0)));
        b.add_edge(Edge::new(VertexId(1), VertexId(2)));
        assert_eq!(b.pending_edges(), 3);
        assert_eq!(b.build().edge_count(), 2);
    }

    #[test]
    fn out_of_range_is_error() {
        let mut b = GraphBuilder::new(2);
        let err = b
            .try_add_edge(Edge::new(VertexId(0), VertexId(5)))
            .unwrap_err();
        assert_eq!(
            err,
            GraphError::VertexOutOfRange {
                vertex: VertexId(5),
                n: 2
            }
        );
    }

    #[test]
    fn add_triangle_adds_three_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_triangle(VertexId(0), VertexId(1), VertexId(2));
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
        assert!(crate::triangles::contains_triangle(&g));
    }

    #[test]
    fn extend_trait() {
        let mut b = GraphBuilder::with_capacity(4, 2);
        b.extend([
            Edge::new(VertexId(0), VertexId(1)),
            Edge::new(VertexId(2), VertexId(3)),
        ]);
        assert_eq!(b.vertex_count(), 4);
        assert_eq!(b.build().edge_count(), 2);
    }
}
