//! The Boolean-Matching reduction of §4.4 (Theorem 4.16).
//!
//! In the Boolean Matching problem `BM_n`, Alice holds `x ∈ {0,1}^{2n}`,
//! Bob holds a perfect matching `M` on `[2n]` and a vector `w ∈ {0,1}^n`,
//! and they must distinguish `Mx ⊕ w = 0ⁿ` from `Mx ⊕ w = 1ⁿ` (where
//! `(Mx)_j = x_{j₁} ⊕ x_{j₂}` for the j-th matched pair). The reduction
//! maps an instance to a graph on `{u} ∪ [2n]×{0,1}` such that pair `j`
//! spawns a triangle iff `(Mx ⊕ w)_j = 0`; so the `0ⁿ` side yields `n`
//! edge-disjoint triangles (1-far from triangle-free) and the `1ⁿ` side is
//! triangle-free.

use crate::{Edge, Graph, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which promise side an instance is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BmSide {
    /// `Mx ⊕ w = 0ⁿ`: the reduction graph has `n` edge-disjoint triangles.
    AllZero,
    /// `Mx ⊕ w = 1ⁿ`: the reduction graph is triangle-free.
    AllOne,
}

/// A Boolean Matching instance.
#[derive(Debug, Clone)]
pub struct BmInstance {
    /// Alice's bit vector, length `2n`.
    x: Vec<bool>,
    /// Bob's matching: `n` disjoint pairs covering `0..2n`.
    matching: Vec<(usize, usize)>,
    /// Bob's target vector, length `n`.
    w: Vec<bool>,
}

impl BmInstance {
    /// Builds an instance from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics unless `matching` is a perfect matching on `0..x.len()` and
    /// `w.len() == matching.len()`.
    pub fn new(x: Vec<bool>, matching: Vec<(usize, usize)>, w: Vec<bool>) -> Self {
        assert_eq!(x.len(), 2 * matching.len(), "x must have 2n bits");
        assert_eq!(w.len(), matching.len(), "w must have n bits");
        let mut seen = vec![false; x.len()];
        for &(a, b) in &matching {
            assert!(
                a < x.len() && b < x.len() && a != b,
                "matching pair out of range"
            );
            assert!(!seen[a] && !seen[b], "matching must be disjoint");
            seen[a] = true;
            seen[b] = true;
        }
        BmInstance { x, matching, w }
    }

    /// Samples a uniformly random instance on `n` pairs from the given
    /// promise side: `x` and `M` uniform, `w` forced so that
    /// `Mx ⊕ w` is all-zero or all-one.
    pub fn sample<R: Rng + ?Sized>(n: usize, side: BmSide, rng: &mut R) -> Self {
        assert!(n >= 1, "need at least one pair");
        let x: Vec<bool> = (0..2 * n).map(|_| rng.gen_bool(0.5)).collect();
        let mut idx: Vec<usize> = (0..2 * n).collect();
        idx.shuffle(rng);
        let matching: Vec<(usize, usize)> = idx.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let w: Vec<bool> = matching
            .iter()
            .map(|&(a, b)| {
                let mx = x[a] ^ x[b];
                match side {
                    BmSide::AllZero => mx, // w_j = (Mx)_j ⇒ xor is 0
                    BmSide::AllOne => !mx, // xor is 1
                }
            })
            .collect();
        BmInstance { x, matching, w }
    }

    /// Number of matched pairs `n`.
    pub fn pairs(&self) -> usize {
        self.matching.len()
    }

    /// Alice's vector.
    pub fn x(&self) -> &[bool] {
        &self.x
    }

    /// Bob's matching.
    pub fn matching(&self) -> &[(usize, usize)] {
        &self.matching
    }

    /// Bob's target vector.
    pub fn w(&self) -> &[bool] {
        &self.w
    }

    /// The vector `Mx ⊕ w`.
    pub fn mx_xor_w(&self) -> Vec<bool> {
        self.matching
            .iter()
            .zip(&self.w)
            .map(|(&(a, b), &wj)| self.x[a] ^ self.x[b] ^ wj)
            .collect()
    }

    /// Vertex id of the apex `u` in the reduction graph.
    pub fn apex(&self) -> VertexId {
        VertexId(0)
    }

    /// Vertex id of `(j, side)` in the reduction graph.
    pub fn node(&self, j: usize, side: usize) -> VertexId {
        debug_assert!(j < self.x.len() && side < 2);
        VertexId((1 + 2 * j + side) as u32)
    }

    /// Alice's edges in the reduction: `{u, (j, x_j)}` for every `j`.
    pub fn alice_edges(&self) -> Vec<Edge> {
        self.x
            .iter()
            .enumerate()
            .map(|(j, &xj)| Edge::new(self.apex(), self.node(j, usize::from(xj))))
            .collect()
    }

    /// Bob's edges in the reduction: straight pairs for `w_j = 0`, crossed
    /// pairs for `w_j = 1`.
    pub fn bob_edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(2 * self.matching.len());
        for (&(a, b), &wj) in self.matching.iter().zip(&self.w) {
            if wj {
                out.push(Edge::new(self.node(a, 0), self.node(b, 1)));
                out.push(Edge::new(self.node(a, 1), self.node(b, 0)));
            } else {
                out.push(Edge::new(self.node(a, 0), self.node(b, 0)));
                out.push(Edge::new(self.node(a, 1), self.node(b, 1)));
            }
        }
        out
    }

    /// The full reduction graph on `1 + 4n` vertices.
    pub fn reduction_graph(&self) -> Graph {
        let mut b = GraphBuilder::new(1 + 2 * self.x.len());
        b.extend_edges(self.alice_edges());
        b.extend_edges(self.bob_edges());
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distance, triangles};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn all_one_side_is_triangle_free() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..10 {
            let inst = BmInstance::sample(8, BmSide::AllOne, &mut rng);
            assert!(inst.mx_xor_w().iter().all(|b| *b));
            let g = inst.reduction_graph();
            assert!(
                distance::is_triangle_free(&g),
                "AllOne side must be triangle-free"
            );
        }
    }

    #[test]
    fn all_zero_side_has_n_disjoint_triangles() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10 {
            let n = 8;
            let inst = BmInstance::sample(n, BmSide::AllZero, &mut rng);
            assert!(inst.mx_xor_w().iter().all(|b| !*b));
            let g = inst.reduction_graph();
            let packing = triangles::greedy_triangle_packing(&g);
            assert!(packing.len() >= n, "packing {} < n={n}", packing.len());
        }
    }

    #[test]
    fn triangle_iff_bit_zero_per_pair() {
        // Hand-build a mixed instance: pair 0 zero, pair 1 one.
        let x = vec![true, false, true, true];
        let matching = vec![(0, 1), (2, 3)];
        // (Mx)_0 = x0^x1 = 1; want bit0 = 0 ⇒ w0 = 1.
        // (Mx)_1 = x2^x3 = 0; want bit1 = 1 ⇒ w1 = 1.
        let inst = BmInstance::new(x, matching, vec![true, true]);
        assert_eq!(inst.mx_xor_w(), vec![false, true]);
        let g = inst.reduction_graph();
        let tris = triangles::enumerate_triangles(&g);
        assert_eq!(tris.len(), 1, "exactly the zero pair closes a triangle");
        // The triangle involves the apex.
        assert!(tris[0].vertices().contains(&inst.apex()));
    }

    #[test]
    fn alice_has_one_edge_per_index() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = BmInstance::sample(5, BmSide::AllZero, &mut rng);
        assert_eq!(inst.alice_edges().len(), 10);
        assert_eq!(inst.bob_edges().len(), 10);
        let g = inst.reduction_graph();
        assert_eq!(g.vertex_count(), 21);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn rejects_overlapping_matching() {
        let _ = BmInstance::new(vec![false; 4], vec![(0, 1), (1, 2)], vec![false, false]);
    }

    #[test]
    fn average_degree_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let inst = BmInstance::sample(64, BmSide::AllZero, &mut rng);
        let g = inst.reduction_graph();
        // 4n edges over 4n+1 vertices: average degree < 2.
        assert!(g.average_degree() < 2.0);
    }
}
