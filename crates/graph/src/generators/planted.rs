//! Certified ε-far workloads and the dense-core adversarial instance.
//!
//! [`shifted_triangles`] plants a large *edge-disjoint* triangle family via
//! a Latin-square shift construction on a tripartition, so farness is
//! certified by construction; [`far_graph`] dilutes it with noise edges to
//! hit a target average degree while staying ε-far.
//!
//! [`dense_core`] builds the instance the paper uses in §3.4.2 to motivate
//! bucketing: `h` hub vertices of degree `Θ(n)` source essentially all
//! triangles, so uniform vertex sampling needs `Θ(n/h)` samples to hit one.

use crate::{Edge, Graph, GraphBuilder, GraphError, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Plants `shifts · (n/3)` pairwise edge-disjoint triangles on `n`
/// vertices (`n` rounded down to a multiple of 3).
///
/// The vertices are split into parts `A, B, C` of size `q = n/3`; for each
/// shift `s < shifts` and index `i < q` the triangle
/// `(A[i], B[(i+s) mod q], C[(i+2s) mod q])` is added. Any two of these
/// triangles are edge-disjoint: an `A–B` edge determines `(i, s)`
/// uniquely, and similarly for the other two edge classes.
///
/// The result has `3·shifts·q` edges, average degree `2·shifts·(3q/n) ≈
/// 2·shifts`, and a certified triangle packing of `shifts·q` triangles —
/// i.e. it is `1/3`-far from triangle-free.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < 3` or
/// `shifts > n/3` (shifts beyond `q` repeat triangles).
pub fn shifted_triangles(n: usize, shifts: usize) -> Result<Graph, GraphError> {
    let q = n / 3;
    if q == 0 {
        return Err(GraphError::InvalidParameters(format!(
            "n={n} too small, need n>=3"
        )));
    }
    if shifts > q {
        return Err(GraphError::InvalidParameters(format!(
            "shifts={shifts} exceeds part size q={q}"
        )));
    }
    let mut b = GraphBuilder::with_capacity(n, 3 * shifts * q);
    emit_shifted(n, shifts, &mut |e| {
        b.add_edge(e);
    });
    Ok(b.build())
}

/// Emits the three edges of every planted triangle of
/// [`shifted_triangles`] (duplicates possible among `A–C` edges when
/// `q` is even and `shifts > q/2`; consumers deduplicate). Shared with
/// [`crate::store::FarStream`]. No RNG: the construction is
/// deterministic.
pub(crate) fn emit_shifted(n: usize, shifts: usize, emit: &mut dyn FnMut(Edge)) {
    let q = n / 3;
    for s in 0..shifts {
        for i in 0..q {
            let a = VertexId(i as u32);
            let bb = VertexId((q + (i + s) % q) as u32);
            let c = VertexId((2 * q + (i + 2 * s) % q) as u32);
            emit(Edge::new(a, bb));
            emit(Edge::new(bb, c));
            emit(Edge::new(a, c));
        }
    }
}

/// Number of planted triangles produced by [`shifted_triangles`].
pub fn shifted_triangle_count(n: usize, shifts: usize) -> usize {
    shifts * (n / 3)
}

/// Closed-form membership test for [`shifted_triangles`]`(n, shifts)`:
/// returns whether `e` is an edge of that graph **without building it**.
///
/// Derivation, with `q = n/3`, parts `A = [0, q)`, `B = [q, 2q)`,
/// `C = [2q, 3q)` and triangles `(A[i], B[(i+s) % q], C[(i+2s) % q])`
/// for `s < shifts`:
///
/// * `A[i]–B[j]` exists iff `(j − i) mod q < shifts` (solve for `s`);
/// * `B[j]–C[l]` exists iff `(l − j) mod q < shifts` (the difference of
///   the two offsets is again `s`);
/// * `A[i]–C[l]` exists iff some `s < shifts` solves `2s ≡ l − i
///   (mod q)`: for odd `q` the unique solution is `s = r·(q+1)/2 mod q`
///   with `r = (l − i) mod q`; for even `q` there are solutions only
///   for even `r`, namely `s = r/2` and `s = r/2 + q/2`.
///
/// Exhaustively cross-checked against the materialized graph in this
/// module's tests.
pub fn shifted_has_edge(n: usize, shifts: usize, e: Edge) -> bool {
    let q = n / 3;
    if q == 0 || shifts == 0 {
        return false;
    }
    let (u, v) = (e.u().index(), e.v().index());
    if v >= 3 * q {
        return false;
    }
    let r = (v % q + q - u % q) % q;
    match (u / q, v / q) {
        (0, 1) | (1, 2) => r < shifts,
        (0, 2) => {
            if q % 2 == 1 {
                (r * q.div_ceil(2)) % q < shifts
            } else {
                r.is_multiple_of(2) && (r / 2 < shifts || r / 2 + q / 2 < shifts)
            }
        }
        _ => false,
    }
}

/// Closed-form edge count of [`shifted_triangles`]`(n, shifts)`.
///
/// The `A–B` and `B–C` classes hold `q·shifts` distinct edges each; the
/// `A–C` class holds `q · |{2s mod q : s < shifts}|` — the residues are
/// all distinct when `q` is odd, and collapse pairwise (`s` with
/// `s + q/2`) when `q` is even, leaving `min(shifts, q/2)` per row.
pub fn shifted_edge_count(n: usize, shifts: usize) -> usize {
    let q = n / 3;
    if q == 0 || shifts == 0 {
        return 0;
    }
    let dac = if q % 2 == 1 {
        shifts
    } else {
        shifts.min(q / 2)
    };
    q * (2 * shifts + dac)
}

/// Builds an ε-far graph with `n` vertices and average degree ≈ `d`.
///
/// Plants enough shifted triangles to certify ε-farness at the target edge
/// count, then pads with uniformly random extra edges up to `m = nd/2`.
/// Extra edges can only create additional triangles, so the certificate
/// stands.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] when the construction cannot
/// meet the target (requires `ε ≤ 1/3`, `d ≥ 2` and `d ≤ 2n/3`).
pub fn far_graph<R: Rng + ?Sized>(
    n: usize,
    d: f64,
    epsilon: f64,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let (shifts, target_edges) = far_plan(n, d, epsilon)?;
    let base = shifted_triangles(n, shifts)?;
    if base.edge_count() >= target_edges {
        return Ok(base);
    }
    let missing = target_edges - base.edge_count();
    let mut extra = Vec::with_capacity(missing);
    emit_far_extras(n, missing, &|e| base.has_edge(e), rng, &mut |e| {
        extra.push(e)
    });
    extra.sort_unstable();
    extra.dedup();
    Ok(base.union_with(&extra))
}

/// Parameter resolution shared by [`far_graph`] and
/// [`crate::store::FarStream`]: validates `(n, d, ε)` and returns the
/// `(shifts, target_edges)` pair both construct from.
pub(crate) fn far_plan(n: usize, d: f64, epsilon: f64) -> Result<(usize, usize), GraphError> {
    if !(0.0..=1.0 / 3.0).contains(&epsilon) {
        return Err(GraphError::InvalidParameters(format!(
            "epsilon={epsilon} outside (0, 1/3]"
        )));
    }
    if d < 2.0 || d > 2.0 * n as f64 / 3.0 {
        return Err(GraphError::InvalidParameters(format!(
            "degree d={d} out of range"
        )));
    }
    let q = n / 3;
    let target_edges = (n as f64 * d / 2.0).round() as usize;
    // shifts·q triangles certify farness shifts·q / m ≥ ε ⇒
    // shifts ≥ ε·m/q. A 1.3 safety margin absorbs the slack of greedy
    // (maximal, not maximum) packing on mixed-shift triangles; clamp to
    // the feasible range.
    let mut shifts = ((1.3 * epsilon * target_edges as f64) / q as f64).ceil() as usize;
    shifts = shifts.clamp(1, q.min(target_edges / (3 * q).max(1)).max(1));
    Ok((shifts, target_edges))
}

/// The noise-padding loop of [`far_graph`], emitting accepted extra
/// edges (duplicates among them possible; consumers deduplicate).
///
/// `is_base` decides membership in the planted base: `far_graph` probes
/// the materialized graph, the stream uses [`shifted_has_edge`]. As
/// long as the two agree — pinned exhaustively in tests — both callers
/// consume the RNG identically and emit the same edge sequence.
pub(crate) fn emit_far_extras<R: Rng + ?Sized>(
    n: usize,
    missing: usize,
    is_base: &dyn Fn(Edge) -> bool,
    rng: &mut R,
    emit: &mut dyn FnMut(Edge),
) {
    let mut emitted = 0usize;
    let mut guard = 0usize;
    while emitted < missing && guard < 50 * missing + 1000 {
        guard += 1;
        let a = rng.gen_range(0..n as u32);
        let b = rng.gen_range(0..n as u32);
        if a == b {
            continue;
        }
        let e = Edge::new(VertexId(a), VertexId(b));
        if !is_base(e) {
            emitted += 1;
            emit(e);
        }
    }
}

/// Plants `copies` vertex-disjoint copies of a pattern `H` on the first
/// `copies·|V(H)|` vertices, then pads with `noise_edges` uniformly
/// random extra edges — the workload for `H`-freeness testing (the
/// paper's §5 generalization direction).
///
/// The copies are vertex-disjoint, hence edge-disjoint: the graph is at
/// least `copies / |E|`-far from `H`-free.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if the copies do not fit.
pub fn planted_copies<R: Rng + ?Sized>(
    n: usize,
    pattern: &crate::subgraphs::Pattern,
    copies: usize,
    noise_edges: usize,
    rng: &mut R,
) -> Result<Graph, GraphError> {
    let h = pattern.vertices();
    if copies * h > n {
        return Err(GraphError::InvalidParameters(format!(
            "{copies} copies of a {h}-vertex pattern exceed n = {n}"
        )));
    }
    let mut b = GraphBuilder::new(n);
    for c in 0..copies {
        let base = (c * h) as u32;
        for e in pattern.graph().edges() {
            b.add_edge(Edge::new(
                VertexId(base + e.u().0),
                VertexId(base + e.v().0),
            ));
        }
    }
    let mut placed = 0usize;
    let mut guard = 0usize;
    while placed < noise_edges && guard < 50 * noise_edges + 1000 {
        guard += 1;
        let a = rng.gen_range(0..n as u32);
        let c = rng.gen_range(0..n as u32);
        if a != c {
            b.add_edge(Edge::new(VertexId(a), VertexId(c)));
            placed += 1;
        }
    }
    Ok(b.build())
}

/// The dense-core instance of §3.4.2, returned with its hub set.
#[derive(Debug, Clone)]
pub struct DenseCore {
    graph: Graph,
    hubs: Vec<VertexId>,
}

impl DenseCore {
    /// The generated graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The high-degree hub vertices that source the triangles.
    pub fn hubs(&self) -> &[VertexId] {
        &self.hubs
    }
}

/// Builds a graph on `n` vertices where `h` hubs of degree ≈ `n - h`
/// source `Θ(n·h)` disjoint triangle-vees: for each hub a random perfect
/// matching on the non-hub vertices supplies the closing edges.
///
/// Uniform vertex sampling needs `Θ(n/h)` draws to land on a hub, which is
/// exactly the failure mode motivating the paper's bucketed search and
/// the `S`-set of AlgLow.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] unless `1 ≤ h` and
/// `n - h ≥ 4`.
pub fn dense_core<R: Rng + ?Sized>(
    n: usize,
    h: usize,
    rng: &mut R,
) -> Result<DenseCore, GraphError> {
    if h == 0 || n < h + 4 {
        return Err(GraphError::InvalidParameters(format!(
            "need 1 <= h and n-h >= 4 (n={n}, h={h})"
        )));
    }
    let hubs: Vec<VertexId> = (0..h).map(|i| VertexId(i as u32)).collect();
    let mut b = GraphBuilder::new(n);
    emit_dense_core(n, h, rng, &mut |e| {
        b.add_edge(e);
    });
    Ok(DenseCore {
        graph: b.build(),
        hubs,
    })
}

/// The sampling core behind [`dense_core`], emitting edges instead of
/// building (duplicate leaf–leaf closers possible when two hubs match
/// the same pair; consumers deduplicate). Shared with
/// [`crate::store::DenseCoreStream`] so both consume the RNG
/// identically under the same seed. Assumes `1 ≤ h` and `n − h ≥ 4`.
pub(crate) fn emit_dense_core<R: Rng + ?Sized>(
    n: usize,
    h: usize,
    rng: &mut R,
    emit: &mut dyn FnMut(Edge),
) {
    let mut perm: Vec<VertexId> = (h..n).map(|i| VertexId(i as u32)).collect();
    for hub in 0..h as u32 {
        perm.shuffle(rng);
        for pair in perm.chunks_exact(2) {
            emit(Edge::new(VertexId(hub), pair[0]));
            emit(Edge::new(VertexId(hub), pair[1]));
            emit(Edge::new(pair[0], pair[1]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{distance, triangles};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn shifted_triangles_are_edge_disjoint() {
        let n = 30;
        let shifts = 4;
        let g = shifted_triangles(n, shifts).unwrap();
        let q = n / 3;
        assert_eq!(
            g.edge_count(),
            3 * shifts * q,
            "edge-disjointness ⇔ no dedup"
        );
        // Greedy packing is maximal, not maximum; combined shifts can form
        // "mixed" triangles that divert it, but it stays within a factor 3
        // of the planted family (each packed triangle blocks ≤ 3 others).
        let packing = triangles::greedy_triangle_packing(&g);
        assert!(
            packing.len() >= shifts * q / 2,
            "packing {} < {}",
            packing.len(),
            shifts * q / 2
        );
    }

    #[test]
    fn shifted_triangles_is_nearly_third_far() {
        let g = shifted_triangles(60, 5).unwrap();
        assert!(distance::is_certifiably_far(&g, 0.3));
    }

    #[test]
    fn single_shift_is_exactly_third_far() {
        // One shift: the planted triangles are the only triangles and they
        // are vertex-disjoint, so greedy packing recovers them all.
        let g = shifted_triangles(60, 1).unwrap();
        assert!(distance::is_certifiably_far(&g, 1.0 / 3.0));
    }

    #[test]
    fn shifted_triangles_rejects_bad_params() {
        assert!(shifted_triangles(2, 1).is_err());
        assert!(shifted_triangles(30, 11).is_err());
    }

    #[test]
    fn far_graph_hits_degree_and_farness() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let n = 300;
        let d = 10.0;
        let eps = 0.1;
        let g = far_graph(n, d, eps, &mut rng).unwrap();
        let got_d = g.average_degree();
        assert!((got_d - d).abs() < 1.5, "avg degree {got_d} vs target {d}");
        assert!(
            distance::is_certifiably_far(&g, eps),
            "graph must be certified ε-far"
        );
    }

    #[test]
    fn far_graph_parameter_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(far_graph(100, 10.0, 0.5, &mut rng).is_err());
        assert!(far_graph(100, 1.0, 0.1, &mut rng).is_err());
        assert!(far_graph(9, 8.0, 0.1, &mut rng).is_err());
    }

    #[test]
    fn dense_core_structure() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let n = 200;
        let h = 4;
        let dc = dense_core(n, h, &mut rng).unwrap();
        let g = dc.graph();
        assert_eq!(dc.hubs().len(), h);
        for &hub in dc.hubs() {
            assert!(
                g.degree(hub) >= (n - h) - 1,
                "hub degree {} should be ≈ n-h",
                g.degree(hub)
            );
        }
        // Every hub sources many disjoint vees (greedy matching in the
        // link graph is maximal ⇒ at least half the planted n-h/2 vees).
        let vees = triangles::disjoint_vees_at(g, dc.hubs()[0]);
        assert!(vees >= (n - h) / 4, "hub vees {vees}");
        assert!(triangles::contains_triangle(g));
    }

    #[test]
    fn dense_core_low_vertices_have_low_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(29);
        let dc = dense_core(100, 3, &mut rng).unwrap();
        let g = dc.graph();
        for i in 3..100u32 {
            // each non-hub: one edge per hub matching + per-hub closing edge
            assert!(g.degree(VertexId(i)) <= 2 * 3 + 2, "leaf degree too high");
        }
    }

    #[test]
    fn planted_copies_are_found_and_counted() {
        use crate::subgraphs::{greedy_copy_packing, Pattern};
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let p = Pattern::clique(4);
        let g = planted_copies(60, &p, 5, 20, &mut rng).unwrap();
        assert!(g.edge_count() >= 5 * 6);
        let packing = greedy_copy_packing(&g, &p);
        assert!(packing.len() >= 5, "found only {} K4 copies", packing.len());
    }

    #[test]
    fn planted_copies_rejects_overflow() {
        use crate::subgraphs::Pattern;
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(planted_copies(10, &Pattern::clique(4), 5, 0, &mut rng).is_err());
    }

    #[test]
    fn analytic_membership_matches_materialized_exhaustively() {
        // Every part-size parity and every shift count up to q, against
        // every vertex pair — the closed forms must agree bit-for-bit
        // with the built graph (FarStream's RNG replay depends on it).
        for n in [3usize, 6, 9, 10, 12, 15, 16, 21, 30, 31] {
            let q = n / 3;
            for shifts in 0..=q {
                let g = shifted_triangles(n, shifts).unwrap();
                assert_eq!(
                    g.edge_count(),
                    shifted_edge_count(n, shifts),
                    "edge count n={n} shifts={shifts}"
                );
                for u in 0..n as u32 {
                    for v in (u + 1)..n as u32 {
                        let e = Edge::new(VertexId(u), VertexId(v));
                        assert_eq!(
                            g.has_edge(e),
                            shifted_has_edge(n, shifts, e),
                            "membership n={n} shifts={shifts} edge {u}-{v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn analytic_membership_outside_the_parts_is_false() {
        // n not divisible by 3 leaves 3q..n isolated.
        let n = 11;
        let shifts = 2;
        assert!(!shifted_has_edge(
            n,
            shifts,
            Edge::new(VertexId(0), VertexId(10))
        ));
        assert!(!shifted_has_edge(3, 0, Edge::new(VertexId(0), VertexId(1))));
        assert_eq!(shifted_edge_count(2, 1), 0);
    }

    #[test]
    fn dense_core_rejects_bad_params() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert!(dense_core(5, 3, &mut rng).is_err());
        assert!(dense_core(10, 0, &mut rng).is_err());
    }
}
