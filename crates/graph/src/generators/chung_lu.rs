//! Chung–Lu random graphs with power-law expected degrees — the
//! "realistic" workload family for the comparison experiments.
//!
//! Vertex `i` gets weight `w_i ∝ (i + i₀)^{-1/(β−1)}` (a power-law
//! degree sequence with exponent `β`), scaled to the target average
//! degree; each pair is an edge independently with probability
//! `min(1, w_u·w_v / Σw)`. Heavy-tailed instances concentrate the
//! triangles around a few hot vertices, which is exactly the regime the
//! paper's bucketing and AlgLow's hub set `S` were designed for.

use crate::{Edge, Graph, GraphBuilder, GraphError, VertexId};
use rand::Rng;

/// Parameters for a Chung–Lu power-law graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChungLu {
    n: usize,
    avg_degree: f64,
    beta: f64,
}

impl ChungLu {
    /// A sampler for `n` vertices with expected average degree
    /// `avg_degree` and power-law exponent `beta` (typically 2–3).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] unless `n ≥ 2`,
    /// `avg_degree > 0` and `beta > 1`.
    pub fn new(n: usize, avg_degree: f64, beta: f64) -> Result<Self, GraphError> {
        if n < 2 || avg_degree <= 0.0 || beta <= 1.0 {
            return Err(GraphError::InvalidParameters(format!(
                "need n ≥ 2, avg_degree > 0, beta > 1 (got n={n}, d={avg_degree}, β={beta})"
            )));
        }
        Ok(ChungLu {
            n,
            avg_degree,
            beta,
        })
    }

    /// The expected-degree weights, scaled so their mean is the target
    /// average degree (before the `min(1, ·)` clipping).
    pub fn weights(&self) -> Vec<f64> {
        let gamma = 1.0 / (self.beta - 1.0);
        let i0 = 2.0; // offset tames the head
        let mut w: Vec<f64> = (0..self.n).map(|i| (i as f64 + i0).powf(-gamma)).collect();
        let mean = w.iter().sum::<f64>() / self.n as f64;
        let scale = self.avg_degree / mean;
        for wi in &mut w {
            *wi *= scale;
        }
        w
    }

    /// Draws one instance (exact pairwise Bernoulli draws; `O(n²)` —
    /// intended for the `n ≤ 10⁴` experiment regime).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Graph {
        let mut b = GraphBuilder::new(self.n);
        self.emit(rng, &mut |e| {
            b.add_edge(e);
        });
        b.build()
    }

    /// Number of vertices a sample will have.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// The sampling core behind [`ChungLu::sample`], emitting edges
    /// instead of building — shared with [`crate::store::ChungLuStream`]
    /// so both consume the RNG identically under the same seed.
    pub(crate) fn emit<R: Rng + ?Sized>(&self, rng: &mut R, emit: &mut dyn FnMut(Edge)) {
        let w = self.weights();
        let total: f64 = w.iter().sum();
        for u in 0..self.n {
            for v in (u + 1)..self.n {
                let p = (w[u] * w[v] / total).min(1.0);
                if rng.gen_bool(p) {
                    emit(Edge::new(VertexId(u as u32), VertexId(v as u32)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(ChungLu::new(1, 4.0, 2.5).is_err());
        assert!(ChungLu::new(100, 0.0, 2.5).is_err());
        assert!(ChungLu::new(100, 4.0, 1.0).is_err());
    }

    #[test]
    fn weights_hit_target_mean_and_decay() {
        let cl = ChungLu::new(1000, 6.0, 2.5).unwrap();
        let w = cl.weights();
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        assert!((mean - 6.0).abs() < 1e-9);
        assert!(w[0] > w[10] && w[10] > w[500], "weights must decay");
    }

    #[test]
    fn average_degree_is_near_target() {
        let cl = ChungLu::new(2000, 8.0, 2.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = cl.sample(&mut rng);
        let d = g.average_degree();
        // Clipping min(1, ·) loses a bit of the head's mass.
        assert!(d > 4.0 && d < 10.0, "avg degree {d} vs target 8");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let cl = ChungLu::new(3000, 6.0, 2.2).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = cl.sample(&mut rng);
        let max = g.max_degree() as f64;
        let avg = g.average_degree();
        assert!(
            max > 8.0 * avg,
            "max degree {max} should dwarf average {avg} in a power law"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let cl = ChungLu::new(500, 5.0, 2.5).unwrap();
        let g1 = cl.sample(&mut ChaCha8Rng::seed_from_u64(9));
        let g2 = cl.sample(&mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1.edges(), g2.edges());
    }
}
