//! Degree embedding (Lemma 4.17).
//!
//! To extend a hardness result (or a workload) from average degree
//! `d = Θ(n'^c)` on `n'` vertices to a lower average degree `d'` on `n`
//! vertices, the paper pads the dense graph with isolated vertices: the
//! distance to triangle-freeness is unchanged and the average degree
//! scales by `n'/n`.

use crate::{Graph, GraphError};

/// Pads `g` with isolated vertices up to a total of `n` vertices.
///
/// Edges, triangles and the distance to triangle-freeness are exactly
/// preserved; only the average degree shrinks by the factor
/// `g.vertex_count() / n`.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameters`] if `n < g.vertex_count()`.
///
/// # Example
///
/// ```
/// use triad_graph::{Graph, generators::pad_with_isolated_vertices};
/// let dense = Graph::from_edges(3, [(0, 1), (1, 2), (0, 2)]);
/// let padded = pad_with_isolated_vertices(&dense, 12).unwrap();
/// assert_eq!(padded.vertex_count(), 12);
/// assert_eq!(padded.edge_count(), 3);
/// assert_eq!(padded.average_degree(), dense.average_degree() * 3.0 / 12.0);
/// ```
pub fn pad_with_isolated_vertices(g: &Graph, n: usize) -> Result<Graph, GraphError> {
    if n < g.vertex_count() {
        return Err(GraphError::InvalidParameters(format!(
            "target n={n} smaller than current vertex count {}",
            g.vertex_count()
        )));
    }
    Ok(Graph::from_sorted_dedup_edges(n, g.edges().to_vec()))
}

/// Given a target `(n, d')` and the dense-core exponent `c` (the paper's
/// `d = Θ(n^c)`), returns the number of *core* vertices `n' = (d'·n)^{1/(1+c)}`
/// whose padding into `n` vertices yields average degree `Θ(d')`.
pub fn core_size_for(n: usize, d_target: f64, c: f64) -> usize {
    ((d_target * n as f64).powf(1.0 / (1.0 + c)))
        .round()
        .max(3.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnp_with_average_degree;
    use crate::{distance, Graph};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn padding_preserves_distance() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let before = distance::distance_bounds(&g);
        let padded = pad_with_isolated_vertices(&g, 50).unwrap();
        let after = distance::distance_bounds(&padded);
        assert_eq!(before, after);
    }

    #[test]
    fn padding_scales_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let core = gnp_with_average_degree(100, 20.0, &mut rng);
        let padded = pad_with_isolated_vertices(&core, 400).unwrap();
        let expected = core.average_degree() * 100.0 / 400.0;
        assert!((padded.average_degree() - expected).abs() < 1e-9);
    }

    #[test]
    fn rejects_shrinking() {
        let g = Graph::from_edges(5, [(0, 1)]);
        assert!(pad_with_isolated_vertices(&g, 3).is_err());
    }

    #[test]
    fn core_size_for_sqrt_regime() {
        // c = 1/2 (degree √n core): n' = (d·n)^{2/3}.
        let np = core_size_for(1_000_000, 10.0, 0.5);
        let expected = (10.0f64 * 1_000_000.0).powf(2.0 / 3.0);
        assert!((np as f64 - expected).abs() / expected < 0.01);
        // The resulting padded degree is d·(n'/n)·... sanity: core degree
        // √n' times n'/n ≈ d.
        let core_degree = (np as f64).sqrt();
        let padded_degree = core_degree * np as f64 / 1_000_000.0;
        assert!(
            (padded_degree - 10.0).abs() / 10.0 < 0.05,
            "got {padded_degree}"
        );
    }
}
