//! The hard distribution μ of the paper's §4.2.1.
//!
//! A tripartite graph `G = (U ∪ V₁ ∪ V₂, E)` where every cross-part pair is
//! an edge independently with probability `γ/√n`. The average degree is
//! `Θ(√n)` and, for sufficiently small `γ`, a sample is `Ω(1)`-far from
//! triangle-free with probability at least `1/2` (Lemma 4.5).
//!
//! In the three-player lower bound, Alice holds the `U×V₁` edges, Bob the
//! `U×V₂` edges, and Charlie the `V₁×V₂` edges; Charlie must output a
//! triangle edge from his side.

use crate::{Edge, Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Which part of the tripartition a vertex belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Part {
    /// The apex part `U`.
    U,
    /// Left base part `V₁`.
    V1,
    /// Right base part `V₂`.
    V2,
}

/// Sampler for the μ distribution.
///
/// # Example
///
/// ```
/// use triad_graph::generators::TripartiteMu;
/// use rand::SeedableRng;
/// let mu = TripartiteMu::new(64, 0.5);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let inst = mu.sample(&mut rng);
/// assert_eq!(inst.graph().vertex_count(), 3 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripartiteMu {
    part_size: usize,
    gamma: f64,
}

impl TripartiteMu {
    /// A μ sampler with parts of size `part_size` and edge probability
    /// `γ/√part_size`.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not positive or the resulting probability
    /// exceeds 1.
    pub fn new(part_size: usize, gamma: f64) -> Self {
        assert!(gamma > 0.0, "gamma must be positive");
        assert!(
            gamma / (part_size as f64).sqrt() <= 1.0,
            "edge probability gamma/sqrt(n) must be at most 1"
        );
        TripartiteMu { part_size, gamma }
    }

    /// Size of each of the three parts.
    pub fn part_size(&self) -> usize {
        self.part_size
    }

    /// The γ constant.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Per-pair edge probability `γ/√n`.
    pub fn edge_probability(&self) -> f64 {
        self.gamma / (self.part_size as f64).sqrt()
    }

    /// Draws one instance.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> MuInstance {
        let n = self.part_size;
        let p = self.edge_probability();
        let mut b = GraphBuilder::new(3 * n);
        let add_block = |rng: &mut R, off_a: usize, off_b: usize, out: &mut Vec<Edge>| {
            for i in 0..n {
                for j in 0..n {
                    if rng.gen_bool(p) {
                        let e =
                            Edge::new(VertexId((off_a + i) as u32), VertexId((off_b + j) as u32));
                        out.push(e);
                    }
                }
            }
        };
        let mut uv1 = Vec::new();
        let mut uv2 = Vec::new();
        let mut v1v2 = Vec::new();
        add_block(rng, 0, n, &mut uv1); // U × V1
        add_block(rng, 0, 2 * n, &mut uv2); // U × V2
        add_block(rng, n, 2 * n, &mut v1v2); // V1 × V2
        for e in uv1.iter().chain(&uv2).chain(&v1v2) {
            b.add_edge(*e);
        }
        MuInstance {
            graph: b.build(),
            part_size: n,
            uv1,
            uv2,
            v1v2,
        }
    }
}

/// One sample from μ, retaining the three cross-part edge blocks — exactly
/// the three players' inputs in the lower-bound argument.
#[derive(Debug, Clone)]
pub struct MuInstance {
    graph: Graph,
    part_size: usize,
    uv1: Vec<Edge>,
    uv2: Vec<Edge>,
    v1v2: Vec<Edge>,
}

impl MuInstance {
    /// The sampled graph on `3·part_size` vertices.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Size of each part.
    pub fn part_size(&self) -> usize {
        self.part_size
    }

    /// Which part a vertex belongs to.
    pub fn part_of(&self, v: VertexId) -> Part {
        let i = v.index();
        if i < self.part_size {
            Part::U
        } else if i < 2 * self.part_size {
            Part::V1
        } else {
            Part::V2
        }
    }

    /// Alice's input: the `U×V₁` edges.
    pub fn alice_edges(&self) -> &[Edge] {
        &self.uv1
    }

    /// Bob's input: the `U×V₂` edges.
    pub fn bob_edges(&self) -> &[Edge] {
        &self.uv2
    }

    /// Charlie's input: the `V₁×V₂` edges.
    pub fn charlie_edges(&self) -> &[Edge] {
        &self.v1v2
    }

    /// The three players' inputs in order (Alice, Bob, Charlie).
    pub fn player_inputs(&self) -> [Vec<Edge>; 3] {
        [self.uv1.clone(), self.uv2.clone(), self.v1v2.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn parts_and_blocks_are_consistent() {
        let mu = TripartiteMu::new(32, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let inst = mu.sample(&mut rng);
        assert_eq!(inst.part_of(VertexId(0)), Part::U);
        assert_eq!(inst.part_of(VertexId(32)), Part::V1);
        assert_eq!(inst.part_of(VertexId(64)), Part::V2);
        for e in inst.alice_edges() {
            let parts = (inst.part_of(e.u()), inst.part_of(e.v()));
            assert!(parts == (Part::U, Part::V1) || parts == (Part::V1, Part::U));
        }
        for e in inst.charlie_edges() {
            let parts = (inst.part_of(e.u()), inst.part_of(e.v()));
            assert!(parts == (Part::V1, Part::V2) || parts == (Part::V2, Part::V1));
        }
        let total = inst.alice_edges().len() + inst.bob_edges().len() + inst.charlie_edges().len();
        assert_eq!(total, inst.graph().edge_count());
    }

    #[test]
    fn edge_count_matches_expectation() {
        let mu = TripartiteMu::new(100, 2.0);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let inst = mu.sample(&mut rng);
        // 3 blocks of n² pairs each, p = 2/√100 = 0.2 ⇒ E[m] = 3·10000·0.2.
        let expected = 3.0 * 10_000.0 * 0.2;
        let got = inst.graph().edge_count() as f64;
        assert!((got - expected).abs() < 6.0 * expected.sqrt());
    }

    #[test]
    fn average_degree_is_theta_sqrt_n() {
        let mu = TripartiteMu::new(144, 1.5);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let inst = mu.sample(&mut rng);
        // Expected degree of every vertex: 2n·γ/√n = 2γ√n = 2·1.5·12 = 36.
        let d = inst.graph().average_degree();
        assert!(d > 18.0 && d < 54.0, "degree {d} not Θ(√n)");
    }

    #[test]
    #[should_panic(expected = "at most 1")]
    fn rejects_probability_over_one() {
        let _ = TripartiteMu::new(4, 3.0);
    }

    #[test]
    fn no_edges_within_parts() {
        let mu = TripartiteMu::new(20, 1.0);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let inst = mu.sample(&mut rng);
        for e in inst.graph().edges() {
            assert_ne!(inst.part_of(e.u()), inst.part_of(e.v()));
        }
    }
}
