//! Behrend sets and Ruzsa–Szemerédi graphs — the construction the
//! paper's §5 conjectures is needed for dense-graph lower bounds
//! ("devising a hard distribution for dense graphs … will require some
//! sophisticated utilization of Behrend graphs").
//!
//! A *Behrend set* is a subset of `[m]` free of 3-term arithmetic
//! progressions, of size `m^{1-o(1)}` (constructed from lattice points
//! on a sphere, written in a small base). From any 3-AP-free set `S`
//! the *Ruzsa–Szemerédi* tripartite graph on parts `X = [m]`,
//! `Y = [2m]`, `Z = [3m]` places, for every `x ∈ X, s ∈ S`, the triangle
//! `(x, x+s, x+2s)`. Freeness of 3-APs makes these `m·|S|` triangles the
//! **only** triangles, and they are edge-disjoint — so the graph is
//! `1/3`-far from triangle-free while every edge lies in exactly one
//! triangle: maximally far, minimally detectable, the canonical hard
//! instance for sampling testers.

use crate::{triangles, Edge, Graph, GraphBuilder, VertexId};

/// A 3-AP-free subset of `0..m` by Behrend's sphere construction: write
/// numbers in base `2d−1` with digits `< d`, and keep those whose digit
/// vectors lie on the most popular sphere `Σ digitᵢ² = r`. Digit sums
/// can't wrap, so a 3-AP in the set forces three collinear points on a
/// sphere — impossible unless equal.
pub fn behrend_set(m: usize) -> Vec<u64> {
    if m <= 2 {
        return (0..m as u64).collect();
    }
    // Pick digits-count k and base to cover m; d ≈ exp(√(ln m)) balances
    // the loss, but for the moderate m we use, a small fixed sweep of
    // (d, k) picking the best yield is simpler and near-optimal.
    let mut best: Vec<u64> = vec![0];
    for d in 2usize..=12 {
        let base = 2 * d - 1;
        let mut k = 1usize;
        while (base as u64)
            .checked_pow(k as u32)
            .map(|p| p < m as u64)
            .unwrap_or(false)
        {
            k += 1;
        }
        // Enumerate digit vectors with digits < d; bucket by radius.
        let mut by_radius: std::collections::HashMap<u64, Vec<u64>> =
            std::collections::HashMap::new();
        let mut digits = vec![0usize; k];
        loop {
            let mut value: u64 = 0;
            let mut radius: u64 = 0;
            for &dg in &digits {
                value = value * base as u64 + dg as u64;
                radius += (dg * dg) as u64;
            }
            if value < m as u64 {
                by_radius.entry(radius).or_default().push(value);
            }
            // Increment the digit vector.
            let mut i = 0;
            loop {
                if i == k {
                    break;
                }
                digits[i] += 1;
                if digits[i] < d {
                    break;
                }
                digits[i] = 0;
                i += 1;
            }
            if i == k {
                break;
            }
        }
        if let Some(candidate) = by_radius.into_values().max_by_key(Vec::len) {
            if candidate.len() > best.len() {
                best = candidate;
            }
        }
    }
    best.sort_unstable();
    best
}

/// Checks that `set` (sorted or not) has no 3-term arithmetic
/// progression `a + c = 2b` with distinct `a, b, c`.
pub fn is_three_ap_free(set: &[u64]) -> bool {
    let members: std::collections::HashSet<u64> = set.iter().copied().collect();
    for (i, &a) in set.iter().enumerate() {
        for &c in &set[i + 1..] {
            let sum = a + c;
            if sum % 2 == 0 {
                let b = sum / 2;
                if b != a && b != c && members.contains(&b) {
                    return false;
                }
            }
        }
    }
    true
}

/// A Ruzsa–Szemerédi instance: the graph plus its defining triangles.
#[derive(Debug, Clone)]
pub struct RuzsaSzemeredi {
    graph: Graph,
    m: usize,
    set: Vec<u64>,
}

impl RuzsaSzemeredi {
    /// Builds the RS graph over base parameter `m` with the Behrend set
    /// of `[m]`. The graph has `6m` vertices (parts of sizes `m`, `2m`,
    /// `3m`), `3·m·|S|` edges, and exactly `m·|S|` triangles, pairwise
    /// edge-disjoint.
    ///
    /// # Example
    ///
    /// ```
    /// use triad_graph::generators::RuzsaSzemeredi;
    /// use triad_graph::triangles::count_triangles;
    ///
    /// let rs = RuzsaSzemeredi::new(32);
    /// assert_eq!(
    ///     count_triangles(rs.graph()) as usize,
    ///     rs.planted_triangles(),
    ///     "3-AP-freeness forbids spurious triangles"
    /// );
    /// ```
    pub fn new(m: usize) -> Self {
        let set = behrend_set(m);
        let mut b = GraphBuilder::new(6 * m);
        for x in 0..m as u64 {
            for &s in &set {
                let y = m as u64 + x + s; // Y-part offset m, index x+s < 2m
                let z = 3 * m as u64 + x + 2 * s; // Z-part offset 3m, index x+2s < 3m
                let (vx, vy, vz) = (VertexId(x as u32), VertexId(y as u32), VertexId(z as u32));
                b.add_edge(Edge::new(vx, vy));
                b.add_edge(Edge::new(vy, vz));
                b.add_edge(Edge::new(vx, vz));
            }
        }
        RuzsaSzemeredi {
            graph: b.build(),
            m,
            set,
        }
    }

    /// The graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The base parameter `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// The underlying Behrend set.
    pub fn set(&self) -> &[u64] {
        &self.set
    }

    /// The number of defining triangles `m·|S|`.
    pub fn planted_triangles(&self) -> usize {
        self.m * self.set.len()
    }
}

/// Verifies the headline property: every edge of `g` participates in
/// exactly one triangle.
pub fn every_edge_in_exactly_one_triangle(g: &Graph) -> bool {
    let ts = triangles::enumerate_triangles(g);
    let mut count: std::collections::HashMap<Edge, usize> = std::collections::HashMap::new();
    for t in &ts {
        for e in t.edges() {
            *count.entry(e).or_insert(0) += 1;
        }
    }
    g.edges().iter().all(|e| count.get(e) == Some(&1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance;

    #[test]
    fn behrend_sets_are_ap_free_and_large() {
        for m in [10usize, 64, 256, 1024] {
            let s = behrend_set(m);
            assert!(is_three_ap_free(&s), "m={m}");
            assert!(s.iter().all(|v| *v < m as u64));
            // The m^{1-o(1)} asymptotics bite slowly; at these moderate m
            // the sphere construction delivers ≈ √m (measured in
            // tests/behrend_probe.rs), far above the O(log m) of greedy
            // doubling sets.
            if m >= 256 {
                assert!(
                    s.len() as f64 >= 0.75 * (m as f64).powf(0.5),
                    "m={m}: |S| = {} too small",
                    s.len()
                );
            } else {
                assert!(s.len() >= 2);
            }
        }
    }

    #[test]
    fn ap_free_checker_catches_progressions() {
        assert!(is_three_ap_free(&[1, 2, 4, 8]));
        assert!(!is_three_ap_free(&[1, 3, 5]));
        assert!(!is_three_ap_free(&[0, 4, 2])); // unsorted still caught
        assert!(is_three_ap_free(&[]));
        assert!(is_three_ap_free(&[7]));
    }

    #[test]
    fn rs_graph_shape() {
        let rs = RuzsaSzemeredi::new(32);
        let g = rs.graph();
        assert_eq!(g.vertex_count(), 192);
        assert_eq!(g.edge_count(), 3 * rs.planted_triangles());
        assert_eq!(
            triangles::count_triangles(g) as usize,
            rs.planted_triangles(),
            "3-AP-freeness must forbid spurious triangles"
        );
    }

    #[test]
    fn rs_every_edge_in_exactly_one_triangle() {
        for m in [16usize, 48] {
            let rs = RuzsaSzemeredi::new(m);
            assert!(
                every_edge_in_exactly_one_triangle(rs.graph()),
                "m={m}: RS property violated"
            );
        }
    }

    #[test]
    fn rs_is_exactly_one_third_far() {
        let rs = RuzsaSzemeredi::new(24);
        let g = rs.graph();
        // Edge-disjoint triangles covering every edge: distance = #triangles.
        let b = distance::distance_bounds(g);
        assert_eq!(b.lower, rs.planted_triangles());
        assert_eq!(b.upper, rs.planted_triangles());
        assert!(distance::is_certifiably_far(g, 1.0 / 3.0));
    }
}
