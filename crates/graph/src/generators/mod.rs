//! Input-distribution generators.
//!
//! Every workload the paper uses or implies:
//!
//! * [`gnp`](fn@gnp) — Erdős–Rényi `G(n, p)` (the generic "average degree d" input),
//! * [`tripartite`] — the hard distribution μ of §4.2 (tripartite, each
//!   cross-part edge iid with probability `γ/√n`),
//! * [`planted`] — certified ε-far graphs built from edge-disjoint triangle
//!   families, and the dense-core adversarial instance of §3.4.2,
//! * [`bhm`] — the Boolean-Matching reduction graphs of §4.4,
//! * [`embed`] — the degree-embedding padding of Lemma 4.17.

pub mod behrend;
pub mod bhm;
pub mod chung_lu;
pub mod embed;
pub mod gnp;
pub mod planted;
pub mod tripartite;

pub use behrend::{behrend_set, RuzsaSzemeredi};
pub use bhm::{BmInstance, BmSide};
pub use chung_lu::ChungLu;
pub use embed::pad_with_isolated_vertices;
pub use gnp::{gnp, gnp_with_average_degree};
pub use planted::{dense_core, far_graph, planted_copies, shifted_triangles, DenseCore};
pub use tripartite::{MuInstance, TripartiteMu};
