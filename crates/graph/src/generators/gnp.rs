//! Erdős–Rényi random graphs.

use crate::{Edge, Graph, GraphBuilder, VertexId};
use rand::Rng;

/// Samples `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`
/// for sparse graphs.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    let mut b = GraphBuilder::new(n);
    emit_gnp(n, p, rng, &mut |e| {
        b.add_edge(e);
    });
    b.build()
}

/// The `G(n, p)` sampling core, emitting edges instead of building.
///
/// Shared verbatim between [`gnp`] and the out-of-core
/// [`crate::store::GnpStream`] so both consume the RNG identically and
/// produce the same edge set under the same seed.
pub(crate) fn emit_gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R, emit: &mut dyn FnMut(Edge)) {
    if n < 2 || p == 0.0 {
        return;
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                emit(Edge::new(VertexId(u), VertexId(v)));
            }
        }
        return;
    }
    // Walk pair indices 0..n(n-1)/2 with geometric jumps.
    let total = n as u64 * (n as u64 - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (u.ln() / log_q).floor() as u64;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx >= total {
            break;
        }
        let (a, bb) = pair_from_index(n as u64, idx);
        emit(Edge::new(VertexId(a as u32), VertexId(bb as u32)));
        idx += 1;
        if idx >= total {
            break;
        }
    }
}

/// Maps a linear index in `0..n(n-1)/2` to the corresponding unordered pair
/// (row-major over the strictly-upper-triangular matrix).
fn pair_from_index(n: u64, idx: u64) -> (u64, u64) {
    // Row a contributes (n-1-a) pairs. Find the row by solving the
    // triangular-number inequality, then refine (floating-point start,
    // exact integer correction).
    let mut a = {
        let nf = n as f64;
        let k = idx as f64;
        let disc = (2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * k;
        (((2.0 * nf - 1.0) - disc.max(0.0).sqrt()) / 2.0)
            .floor()
            .max(0.0) as u64
    };
    let row_start = |a: u64| a * n - a * (a + 1) / 2;
    while a > 0 && row_start(a) > idx {
        a -= 1;
    }
    while a + 1 < n && row_start(a + 1) <= idx {
        a += 1;
    }
    let b = a + 1 + (idx - row_start(a));
    (a, b)
}

/// Samples `G(n, p)` with `p` chosen so the expected average degree is `d`:
/// `p = d / (n-1)`.
///
/// # Panics
///
/// Panics if `d > n-1` (no simple graph has such average degree).
pub fn gnp_with_average_degree<R: Rng + ?Sized>(n: usize, d: f64, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    assert!(d <= (n - 1) as f64, "average degree cannot exceed n-1");
    gnp(n, d / (n - 1) as f64, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn pair_index_bijection() {
        for n in [2u64, 3, 5, 17] {
            let mut seen = std::collections::HashSet::new();
            let total = n * (n - 1) / 2;
            for idx in 0..total {
                let (a, b) = pair_from_index(n, idx);
                assert!(a < b && b < n, "n={n} idx={idx} -> ({a},{b})");
                assert!(seen.insert((a, b)));
            }
            assert_eq!(seen.len(), total as usize);
        }
    }

    #[test]
    fn extreme_probabilities() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(gnp(10, 0.0, &mut rng).edge_count(), 0);
        assert_eq!(gnp(5, 1.0, &mut rng).edge_count(), 10);
        assert_eq!(gnp(1, 0.5, &mut rng).edge_count(), 0);
    }

    #[test]
    fn edge_count_concentrates() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, &mut rng);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.edge_count() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
            "expected ~{expected}, got {got}"
        );
    }

    #[test]
    fn average_degree_targeting() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = gnp_with_average_degree(1000, 12.0, &mut rng);
        let d = g.average_degree();
        assert!((d - 12.0).abs() < 2.0, "average degree {d} too far from 12");
    }

    #[test]
    #[should_panic(expected = "average degree cannot exceed")]
    fn rejects_impossible_degree() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let _ = gnp_with_average_degree(4, 5.0, &mut rng);
    }

    #[test]
    fn deterministic_under_seed() {
        let g1 = gnp(100, 0.1, &mut ChaCha8Rng::seed_from_u64(9));
        let g2 = gnp(100, 0.1, &mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(g1.edges(), g2.edges());
    }
}
