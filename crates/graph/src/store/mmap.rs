//! Hand-rolled read-only memory mapping — the zero-copy backing of
//! [`super::CsrStore`] on little-endian unix targets.
//!
//! This is the one place in `triad-graph` that uses `unsafe`: raw
//! `extern "C"` declarations of `mmap(2)`/`munmap(2)` (no registry
//! access, so no `libc` crate) plus the slice casts that reinterpret the
//! mapped little-endian file bytes as `&[u64]`/`&[u32]`. Both casts are
//! sound by construction:
//!
//! * `mmap` returns a page-aligned base, and the `docs/IO.md` layout
//!   places the offset array at byte 40 (8-aligned) and the adjacency
//!   array at `40 + 8·(n+1)` (4-aligned), so the element alignment of
//!   every reinterpreted slice is satisfied;
//! * the target is little-endian (`cfg`-gated at the module inclusion
//!   site), so the on-disk and in-memory representations coincide;
//! * the mapping is `PROT_READ`/`MAP_PRIVATE` and lives as long as the
//!   [`Mapping`], which `munmap`s exactly once on drop.
//!
//! Every other target takes the buffered `read`-into-`Vec` fallback in
//! [`super`] — same trait surface, same validation, owned memory.

#![allow(unsafe_code)]

use std::ffi::c_void;
use std::fs::File;
use std::io;
use std::os::unix::io::AsRawFd;

const PROT_READ: i32 = 1;
const MAP_PRIVATE: i32 = 2;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

/// A read-only, private mapping of the first `len` bytes of a file.
#[derive(Debug)]
pub(super) struct Mapping {
    ptr: *const u8,
    len: usize,
}

// SAFETY: the mapping is read-only (`PROT_READ`) and exclusively owned —
// no interior mutability, no aliasing writers — so sharing references
// across threads and moving the handle between threads are both sound.
unsafe impl Send for Mapping {}
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps the first `len` bytes of `file` read-only.
    ///
    /// # Errors
    ///
    /// Returns the OS error when `mmap` fails (callers fall back to the
    /// owned backing).
    pub(super) fn map(file: &File, len: usize) -> io::Result<Mapping> {
        if len == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "cannot map an empty region",
            ));
        }
        // SAFETY: plain mmap(2) call; a NULL hint and a valid borrowed fd
        // are always acceptable inputs, and failure is reported as
        // MAP_FAILED (checked below) with errno set.
        let ptr = unsafe {
            mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ,
                MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        Ok(Mapping {
            ptr: ptr as *const u8,
            len,
        })
    }

    /// Total mapped length in bytes.
    #[cfg(test)]
    pub(super) fn len(&self) -> usize {
        self.len
    }

    /// Reinterprets `count` little-endian `u64` words starting at
    /// `byte_offset` as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or misaligned — the caller
    /// (the store) validates the file geometry before asking.
    pub(super) fn u64s(&self, byte_offset: usize, count: usize) -> &[u64] {
        let bytes = count.checked_mul(8).expect("u64 slice size overflow");
        assert!(
            byte_offset.is_multiple_of(8) && byte_offset + bytes <= self.len,
            "u64 slice out of bounds or misaligned"
        );
        // SAFETY: in-bounds (asserted), 8-aligned (page-aligned base +
        // 8-aligned offset), little-endian target, lifetime tied to self.
        unsafe { std::slice::from_raw_parts(self.ptr.add(byte_offset).cast::<u64>(), count) }
    }

    /// Reinterprets `count` little-endian `u32` words starting at
    /// `byte_offset` as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or misaligned.
    pub(super) fn u32s(&self, byte_offset: usize, count: usize) -> &[u32] {
        let bytes = count.checked_mul(4).expect("u32 slice size overflow");
        assert!(
            byte_offset.is_multiple_of(4) && byte_offset + bytes <= self.len,
            "u32 slice out of bounds or misaligned"
        );
        // SAFETY: as in `u64s`, with 4-byte alignment.
        unsafe { std::slice::from_raw_parts(self.ptr.add(byte_offset).cast::<u32>(), count) }
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `ptr`/`len` came from a successful mmap and are
        // unmapped exactly once; failure here is unrecoverable and
        // ignorable (the region stays mapped until process exit).
        unsafe {
            munmap(self.ptr as *mut c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn maps_reads_and_unmaps() {
        let dir = std::env::temp_dir().join(format!("triad-mmap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("words.bin");
        let mut f = File::create(&path).unwrap();
        let words: Vec<u64> = (0..32u64).map(|i| i.wrapping_mul(0x9E37_79B9)).collect();
        for w in &words {
            f.write_all(&w.to_le_bytes()).unwrap();
        }
        f.flush().unwrap();
        drop(f);

        let file = File::open(&path).unwrap();
        let map = Mapping::map(&file, 32 * 8).unwrap();
        assert_eq!(map.len(), 256);
        assert_eq!(map.u64s(0, 32), &words[..]);
        // The same bytes through the u32 window: little-endian low word
        // first.
        let u32s = map.u32s(8, 2);
        assert_eq!(u64::from(u32s[0]), words[1] & 0xFFFF_FFFF);
        assert_eq!(u64::from(u32s[1]), words[1] >> 32);
        drop(map);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_empty_regions() {
        let file = File::open("/dev/null").unwrap();
        assert!(Mapping::map(&file, 0).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slices_panic() {
        let dir = std::env::temp_dir().join(format!("triad-mmap-oob-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("small.bin");
        std::fs::write(&path, [0u8; 16]).unwrap();
        let file = File::open(&path).unwrap();
        let map = Mapping::map(&file, 16).unwrap();
        let _ = map.u64s(8, 2);
    }
}
