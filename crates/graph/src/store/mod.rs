//! Out-of-core graph storage: the versioned, checksummed binary CSR
//! file format and the [`CsrStore`] that serves it to the kernels.
//!
//! The normative byte-level specification lives in `docs/IO.md`; in
//! brief, a `.csr` file is
//!
//! ```text
//! magic "TRIADCSR" | version u32 | flags u32 | n u64 | m u64 | checksum u64
//! offsets: (n+1) × u64            // offsets[0] = 0, offsets[n] = 2m
//! adjacency: 2m × u32             // row v = adjacency[offsets[v]..offsets[v+1]]
//! ```
//!
//! all little-endian. Files are written **once** by the streaming
//! [`writer`] (generators emit edges chunk-by-chunk; the full edge list
//! is never resident) and then opened read-only: [`CsrStore::open`]
//! memory-maps the file on little-endian unix targets (raw
//! `mmap`/`munmap`, see the `mmap` module's docs) and falls back to
//! a buffered read into owned `Vec`s everywhere else — behind the same
//! [`crate::AsCsr`] surface, with bit-identical results (pinned by
//! `tests/store_differential.rs`).
//!
//! Like the `wire.rs` frame codec in `triad-comm`, the reader is
//! paranoid *before* it commits resources: header, declared geometry and
//! file size are checked before any mapping or allocation, and the full
//! structural battery (monotone offsets, strictly sorted rows, symmetry,
//! checksum) runs before a store is handed to callers. Setting the
//! `TRIAD_NO_MMAP` environment variable forces the owned fallback — CI
//! uses it to exercise that path on hosts where mmap works fine.

use std::fs::File;
use std::io::Read;
use std::ops::Range;
use std::path::Path;

use crate::csr::AsCsr;
use crate::{Edge, Graph, VertexId};

#[cfg(all(unix, target_endian = "little"))]
mod mmap;
pub mod streams;
pub mod writer;

pub use streams::{ChungLuStream, DenseCoreStream, FarStream, GnpStream};
pub use writer::{write_csr, write_csr_with_budget, EdgeStream, WriteSummary};

/// The 8-byte magic at offset 0 of every `.csr` file.
pub const MAGIC: [u8; 8] = *b"TRIADCSR";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

/// Fixed header size in bytes: magic + version + flags + n + m + checksum.
pub const HEADER_BYTES: usize = 40;

/// Byte offset of the checksum field within the header.
pub(crate) const CHECKSUM_OFFSET: u64 = 32;

/// splitmix64 finalizer — the checksum's mixing function. Kept local so
/// `triad-graph` stays independent of `triad-comm` (which pins the same
/// constants for seed derivation).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// The sequential checksum chain of `docs/IO.md`: starting from a fixed
/// IV, each 64-bit word (in spec order: `n`, `m`, every offset word,
/// every adjacency `u32` zero-extended) is folded in as
/// `state = mix64(state ^ word)`. Order-sensitive by construction, so
/// swapped rows or reordered neighbors change the digest.
#[derive(Debug, Clone)]
pub(crate) struct Checksum(u64);

impl Checksum {
    pub(crate) fn new() -> Checksum {
        Checksum(0x9E37_79B9_7F4A_7C15)
    }

    pub(crate) fn absorb(&mut self, word: u64) {
        self.0 = mix64(self.0 ^ word);
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Everything that can go wrong opening, validating or writing a `.csr`
/// file. Mirrors the granularity of `io::ReadError` so tests can pin the
/// precise rejection, not just "it failed".
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem error.
    Io(std::io::Error),
    /// The file is shorter than its header and declared geometry demand.
    Truncated {
        /// Bytes the header (or the fixed header size) requires.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// The first eight bytes are not `TRIADCSR`.
    BadMagic,
    /// A version this build does not speak.
    BadVersion(u32),
    /// Nonzero reserved flags.
    BadFlags(u32),
    /// Structurally invalid contents: offset/row/symmetry/checksum
    /// violations, oversized geometry, or trailing bytes.
    Corrupt(String),
    /// A graph handed to the writer that cannot be encoded (endpoint out
    /// of the declared vertex range, vertex count exceeding `u32`).
    InvalidGraph(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "csr store i/o error: {e}"),
            StoreError::Truncated { expected, actual } => {
                write!(
                    f,
                    "csr file truncated: need {expected} bytes, have {actual}"
                )
            }
            StoreError::BadMagic => write!(f, "not a csr file (bad magic)"),
            StoreError::BadVersion(v) => write!(f, "unsupported csr version {v}"),
            StoreError::BadFlags(v) => write!(f, "unsupported csr flags {v:#x}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt csr file: {msg}"),
            StoreError::InvalidGraph(msg) => write!(f, "cannot encode graph: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Parsed header fields (already range-checked).
struct Header {
    n: usize,
    m: usize,
    checksum: u64,
}

fn parse_header(bytes: &[u8; HEADER_BYTES]) -> Result<Header, StoreError> {
    if bytes[0..8] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(StoreError::BadVersion(version));
    }
    let flags = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if flags != 0 {
        return Err(StoreError::BadFlags(flags));
    }
    let n = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let m = u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes"));
    let checksum = u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes"));
    if n > u64::from(u32::MAX) {
        return Err(StoreError::Corrupt(format!(
            "vertex count {n} exceeds the u32 id space"
        )));
    }
    let n = usize::try_from(n)
        .map_err(|_| StoreError::Corrupt(format!("vertex count {n} does not fit this platform")))?;
    let m = usize::try_from(m)
        .ok()
        .filter(|m| m.checked_mul(2).is_some())
        .ok_or_else(|| StoreError::Corrupt(format!("edge count {m} does not fit this platform")))?;
    Ok(Header { n, m, checksum })
}

/// Exact byte length a well-formed file with this geometry must have.
fn expected_len(n: usize, m: usize) -> Result<u64, StoreError> {
    let words = (n as u64)
        .checked_add(1)
        .and_then(|w| w.checked_mul(8))
        .ok_or_else(|| StoreError::Corrupt("offset section size overflow".into()))?;
    let slots = (m as u64)
        .checked_mul(8)
        .ok_or_else(|| StoreError::Corrupt("adjacency section size overflow".into()))?;
    (HEADER_BYTES as u64)
        .checked_add(words)
        .and_then(|t| t.checked_add(slots))
        .ok_or_else(|| StoreError::Corrupt("file size overflow".into()))
}

/// The two ways a validated file's sections can be held.
enum Backing {
    /// Borrowed straight from a read-only memory mapping.
    #[cfg(all(unix, target_endian = "little"))]
    Mapped {
        map: mmap::Mapping,
        words: usize,
        slots: usize,
    },
    /// Decoded into owned vectors — the portable fallback.
    Owned { offsets: Vec<u64>, adj: Vec<u32> },
}

impl Backing {
    fn offsets(&self) -> &[u64] {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { map, words, .. } => map.u64s(HEADER_BYTES, *words),
            Backing::Owned { offsets, .. } => offsets,
        }
    }

    fn adj(&self) -> &[u32] {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { map, words, slots } => map.u32s(HEADER_BYTES + words * 8, *slots),
            Backing::Owned { adj, .. } => adj,
        }
    }

    fn is_mapped(&self) -> bool {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { .. } => true,
            Backing::Owned { .. } => false,
        }
    }

    /// Heap bytes owned by the backing itself (0 when mapped).
    fn owned_bytes(&self) -> usize {
        match self {
            #[cfg(all(unix, target_endian = "little"))]
            Backing::Mapped { .. } => 0,
            Backing::Owned { offsets, adj } => offsets.len() * 8 + adj.len() * 4,
        }
    }
}

/// The VertexId slice cast — isolated so the `unsafe` is one function
/// with one invariant, usable by both backings.
#[allow(unsafe_code)]
mod cast {
    use crate::VertexId;

    /// Reinterprets sorted neighbor words as vertex ids.
    pub(super) fn vertex_ids(raw: &[u32]) -> &[VertexId] {
        // SAFETY: `VertexId` is `#[repr(transparent)]` over `u32`, so the
        // two slices have identical layout, and the lifetime is inherited.
        unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<VertexId>(), raw.len()) }
    }
}

/// How [`CsrStore::open_with`] should obtain the file's sections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Map if the platform can (and `TRIAD_NO_MMAP` is unset), else read.
    Auto,
    /// Require the memory mapping; error out if it fails.
    #[cfg(all(unix, target_endian = "little"))]
    Mapped,
    /// Always decode into owned vectors.
    Owned,
}

/// A validated, read-only CSR graph backed by a `.csr` file — mapped
/// when possible, owned otherwise. Implements [`AsCsr`], so every kernel
/// and partition scheme runs over it directly; the only heap the mapped
/// variant allocates is the `(n+1)`-word forward-edge index that gives
/// the canonical edge order in `O(log n)` per lookup.
pub struct CsrStore {
    n: usize,
    m: usize,
    checksum: u64,
    file_bytes: u64,
    backing: Backing,
    /// `edge_starts[u]` = number of canonical edges `(x, y)` with `x < u`;
    /// equivalently a prefix sum of forward degrees. Length `n + 1`,
    /// `edge_starts[n] = m`.
    edge_starts: Vec<u64>,
}

impl std::fmt::Debug for CsrStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CsrStore")
            .field("n", &self.n)
            .field("m", &self.m)
            .field("mapped", &self.backing.is_mapped())
            .field("file_bytes", &self.file_bytes)
            .finish()
    }
}

impl CsrStore {
    /// Opens and fully validates a `.csr` file, preferring the memory
    /// mapping and falling back to the owned read when mapping is
    /// unavailable (non-unix, big-endian, `TRIAD_NO_MMAP` set, or the
    /// `mmap` call itself failing).
    ///
    /// # Errors
    ///
    /// Any [`StoreError`]: i/o, header, geometry or structural-validation
    /// failures. Format errors are identical whichever backing serves the
    /// bytes.
    pub fn open(path: impl AsRef<Path>) -> Result<CsrStore, StoreError> {
        Self::open_with(path.as_ref(), Mode::Auto)
    }

    /// Opens with the memory-mapped backing, erroring if mapping fails.
    /// Only available on little-endian unix targets.
    ///
    /// # Errors
    ///
    /// As [`CsrStore::open`], plus the OS error when `mmap` refuses.
    #[cfg(all(unix, target_endian = "little"))]
    pub fn open_mapped(path: impl AsRef<Path>) -> Result<CsrStore, StoreError> {
        Self::open_with(path.as_ref(), Mode::Mapped)
    }

    /// Opens with the portable owned backing (buffered read into `Vec`s),
    /// regardless of platform capabilities.
    ///
    /// # Errors
    ///
    /// As [`CsrStore::open`].
    pub fn open_owned(path: impl AsRef<Path>) -> Result<CsrStore, StoreError> {
        Self::open_with(path.as_ref(), Mode::Owned)
    }

    fn open_with(path: &Path, mode: Mode) -> Result<CsrStore, StoreError> {
        let mut file = File::open(path)?;
        let actual = file.metadata()?.len();
        if actual < HEADER_BYTES as u64 {
            return Err(StoreError::Truncated {
                expected: HEADER_BYTES as u64,
                actual,
            });
        }
        let mut head = [0u8; HEADER_BYTES];
        file.read_exact(&mut head)?;
        let header = parse_header(&head)?;
        let expected = expected_len(header.n, header.m)?;
        if actual < expected {
            return Err(StoreError::Truncated { expected, actual });
        }
        if actual > expected {
            return Err(StoreError::Corrupt(format!(
                "{} trailing bytes past the declared geometry",
                actual - expected
            )));
        }
        let words = header.n + 1;
        let slots = header.m * 2;
        let backing = match mode {
            #[cfg(all(unix, target_endian = "little"))]
            Mode::Mapped => Backing::Mapped {
                map: mmap::Mapping::map(&file, expected as usize)?,
                words,
                slots,
            },
            Mode::Owned => read_owned(&mut file, words, slots)?,
            Mode::Auto => {
                #[cfg(all(unix, target_endian = "little"))]
                {
                    if std::env::var_os("TRIAD_NO_MMAP").is_none() {
                        match mmap::Mapping::map(&file, expected as usize) {
                            Ok(map) => Backing::Mapped { map, words, slots },
                            Err(_) => read_owned(&mut file, words, slots)?,
                        }
                    } else {
                        read_owned(&mut file, words, slots)?
                    }
                }
                #[cfg(not(all(unix, target_endian = "little")))]
                {
                    read_owned(&mut file, words, slots)?
                }
            }
        };
        let edge_starts = validate(header.n, header.m, &backing, header.checksum)?;
        Ok(CsrStore {
            n: header.n,
            m: header.m,
            checksum: header.checksum,
            file_bytes: expected,
            backing,
            edge_starts,
        })
    }

    /// Number of vertices `n`.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges `m`.
    pub fn edge_count(&self) -> usize {
        self.m
    }

    /// Average degree `2m/n`.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.m as f64 / self.n as f64
        }
    }

    /// `true` when the adjacency is served straight from the mapping.
    pub fn mapped(&self) -> bool {
        self.backing.is_mapped()
    }

    /// The validated file's checksum (as stored in its header).
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Total size of the backing file in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Heap bytes this store owns: the forward-edge index plus, for the
    /// owned backing, the decoded sections. For a mapped store this is
    /// `≈ 8·(n+1)` regardless of `m` — the allocation-side evidence that
    /// kernels run over the mapping, not a materialized copy.
    pub fn owned_bytes(&self) -> usize {
        self.edge_starts.len() * 8 + self.backing.owned_bytes()
    }

    /// Materializes the store as an in-memory [`Graph`] — the
    /// differential suites compare kernels over both representations.
    pub fn to_graph(&self) -> Graph {
        let mut edges = Vec::with_capacity(self.m);
        AsCsr::for_each_edge(self, &mut |_, e| edges.push(e));
        Graph::from_sorted_dedup_edges(self.n, edges)
    }

    fn row(&self, v: usize) -> &[VertexId] {
        let offsets = self.backing.offsets();
        let (lo, hi) = (offsets[v] as usize, offsets[v + 1] as usize);
        cast::vertex_ids(&self.backing.adj()[lo..hi])
    }

    /// The forward suffix of row `u`: neighbors strictly greater than `u`,
    /// i.e. the canonical edges `(u, v)` in order.
    fn forward_row(&self, u: usize) -> &[VertexId] {
        let row = self.row(u);
        let fwd = (self.edge_starts[u + 1] - self.edge_starts[u]) as usize;
        &row[row.len() - fwd..]
    }
}

impl AsCsr for CsrStore {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn edge_count(&self) -> usize {
        self.m
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        assert!(v.index() < self.n, "vertex {v} out of range");
        self.row(v.index())
    }

    fn adj_start(&self, v: VertexId) -> usize {
        assert!(v.index() < self.n, "vertex {v} out of range");
        self.backing.offsets()[v.index()] as usize
    }

    fn edge_at(&self, i: usize) -> Edge {
        assert!(i < self.m, "edge index {i} out of range");
        let u = self.edge_starts.partition_point(|&s| s <= i as u64) - 1;
        let v = self.forward_row(u)[i - self.edge_starts[u] as usize];
        Edge::new(VertexId(u as u32), v)
    }

    fn edge_index(&self, e: Edge) -> Option<usize> {
        let (u, v) = e.endpoints();
        if v.index() >= self.n {
            return None;
        }
        let fwd = self.forward_row(u.index());
        fwd.binary_search(&v)
            .ok()
            .map(|pos| self.edge_starts[u.index()] as usize + pos)
    }

    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(usize, Edge) -> bool) {
        if range.start >= range.end {
            return;
        }
        assert!(range.end <= self.m, "edge range out of bounds");
        let mut u = self
            .edge_starts
            .partition_point(|&s| s <= range.start as u64)
            - 1;
        let mut i = range.start;
        while i < range.end {
            let fwd = self.forward_row(u);
            let skip = i - self.edge_starts[u] as usize;
            for &v in &fwd[skip..] {
                if i >= range.end {
                    return;
                }
                if !f(i, Edge::new(VertexId(u as u32), v)) {
                    return;
                }
                i += 1;
            }
            u += 1;
        }
    }
}

fn read_owned(file: &mut File, words: usize, slots: usize) -> Result<Backing, StoreError> {
    // Decode in bounded chunks so the transient byte buffer stays small
    // even for multi-million-edge files.
    const CHUNK: usize = 1 << 16;
    let mut buf = vec![0u8; CHUNK];
    let mut offsets = Vec::with_capacity(words);
    let mut remaining = words * 8;
    while remaining > 0 {
        let take = remaining.min(CHUNK & !7);
        file.read_exact(&mut buf[..take])?;
        offsets.extend(
            buf[..take]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes"))),
        );
        remaining -= take;
    }
    let mut adj = Vec::with_capacity(slots);
    let mut remaining = slots * 4;
    while remaining > 0 {
        let take = remaining.min(CHUNK & !3);
        file.read_exact(&mut buf[..take])?;
        adj.extend(
            buf[..take]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))),
        );
        remaining -= take;
    }
    Ok(Backing::Owned { offsets, adj })
}

/// The structural battery: offsets, rows, symmetry, checksum. Returns the
/// forward-edge prefix index on success.
fn validate(n: usize, m: usize, backing: &Backing, declared: u64) -> Result<Vec<u64>, StoreError> {
    let offsets = backing.offsets();
    let adj = backing.adj();
    debug_assert_eq!(offsets.len(), n + 1);
    debug_assert_eq!(adj.len(), 2 * m);
    if offsets[0] != 0 {
        return Err(StoreError::Corrupt(format!(
            "offsets[0] = {}, expected 0",
            offsets[0]
        )));
    }
    if offsets[n] != 2 * m as u64 {
        return Err(StoreError::Corrupt(format!(
            "offsets[n] = {}, expected 2m = {}",
            offsets[n],
            2 * m
        )));
    }
    // The whole offset section must be validated before any row is
    // sliced: the symmetry check below reads the mate row of a forward
    // edge, which can sit arbitrarily far ahead of the cursor, so a
    // decreasing offset there would otherwise panic instead of erroring.
    // Monotone + `offsets[n] == 2m` also bounds every row, so no
    // per-row overrun check is needed.
    for u in 0..n {
        if offsets[u] > offsets[u + 1] {
            return Err(StoreError::Corrupt(format!(
                "offsets decrease at vertex {u} ({} > {})",
                offsets[u],
                offsets[u + 1]
            )));
        }
    }
    let mut checksum = Checksum::new();
    checksum.absorb(n as u64);
    checksum.absorb(m as u64);
    let mut edge_starts = Vec::with_capacity(n + 1);
    let mut forward = 0u64;
    edge_starts.push(0);
    for u in 0..n {
        checksum.absorb(offsets[u]);
        let (lo, hi) = (offsets[u], offsets[u + 1]);
        let row = &adj[lo as usize..hi as usize];
        let mut prev: Option<u32> = None;
        for &v in row {
            if v as usize >= n {
                return Err(StoreError::Corrupt(format!(
                    "row {u} references vertex {v} ≥ n = {n}"
                )));
            }
            if v as usize == u {
                return Err(StoreError::Corrupt(format!("self-loop at vertex {u}")));
            }
            if let Some(p) = prev {
                if v <= p {
                    return Err(StoreError::Corrupt(format!(
                        "row {u} is not strictly increasing ({p} then {v})"
                    )));
                }
            }
            prev = Some(v);
        }
        // Forward entries (v > u) are the canonical edges (u, v); each
        // must have its mate u in row v. Checking every forward entry and
        // then the total forward count == m accounts for every slot.
        let fwd_start = row.partition_point(|&v| (v as usize) < u);
        for &v in &row[fwd_start..] {
            let mate_lo = offsets[v as usize] as usize;
            let mate_hi = offsets[v as usize + 1] as usize;
            if adj[mate_lo..mate_hi].binary_search(&(u as u32)).is_err() {
                return Err(StoreError::Corrupt(format!(
                    "asymmetric edge: {v} ∈ row {u} but {u} ∉ row {v}"
                )));
            }
        }
        forward += (row.len() - fwd_start) as u64;
        edge_starts.push(forward);
    }
    checksum.absorb(offsets[n]);
    if forward != m as u64 {
        return Err(StoreError::Corrupt(format!(
            "forward-edge count {forward} disagrees with declared m = {m}"
        )));
    }
    for &v in adj {
        checksum.absorb(u64::from(v));
    }
    let computed = checksum.finish();
    if computed != declared {
        return Err(StoreError::Corrupt(format!(
            "checksum mismatch: header declares {declared:#018x}, contents hash to {computed:#018x}"
        )));
    }
    Ok(edge_starts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = Checksum::new();
        a.absorb(1);
        a.absorb(2);
        let mut b = Checksum::new();
        b.absorb(2);
        b.absorb(1);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(Checksum::new().finish(), 0);
    }

    #[test]
    fn expected_len_matches_geometry_and_overflows_cleanly() {
        assert_eq!(expected_len(0, 0).unwrap(), 48);
        assert_eq!(expected_len(4, 5).unwrap(), 40 + 5 * 8 + 10 * 4);
        assert!(expected_len(usize::MAX - 1, usize::MAX / 2).is_err());
    }

    #[test]
    fn header_rejections_are_precise() {
        let mut good = [0u8; HEADER_BYTES];
        good[0..8].copy_from_slice(&MAGIC);
        good[8..12].copy_from_slice(&VERSION.to_le_bytes());
        assert!(parse_header(&good).is_ok());

        let mut bad = good;
        bad[0] = b'X';
        assert!(matches!(parse_header(&bad), Err(StoreError::BadMagic)));

        let mut bad = good;
        bad[8..12].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(parse_header(&bad), Err(StoreError::BadVersion(7))));

        let mut bad = good;
        bad[12..16].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(parse_header(&bad), Err(StoreError::BadFlags(1))));

        let mut bad = good;
        bad[16..24].copy_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes());
        assert!(matches!(parse_header(&bad), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn error_display_and_source() {
        let e = StoreError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        let t = StoreError::Truncated {
            expected: 48,
            actual: 10,
        };
        assert!(t.to_string().contains("48"));
        assert!(std::error::Error::source(&t).is_none());
    }
}
