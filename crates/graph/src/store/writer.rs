//! The streaming `.csr` writer: many cheap replays, bounded memory.
//!
//! The writer never holds the full edge list. It consumes an
//! [`EdgeStream`] — a *replayable* edge source (generators replay by
//! reseeding their RNG; a materialized [`Graph`] replays by iterating
//! its slice) — in passes:
//!
//! 1. **Degree pass**: one replay counts per-vertex emission-inclusive
//!    degrees and validates endpoints. No edges are stored.
//! 2. **Window passes**: vertex rows are grouped into windows whose
//!    total entry count fits the memory budget; one replay per window
//!    collects only that window's `(row, neighbor)` pairs, sorts and
//!    deduplicates them, and appends the neighbor words to a temporary
//!    adjacency file. Duplicate emissions (overlapping triangles,
//!    colliding extras) are eliminated here, per row, so any emission
//!    order and multiplicity yields the identical file.
//! 3. **Assembly pass**: header + offsets are written, the temporary
//!    adjacency is copied through while the `docs/IO.md` checksum chain
//!    absorbs every word, and the digest is patched into the header.
//!
//! Peak memory is `O(n + window)` — the two degree arrays plus one
//! window's pairs — independent of `m`.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use super::{Checksum, StoreError, CHECKSUM_OFFSET, MAGIC, VERSION};
use crate::{Edge, Graph};

/// A replayable edge source with a declared vertex count.
///
/// `replay` must emit the **same multiset of edges** on every call —
/// generators guarantee this by constructing a fresh seeded RNG per
/// replay. Emission order and duplicates are irrelevant: the writer
/// sorts and deduplicates per row, so equal edge sets yield
/// byte-identical files.
pub trait EdgeStream {
    /// Number of vertices `n`; every emitted endpoint must be `< n`.
    fn vertex_count(&self) -> usize;

    /// Emits every edge (in any order, duplicates allowed) to `emit`.
    fn replay(&self, emit: &mut dyn FnMut(Edge));
}

/// A materialized graph is the trivial stream: replay iterates the
/// canonical edge slice.
impl EdgeStream for Graph {
    fn vertex_count(&self) -> usize {
        Graph::vertex_count(self)
    }

    fn replay(&self, emit: &mut dyn FnMut(Edge)) {
        for &e in self.edges() {
            emit(e);
        }
    }
}

/// What one [`write_csr`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteSummary {
    /// Vertices declared in the header.
    pub vertices: usize,
    /// Deduplicated edge count written.
    pub edges: usize,
    /// Total file size in bytes.
    pub file_bytes: u64,
    /// Row windows the adjacency was built in (each cost one replay).
    pub windows: usize,
}

/// Default window budget: 4Mi `(row, neighbor)` entries ≈ 32 MiB of
/// transient pair storage, regardless of graph size.
pub const DEFAULT_WINDOW_ENTRIES: usize = 1 << 22;

/// Streams `stream` into a `.csr` file at `path` with the default
/// memory budget. See [`write_csr_with_budget`].
///
/// # Errors
///
/// Filesystem errors, endpoints outside `0..vertex_count()`
/// ([`StoreError::InvalidGraph`]) or a vertex count exceeding the `u32`
/// id space.
pub fn write_csr(
    path: impl AsRef<Path>,
    stream: &dyn EdgeStream,
) -> Result<WriteSummary, StoreError> {
    write_csr_with_budget(path, stream, DEFAULT_WINDOW_ENTRIES)
}

/// [`write_csr`] with an explicit window budget (in adjacency entries;
/// clamped to at least 2). Smaller budgets mean more windows and more
/// replays but strictly less memory — the output file is byte-identical
/// at any budget, which `tests` below pin.
///
/// # Errors
///
/// As [`write_csr`].
pub fn write_csr_with_budget(
    path: impl AsRef<Path>,
    stream: &dyn EdgeStream,
    window_entries: usize,
) -> Result<WriteSummary, StoreError> {
    let path = path.as_ref();
    let n = stream.vertex_count();
    if n > u32::MAX as usize {
        return Err(StoreError::InvalidGraph(format!(
            "vertex count {n} exceeds the u32 id space"
        )));
    }
    let tmp_path = adjacency_tmp_path(path);
    let result = write_inner(path, &tmp_path, stream, n, window_entries.max(2));
    std::fs::remove_file(&tmp_path).ok();
    result
}

fn adjacency_tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".adj.tmp");
    PathBuf::from(os)
}

fn write_inner(
    path: &Path,
    tmp_path: &Path,
    stream: &dyn EdgeStream,
    n: usize,
    window_entries: usize,
) -> Result<WriteSummary, StoreError> {
    // Pass 1: emission-inclusive degrees + endpoint validation.
    let mut deg_dup = vec![0u64; n];
    let mut bad: Option<String> = None;
    stream.replay(&mut |e| {
        // Edge guarantees u < v, so checking v covers both endpoints.
        if e.v().index() >= n {
            if bad.is_none() {
                bad = Some(format!(
                    "edge {}–{} outside the declared vertex range 0..{n}",
                    e.u(),
                    e.v()
                ));
            }
            return;
        }
        deg_dup[e.u().index()] += 1;
        deg_dup[e.v().index()] += 1;
    });
    if let Some(msg) = bad {
        return Err(StoreError::InvalidGraph(msg));
    }

    // Row windows sized by the budget (at least one row each).
    let mut windows: Vec<(usize, usize)> = Vec::new();
    let mut lo = 0usize;
    while lo < n {
        let mut hi = lo;
        let mut acc = 0u64;
        while hi < n && (hi == lo || acc + deg_dup[hi] <= window_entries as u64) {
            acc += deg_dup[hi];
            hi += 1;
        }
        windows.push((lo, hi));
        lo = hi;
    }

    // Pass 2 (× windows): collect, sort, dedup and append each window's
    // rows to the temporary adjacency file.
    let mut deg = vec![0u64; n];
    {
        let mut tmp = std::io::BufWriter::new(File::create(tmp_path)?);
        for &(lo, hi) in &windows {
            let cap = deg_dup[lo..hi].iter().sum::<u64>();
            let mut pairs: Vec<(u32, u32)> =
                Vec::with_capacity(usize::try_from(cap).unwrap_or(usize::MAX));
            stream.replay(&mut |e| {
                let (u, v) = (e.u().0, e.v().0);
                if (lo..hi).contains(&(u as usize)) {
                    pairs.push((u, v));
                }
                if (lo..hi).contains(&(v as usize)) {
                    pairs.push((v, u));
                }
            });
            pairs.sort_unstable();
            pairs.dedup();
            for &(row, nbr) in &pairs {
                deg[row as usize] += 1;
                tmp.write_all(&nbr.to_le_bytes())?;
            }
        }
        tmp.flush()?;
    }
    drop(deg_dup);

    let slots: u64 = deg.iter().sum();
    debug_assert!(slots.is_multiple_of(2), "every edge contributes two slots");
    let m = slots / 2;

    // Pass 3: assemble header + offsets + adjacency, computing the
    // checksum chain in spec order, then patch the digest in.
    let mut w = std::io::BufWriter::new(File::create(path)?);
    w.write_all(&MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&(n as u64).to_le_bytes())?;
    w.write_all(&m.to_le_bytes())?;
    w.write_all(&0u64.to_le_bytes())?; // checksum patched below
    let mut checksum = Checksum::new();
    checksum.absorb(n as u64);
    checksum.absorb(m);
    let mut acc = 0u64;
    checksum.absorb(acc);
    w.write_all(&acc.to_le_bytes())?;
    for &d in &deg {
        acc += d;
        checksum.absorb(acc);
        w.write_all(&acc.to_le_bytes())?;
    }
    drop(deg);

    let mut tmp = File::open(tmp_path)?;
    let actual = tmp.metadata()?.len();
    if actual != slots * 4 {
        return Err(StoreError::Corrupt(format!(
            "temporary adjacency holds {actual} bytes, expected {}",
            slots * 4
        )));
    }
    const CHUNK: usize = 1 << 16; // multiple of 4
    let mut buf = vec![0u8; CHUNK];
    let mut remaining = usize::try_from(slots * 4).map_err(|_| {
        StoreError::InvalidGraph("adjacency section does not fit this platform".into())
    })?;
    while remaining > 0 {
        let take = remaining.min(CHUNK);
        tmp.read_exact(&mut buf[..take])?;
        for c in buf[..take].chunks_exact(4) {
            checksum.absorb(u64::from(u32::from_le_bytes(
                c.try_into().expect("4 bytes"),
            )));
        }
        w.write_all(&buf[..take])?;
        remaining -= take;
    }
    w.flush()?;
    let mut file = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
    file.seek(SeekFrom::Start(CHECKSUM_OFFSET))?;
    file.write_all(&checksum.finish().to_le_bytes())?;
    let file_bytes = 40 + (n as u64 + 1) * 8 + slots * 4;

    Ok(WriteSummary {
        vertices: n,
        edges: usize::try_from(m).expect("m fits: 2m slots were materialized"),
        file_bytes,
        windows: windows.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CsrStore;
    use crate::VertexId;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("triad-writer-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn graph_round_trips_through_the_file() {
        let dir = tempdir("roundtrip");
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (2, 5)]);
        let path = dir.join("g.csr");
        let summary = write_csr(&path, &g).unwrap();
        assert_eq!(summary.vertices, 6);
        assert_eq!(summary.edges, 5);
        assert_eq!(summary.file_bytes, std::fs::metadata(&path).unwrap().len());
        let store = CsrStore::open(&path).unwrap();
        assert_eq!(store.to_graph(), g);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_bytes_are_identical_at_any_window_budget() {
        let dir = tempdir("windows");
        let g = Graph::from_edges(
            40,
            (0..39u32)
                .map(|i| (i, i + 1))
                .chain([(0, 20), (5, 30), (1, 39)]),
        );
        let single = dir.join("one.csr");
        let many = dir.join("many.csr");
        let s1 = write_csr_with_budget(&single, &g, usize::MAX >> 8).unwrap();
        let s2 = write_csr_with_budget(&many, &g, 2).unwrap();
        assert_eq!(s1.windows, 1);
        assert!(s2.windows > 5, "tiny budget must split: {}", s2.windows);
        assert_eq!(
            std::fs::read(&single).unwrap(),
            std::fs::read(&many).unwrap(),
            "window count must not leak into the bytes"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    struct DupStream;

    impl EdgeStream for DupStream {
        fn vertex_count(&self) -> usize {
            4
        }

        fn replay(&self, emit: &mut dyn FnMut(Edge)) {
            // Duplicates, shuffled order.
            for (u, v) in [(2, 3), (0, 1), (2, 3), (1, 2), (0, 1), (0, 1)] {
                emit(Edge::new(VertexId(u), VertexId(v)));
            }
        }
    }

    #[test]
    fn duplicate_emissions_dedup_to_the_canonical_file() {
        let dir = tempdir("dups");
        let a = dir.join("dup.csr");
        let b = dir.join("clean.csr");
        write_csr(&a, &DupStream).unwrap();
        write_csr(&b, &Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])).unwrap();
        assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    struct OutOfRange;

    impl EdgeStream for OutOfRange {
        fn vertex_count(&self) -> usize {
            3
        }

        fn replay(&self, emit: &mut dyn FnMut(Edge)) {
            emit(Edge::new(VertexId(0), VertexId(7)));
        }
    }

    #[test]
    fn out_of_range_endpoints_are_rejected() {
        let dir = tempdir("oob");
        let err = write_csr(dir.join("bad.csr"), &OutOfRange).unwrap_err();
        assert!(matches!(err, StoreError::InvalidGraph(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    struct TooManyVertices;

    impl EdgeStream for TooManyVertices {
        fn vertex_count(&self) -> usize {
            u32::MAX as usize + 2
        }

        fn replay(&self, _emit: &mut dyn FnMut(Edge)) {}
    }

    #[test]
    fn oversized_vertex_counts_fail_before_allocating() {
        let dir = tempdir("huge");
        let err = write_csr(dir.join("huge.csr"), &TooManyVertices).unwrap_err();
        assert!(matches!(err, StoreError::InvalidGraph(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_graphs_round_trip() {
        let dir = tempdir("empty");
        let path = dir.join("empty.csr");
        let g = Graph::from_edges(0, []);
        let s = write_csr(&path, &g).unwrap();
        assert_eq!(s.file_bytes, 48);
        let store = CsrStore::open(&path).unwrap();
        assert_eq!(store.vertex_count(), 0);
        assert_eq!(store.edge_count(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
