//! Replayable generator streams: the paper's workload families as
//! [`EdgeStream`]s, so million-edge instances go straight to a `.csr`
//! file without ever materializing the edge list.
//!
//! Each stream owns validated parameters plus a seed; every
//! [`EdgeStream::replay`] constructs a **fresh** `ChaCha8Rng` from that
//! seed and runs the *same sampling core* as the in-memory generator in
//! [`crate::generators`] (the cores are shared functions, not copies).
//! Replays therefore always emit the same multiset of edges, and a
//! stream written to disk decodes to exactly the graph the materializing
//! generator returns under the same seed — pinned per family in the
//! tests below and cross-backing in `tests/store_differential.rs`.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use super::writer::EdgeStream;
use crate::generators::chung_lu::ChungLu;
use crate::generators::{gnp, planted};
use crate::{Edge, GraphError};

/// Streaming `G(n, p)` — the replayable form of [`crate::generators::gnp()`].
///
/// Geometric skipping makes a replay `O(n + m)`, so even the windowed
/// writer's repeated replays stay cheap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GnpStream {
    n: usize,
    p: f64,
    seed: u64,
}

impl GnpStream {
    /// A stream over `G(n, p)` drawn with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] unless `p ∈ [0, 1]`.
    pub fn new(n: usize, p: f64, seed: u64) -> Result<Self, GraphError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameters(format!(
                "edge probability p={p} outside [0, 1]"
            )));
        }
        Ok(GnpStream { n, p, seed })
    }

    /// `G(n, p)` with `p = d/(n−1)`, matching
    /// [`crate::generators::gnp_with_average_degree`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidParameters`] unless `n ≥ 2` and
    /// `d ≤ n−1`.
    pub fn with_average_degree(n: usize, d: f64, seed: u64) -> Result<Self, GraphError> {
        if n < 2 {
            return Err(GraphError::InvalidParameters(
                "need at least two vertices".into(),
            ));
        }
        if d < 0.0 || d > (n - 1) as f64 {
            return Err(GraphError::InvalidParameters(format!(
                "average degree {d} outside [0, n−1]"
            )));
        }
        GnpStream::new(n, d / (n - 1) as f64, seed)
    }

    /// The edge probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl EdgeStream for GnpStream {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn replay(&self, emit: &mut dyn FnMut(Edge)) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        gnp::emit_gnp(self.n, self.p, &mut rng, emit);
    }
}

/// Streaming Chung–Lu power-law graphs — the replayable form of
/// [`ChungLu::sample`].
///
/// A replay recomputes the `O(n)` weight vector and runs the `O(n²)`
/// pairwise Bernoulli core; memory stays `O(n)` but replays are as
/// expensive as sampling, so this family is for the `n ≤ 10⁴` regime
/// (like its in-memory counterpart).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChungLuStream {
    model: ChungLu,
    seed: u64,
}

impl ChungLuStream {
    /// A stream drawing one Chung–Lu instance with `seed`.
    ///
    /// # Errors
    ///
    /// As [`ChungLu::new`].
    pub fn new(n: usize, avg_degree: f64, beta: f64, seed: u64) -> Result<Self, GraphError> {
        Ok(ChungLuStream {
            model: ChungLu::new(n, avg_degree, beta)?,
            seed,
        })
    }
}

impl EdgeStream for ChungLuStream {
    fn vertex_count(&self) -> usize {
        self.model.vertex_count()
    }

    fn replay(&self, emit: &mut dyn FnMut(Edge)) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        self.model.emit(&mut rng, emit);
    }
}

/// Streaming certified ε-far graphs — the replayable form of
/// [`crate::generators::far_graph`].
///
/// The shifted-triangle base is deterministic and is emitted by the
/// shared core; the noise-padding loop replays the RNG against the
/// *closed-form* base membership
/// (`shifted_has_edge`), which agrees exactly with
/// probing the materialized base, so the extras — and hence the final
/// edge set — match `far_graph` under the same seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FarStream {
    n: usize,
    shifts: usize,
    missing: usize,
    seed: u64,
}

impl FarStream {
    /// A stream over the ε-far instance with average degree ≈ `d` drawn
    /// with `seed`.
    ///
    /// # Errors
    ///
    /// As [`crate::generators::far_graph`].
    pub fn new(n: usize, d: f64, epsilon: f64, seed: u64) -> Result<Self, GraphError> {
        let (shifts, target_edges) = planted::far_plan(n, d, epsilon)?;
        if n / 3 == 0 {
            return Err(GraphError::InvalidParameters(format!(
                "n={n} too small, need n>=3"
            )));
        }
        let base_edges = planted::shifted_edge_count(n, shifts);
        Ok(FarStream {
            n,
            shifts,
            missing: target_edges.saturating_sub(base_edges),
            seed,
        })
    }

    /// Number of planted (certifying) triangle shifts.
    pub fn shifts(&self) -> usize {
        self.shifts
    }
}

impl EdgeStream for FarStream {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn replay(&self, emit: &mut dyn FnMut(Edge)) {
        planted::emit_shifted(self.n, self.shifts, emit);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        planted::emit_far_extras(
            self.n,
            self.missing,
            &|e| planted::shifted_has_edge(self.n, self.shifts, e),
            &mut rng,
            emit,
        );
    }
}

/// Streaming dense-core instances — the replayable form of
/// [`crate::generators::dense_core`]. Hubs are vertices `0..h`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseCoreStream {
    n: usize,
    h: usize,
    seed: u64,
}

impl DenseCoreStream {
    /// A stream over the `h`-hub instance on `n` vertices drawn with
    /// `seed`.
    ///
    /// # Errors
    ///
    /// As [`crate::generators::dense_core`]: needs `1 ≤ h`, `n − h ≥ 4`.
    pub fn new(n: usize, h: usize, seed: u64) -> Result<Self, GraphError> {
        if h == 0 || n < h + 4 {
            return Err(GraphError::InvalidParameters(format!(
                "need 1 <= h and n-h >= 4 (n={n}, h={h})"
            )));
        }
        Ok(DenseCoreStream { n, h, seed })
    }

    /// Number of hub vertices (ids `0..h`).
    pub fn hubs(&self) -> usize {
        self.h
    }
}

impl EdgeStream for DenseCoreStream {
    fn vertex_count(&self) -> usize {
        self.n
    }

    fn replay(&self, emit: &mut dyn FnMut(Edge)) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        planted::emit_dense_core(self.n, self.h, &mut rng, emit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{dense_core, far_graph, gnp as gnp_fn};
    use crate::store::{write_csr_with_budget, CsrStore};
    use crate::Graph;
    use std::path::PathBuf;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("triad-streams-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// Writes `stream` at two very different window budgets and checks
    /// both files decode to `expected` — proving replays reproduce the
    /// edge multiset and the writer is budget-invariant.
    fn assert_stream_matches(tag: &str, stream: &dyn EdgeStream, expected: &Graph) {
        let dir = tempdir(tag);
        for (label, budget) in [("wide", usize::MAX >> 8), ("narrow", 64)] {
            let path = dir.join(format!("{label}.csr"));
            write_csr_with_budget(&path, stream, budget).unwrap();
            let store = CsrStore::open(&path).unwrap();
            assert_eq!(
                &store.to_graph(),
                expected,
                "{tag}/{label}: stream and materializing generator diverged"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn gnp_stream_matches_generator() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let expected = gnp_fn(120, 0.08, &mut rng);
        let stream = GnpStream::new(120, 0.08, 11).unwrap();
        assert_stream_matches("gnp", &stream, &expected);
    }

    #[test]
    fn chung_lu_stream_matches_generator() {
        let model = ChungLu::new(90, 5.0, 2.5).unwrap();
        let expected = model.sample(&mut ChaCha8Rng::seed_from_u64(23));
        let stream = ChungLuStream::new(90, 5.0, 2.5, 23).unwrap();
        assert_stream_matches("chung-lu", &stream, &expected);
    }

    #[test]
    fn far_stream_matches_generator() {
        // Both parities of q, to exercise both A–C membership branches.
        for (n, seed) in [(90usize, 37u64), (93, 41)] {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let expected = far_graph(n, 8.0, 0.1, &mut rng).unwrap();
            let stream = FarStream::new(n, 8.0, 0.1, seed).unwrap();
            assert_stream_matches("far", &stream, &expected);
        }
    }

    #[test]
    fn dense_core_stream_matches_generator() {
        let mut rng = ChaCha8Rng::seed_from_u64(53);
        let expected = dense_core(80, 3, &mut rng).unwrap();
        let stream = DenseCoreStream::new(80, 3, 53).unwrap();
        assert_eq!(stream.hubs(), 3);
        assert_stream_matches("dense-core", &stream, expected.graph());
    }

    #[test]
    fn streams_validate_parameters() {
        assert!(GnpStream::new(10, 1.5, 0).is_err());
        assert!(GnpStream::with_average_degree(1, 0.5, 0).is_err());
        assert!(GnpStream::with_average_degree(4, 9.0, 0).is_err());
        assert!(ChungLuStream::new(1, 4.0, 2.5, 0).is_err());
        assert!(FarStream::new(100, 1.0, 0.1, 0).is_err());
        assert!(FarStream::new(100, 10.0, 0.9, 0).is_err());
        assert!(DenseCoreStream::new(5, 3, 0).is_err());
        assert!(DenseCoreStream::new(10, 0, 0).is_err());
    }
}
