//! Partitioning the input graph's edges among `k` players.
//!
//! The paper's model hands each player `j` a subset `E_j ⊆ E`, with
//! `⋃_j E_j = E`; the sets need **not** be disjoint (edge duplication).
//! This module provides the partition schemes used by the experiments:
//!
//! * [`random_disjoint`] — every edge to exactly one uniform player (the
//!   "no-duplication variant" of the corollaries),
//! * [`with_duplication`] — one mandatory owner plus independent extra
//!   copies, exercising the duplication-robust building blocks,
//! * [`adversarial_triangle_split`] — the edges of each packed triangle
//!   scattered over three distinct players, so no player ever sees a local
//!   triangle (defeats trivial local short-circuits),
//! * [`by_vertex`] — locality partition (edges assigned by endpoint hash).

mod schemes;

pub use schemes::{adversarial_triangle_split, by_vertex, random_disjoint, with_duplication};

use crate::{Edge, Graph};
use std::collections::HashSet;

/// The edges held by each of `k` players.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    shares: Vec<Vec<Edge>>,
}

impl Partition {
    /// Wraps explicit per-player edge lists.
    ///
    /// # Panics
    ///
    /// Panics if `shares` is empty.
    pub fn new(shares: Vec<Vec<Edge>>) -> Self {
        assert!(!shares.is_empty(), "need at least one player");
        Partition { shares }
    }

    /// Number of players `k`.
    pub fn players(&self) -> usize {
        self.shares.len()
    }

    /// The edge share of player `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= k`.
    pub fn share(&self, j: usize) -> &[Edge] {
        &self.shares[j]
    }

    /// All shares in player order.
    pub fn shares(&self) -> &[Vec<Edge>] {
        &self.shares
    }

    /// Consumes the partition, yielding the share vectors.
    pub fn into_shares(self) -> Vec<Vec<Edge>> {
        self.shares
    }

    /// Total number of edge copies across players (≥ `|E|` with duplication).
    pub fn total_copies(&self) -> usize {
        self.shares.iter().map(Vec::len).sum()
    }

    /// Returns `true` if the union of shares is exactly the edge set of `g`.
    pub fn covers(&self, g: &Graph) -> bool {
        let mut union: HashSet<Edge> = HashSet::new();
        for s in &self.shares {
            union.extend(s.iter().copied());
        }
        union.len() == g.edge_count() && g.edges().iter().all(|e| union.contains(e))
    }

    /// Returns `true` if no edge appears in more than one share.
    pub fn is_disjoint(&self) -> bool {
        let mut seen: HashSet<Edge> = HashSet::new();
        for s in &self.shares {
            for e in s {
                if !seen.insert(*e) {
                    return false;
                }
            }
        }
        true
    }

    /// The §3.4.3 relevance mask: player `j` is *relevant* when its local
    /// average degree `d̄_j = 2|E_j|/n` is at least `(ε/4k)·d`. The
    /// degree-oblivious protocol's analysis discards irrelevant players:
    /// jointly they hold fewer than `ε·m/4` edges, so the graph restricted
    /// to relevant players stays `(ε/2)`-far whenever the input was ε-far.
    pub fn relevant_players(&self, g: &Graph, epsilon: f64) -> Vec<bool> {
        let k = self.players() as f64;
        let threshold = epsilon / (4.0 * k) * g.average_degree();
        let n = g.vertex_count().max(1) as f64;
        self.shares
            .iter()
            .map(|s| 2.0 * s.len() as f64 / n >= threshold)
            .collect()
    }

    /// The fraction of the graph's edges held *only* by irrelevant
    /// players — the paper's analysis needs this below `ε/2` (in fact it
    /// is below `ε/4`, since each of the `≤ k` irrelevant players holds
    /// fewer than `(ε/4k)·m` edges).
    pub fn irrelevant_only_edge_fraction(&self, g: &Graph, epsilon: f64) -> f64 {
        if g.edge_count() == 0 {
            return 0.0;
        }
        let mask = self.relevant_players(g, epsilon);
        let mut held_by_relevant: HashSet<Edge> = HashSet::new();
        for (j, share) in self.shares.iter().enumerate() {
            if mask[j] {
                held_by_relevant.extend(share.iter().copied());
            }
        }
        let lost = g
            .edges()
            .iter()
            .filter(|e| !held_by_relevant.contains(e))
            .count();
        lost as f64 / g.edge_count() as f64
    }

    /// Returns `true` if some player's share contains a triangle on its own
    /// (such inputs let a player detect a triangle with zero communication).
    pub fn has_local_triangle(&self, g: &Graph) -> bool {
        self.shares.iter().any(|s| {
            let local = crate::Graph::from_sorted_dedup_edges(g.vertex_count(), {
                let mut v = s.clone();
                v.sort_unstable();
                v.dedup();
                v
            });
            crate::triangles::contains_triangle(&local)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Graph, VertexId};

    fn g() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
    }

    #[test]
    fn covers_and_disjoint() {
        let g = g();
        let e = |a: u32, b: u32| Edge::new(VertexId(a), VertexId(b));
        let p = Partition::new(vec![vec![e(0, 1), e(1, 2)], vec![e(0, 2), e(2, 3)]]);
        assert!(p.covers(&g));
        assert!(p.is_disjoint());
        assert_eq!(p.players(), 2);
        assert_eq!(p.total_copies(), 4);
    }

    #[test]
    fn detects_non_covering() {
        let g = g();
        let e = |a: u32, b: u32| Edge::new(VertexId(a), VertexId(b));
        let p = Partition::new(vec![vec![e(0, 1)], vec![e(0, 2)]]);
        assert!(!p.covers(&g));
    }

    #[test]
    fn detects_duplication() {
        let e = |a: u32, b: u32| Edge::new(VertexId(a), VertexId(b));
        let p = Partition::new(vec![vec![e(0, 1)], vec![e(0, 1), e(1, 2)]]);
        assert!(!p.is_disjoint());
    }

    #[test]
    fn local_triangle_detection() {
        let g = g();
        let e = |a: u32, b: u32| Edge::new(VertexId(a), VertexId(b));
        let all_one = Partition::new(vec![g.edges().to_vec(), vec![]]);
        assert!(all_one.has_local_triangle(&g));
        let split = Partition::new(vec![vec![e(0, 1), e(2, 3)], vec![e(1, 2), e(0, 2)]]);
        assert!(!split.has_local_triangle(&g));
    }

    #[test]
    #[should_panic(expected = "at least one player")]
    fn rejects_zero_players() {
        let _ = Partition::new(vec![]);
    }

    #[test]
    fn relevance_lemma_bound_holds() {
        use crate::generators::far_graph;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        let g = far_graph(300, 8.0, 0.2, &mut rng).unwrap();
        // A skewed partition: players 0..3 split almost everything,
        // player 4 gets a handful of edges (irrelevant).
        let mut shares = vec![Vec::new(); 5];
        for (i, e) in g.edges().iter().enumerate() {
            if i < 5 {
                shares[4].push(*e);
            } else {
                shares[i % 4].push(*e);
            }
        }
        let p = Partition::new(shares);
        let eps = 0.2;
        let mask = p.relevant_players(&g, eps);
        assert_eq!(mask, vec![true, true, true, true, false]);
        let lost = p.irrelevant_only_edge_fraction(&g, eps);
        assert!(lost <= eps / 4.0 + 1e-9, "lost fraction {lost} exceeds ε/4");
    }

    #[test]
    fn balanced_partitions_have_no_irrelevant_players() {
        use crate::generators::far_graph;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(14);
        let g = far_graph(300, 8.0, 0.2, &mut rng).unwrap();
        let p = super::random_disjoint(&g, 6, &mut rng);
        assert!(p.relevant_players(&g, 0.2).iter().all(|r| *r));
        assert_eq!(p.irrelevant_only_edge_fraction(&g, 0.2), 0.0);
    }
}
