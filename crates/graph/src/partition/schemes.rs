use super::Partition;
use crate::{triangles, AsCsr, Graph};
use rand::Rng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Assigns each edge to exactly one uniformly random player.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn random_disjoint<G: AsCsr + ?Sized, R: Rng + ?Sized>(
    g: &G,
    k: usize,
    rng: &mut R,
) -> Partition {
    assert!(k >= 1, "need at least one player");
    let mut shares = vec![Vec::new(); k];
    g.for_each_edge(&mut |_, e| {
        shares[rng.gen_range(0..k)].push(e);
    });
    Partition::new(shares)
}

/// Assigns each edge to one uniformly random owner, then additionally to
/// every other player independently with probability `dup_p` — the
/// duplicated-input regime the paper's building blocks must survive.
///
/// # Panics
///
/// Panics if `k == 0` or `dup_p` is outside `[0, 1]`.
pub fn with_duplication<G: AsCsr + ?Sized, R: Rng + ?Sized>(
    g: &G,
    k: usize,
    dup_p: f64,
    rng: &mut R,
) -> Partition {
    assert!(k >= 1, "need at least one player");
    assert!((0.0..=1.0).contains(&dup_p), "dup_p must be in [0,1]");
    let mut shares = vec![Vec::new(); k];
    g.for_each_edge(&mut |_, e| {
        let owner = rng.gen_range(0..k);
        for (j, share) in shares.iter_mut().enumerate() {
            if j == owner || rng.gen_bool(dup_p) {
                share.push(e);
            }
        }
    });
    Partition::new(shares)
}

/// Splits the three edges of each packed triangle across three distinct
/// players (round-robin over triangles), so no single player's share
/// contains a packed triangle; remaining edges are assigned uniformly.
///
/// With `k ≥ 3` and a graph whose triangles form a packing (e.g. the
/// planted workloads), the result typically has no local triangle at all,
/// forcing genuine communication.
///
/// # Panics
///
/// Panics if `k < 3`.
pub fn adversarial_triangle_split<R: Rng + ?Sized>(g: &Graph, k: usize, rng: &mut R) -> Partition {
    assert!(k >= 3, "adversarial split needs at least 3 players");
    let packing = triangles::greedy_triangle_packing(g);
    let mut assigned = std::collections::HashMap::new();
    for (t_idx, t) in packing.iter().enumerate() {
        for (e_idx, e) in t.edges().into_iter().enumerate() {
            // players t_idx, t_idx+1, t_idx+2 (mod k): distinct since k ≥ 3.
            assigned.insert(e, (t_idx + e_idx) % k);
        }
    }
    let mut shares = vec![Vec::new(); k];
    for e in g.edges() {
        let j = assigned
            .get(e)
            .copied()
            .unwrap_or_else(|| rng.gen_range(0..k));
        shares[j].push(*e);
    }
    Partition::new(shares)
}

/// Locality partition: every edge goes to the player owning its smaller
/// endpoint (by hash), so each vertex's edges concentrate on few players.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn by_vertex<G: AsCsr + ?Sized>(g: &G, k: usize) -> Partition {
    assert!(k >= 1, "need at least one player");
    let mut shares = vec![Vec::new(); k];
    g.for_each_edge(&mut |_, e| {
        let mut h = DefaultHasher::new();
        e.u().hash(&mut h);
        shares[(h.finish() % k as u64) as usize].push(e);
    });
    Partition::new(shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{far_graph, gnp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn sample_graph() -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(100);
        gnp(60, 0.15, &mut rng)
    }

    #[test]
    fn random_disjoint_covers_and_is_disjoint() {
        let g = sample_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = random_disjoint(&g, 4, &mut rng);
        assert!(p.covers(&g));
        assert!(p.is_disjoint());
        assert_eq!(p.total_copies(), g.edge_count());
    }

    #[test]
    fn duplication_covers_and_duplicates() {
        let g = sample_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let p = with_duplication(&g, 4, 0.5, &mut rng);
        assert!(p.covers(&g));
        assert!(
            p.total_copies() > g.edge_count(),
            "expected duplicated copies"
        );
        assert!(!p.is_disjoint());
    }

    #[test]
    fn duplication_with_zero_prob_is_disjoint() {
        let g = sample_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let p = with_duplication(&g, 3, 0.0, &mut rng);
        assert!(p.covers(&g));
        assert!(p.is_disjoint());
    }

    #[test]
    fn adversarial_split_hides_planted_triangles() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = far_graph(90, 4.0, 0.2, &mut rng).unwrap();
        let p = adversarial_triangle_split(&g, 3, &mut rng);
        assert!(p.covers(&g));
        // Every packed triangle's edges are on three different players, so
        // the packing contributes no local triangle. Random leftover edges
        // could in principle close one, but with this seed they do not.
        assert!(!p.has_local_triangle(&g));
    }

    #[test]
    fn by_vertex_covers() {
        let g = sample_graph();
        let p = by_vertex(&g, 5);
        assert!(p.covers(&g));
        assert!(p.is_disjoint());
        // stability: same partition every time
        assert_eq!(p, by_vertex(&g, 5));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn adversarial_needs_three_players() {
        let g = sample_graph();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let _ = adversarial_triangle_split(&g, 2, &mut rng);
    }
}
