//! The CSR borrow abstraction: one trait, many backings.
//!
//! Every triangle kernel in this crate ([`crate::kernels`]) and every
//! partition scheme ([`crate::partition`]) is written against [`AsCsr`]
//! rather than [`Graph`], so the same code runs over
//!
//! * a heap-resident [`Graph`] (adjacency in `Vec`s), or
//! * an out-of-core [`crate::store::CsrStore`] whose adjacency lives in a
//!   read-only `mmap` of a `.csr` file (see `docs/IO.md`),
//!
//! with **identical results**: the trait exposes the canonical edge order
//! (sorted `(u, v)` pairs with `u < v`, which equals row-major forward
//! order), so seed-driven consumers — partitioners, samplers, kernels —
//! observe the same edge sequence whichever backing is underneath. The
//! mapped-vs-in-memory differential suite (`tests/store_differential.rs`)
//! pins this bit-for-bit.
//!
//! The trait is deliberately *slice-shaped*: [`AsCsr::neighbors`] returns
//! a borrowed `&[VertexId]`, never an owned list, so kernels built on it
//! cannot accidentally materialize per-vertex copies of a mapped file.

use std::ops::Range;

use crate::{Edge, Graph, VertexId};

/// Read-only access to an undirected simple graph in CSR form.
///
/// Invariants every implementation must uphold (the [`Graph`] builder and
/// the [`crate::store`] validator both enforce them at construction):
///
/// * adjacency rows are strictly increasing (sorted, deduplicated, no
///   self-loops) and symmetric (`v ∈ row(u)` ⇔ `u ∈ row(v)`);
/// * edge indices `0..edge_count()` enumerate the canonical sorted edge
///   order: `(u, v)` pairs with `u < v`, lexicographically.
///
/// `Sync` is a supertrait because the parallel kernels shard edge ranges
/// across pool workers that borrow the backing concurrently.
pub trait AsCsr: Sync {
    /// Number of vertices `n`.
    fn vertex_count(&self) -> usize;

    /// Number of edges `m`.
    fn edge_count(&self) -> usize;

    /// Sorted neighbors of `v`, borrowed from the backing.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Start of `v`'s slice in the flat CSR adjacency array: slot `i` of
    /// `neighbors(v)` lives at flat index `adj_start(v) + i`. Used by the
    /// tombstone overlay in [`crate::kernels::DeletionView`].
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn adj_start(&self, v: VertexId) -> usize;

    /// The `i`-th edge in canonical sorted order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= edge_count()`.
    fn edge_at(&self, i: usize) -> Edge;

    /// Position of `e` in the canonical sorted edge order, if present.
    fn edge_index(&self, e: Edge) -> Option<usize>;

    /// Visits edges `range` of the canonical order as `(index, edge)`
    /// pairs, stopping early when `f` returns `false`.
    ///
    /// The default calls [`edge_at`](Self::edge_at) per index;
    /// implementations override it with a sequential row walk (the store)
    /// or a slice iteration (the graph) — same sequence, less work.
    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(usize, Edge) -> bool) {
        for i in range {
            if !f(i, self.edge_at(i)) {
                return;
            }
        }
    }

    /// Visits every edge in canonical order as `(index, edge)` pairs.
    fn for_each_edge(&self, f: &mut dyn FnMut(usize, Edge)) {
        self.for_each_edge_in(0..self.edge_count(), &mut |i, e| {
            f(i, e);
            true
        });
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Total number of flat CSR adjacency slots (`2m`).
    fn adj_len(&self) -> usize {
        2 * self.edge_count()
    }

    /// Average degree `d = 2m/n` (0 for the empty graph).
    fn average_degree(&self) -> f64 {
        let n = self.vertex_count();
        if n == 0 {
            0.0
        } else {
            2.0 * self.edge_count() as f64 / n as f64
        }
    }

    /// Iterator over all vertex ids `0..n`.
    fn vertices(&self) -> VertexRange {
        VertexRange {
            range: 0..self.vertex_count() as u32,
        }
    }

    /// `O(log d)` membership test, probing the smaller endpoint's row.
    fn has_edge(&self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        let n = self.vertex_count();
        if u.index() >= n || v.index() >= n {
            return false;
        }
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).binary_search(&target).is_ok()
    }
}

/// Iterator over vertex ids `0..n` — the concrete type behind
/// [`AsCsr::vertices`] (trait methods cannot return `impl Iterator` and
/// stay dyn-compatible for downstream object-safe wrappers).
#[derive(Debug, Clone)]
pub struct VertexRange {
    range: Range<u32>,
}

impl Iterator for VertexRange {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        self.range.next().map(VertexId)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.range.size_hint()
    }
}

impl ExactSizeIterator for VertexRange {}

impl AsCsr for Graph {
    fn vertex_count(&self) -> usize {
        Graph::vertex_count(self)
    }

    fn edge_count(&self) -> usize {
        Graph::edge_count(self)
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        Graph::neighbors(self, v)
    }

    fn adj_start(&self, v: VertexId) -> usize {
        // Inherent (pub(crate)) accessor; inherent methods shadow the
        // trait method of the same name, so this does not recurse.
        Graph::adj_start(self, v)
    }

    fn edge_at(&self, i: usize) -> Edge {
        self.edges()[i]
    }

    fn edge_index(&self, e: Edge) -> Option<usize> {
        Graph::edge_index(self, e)
    }

    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(usize, Edge) -> bool) {
        for (i, e) in range.clone().zip(&self.edges()[range]) {
            if !f(i, *e) {
                return;
            }
        }
    }
}

// A `&G` forwards to `G`, so generic kernels accept both owned handles
// and borrows without extra turbofish at the call sites.
impl<G: AsCsr + ?Sized> AsCsr for &G {
    fn vertex_count(&self) -> usize {
        (**self).vertex_count()
    }

    fn edge_count(&self) -> usize {
        (**self).edge_count()
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        (**self).neighbors(v)
    }

    fn adj_start(&self, v: VertexId) -> usize {
        (**self).adj_start(v)
    }

    fn edge_at(&self, i: usize) -> Edge {
        (**self).edge_at(i)
    }

    fn edge_index(&self, e: Edge) -> Option<usize> {
        (**self).edge_index(e)
    }

    fn for_each_edge_in(&self, range: Range<usize>, f: &mut dyn FnMut(usize, Edge) -> bool) {
        (**self).for_each_edge_in(range, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Graph {
        Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    fn csr_probe<G: AsCsr>(g: &G) -> (usize, usize, Vec<Edge>, f64) {
        let mut edges = Vec::new();
        g.for_each_edge(&mut |i, e| {
            assert_eq!(g.edge_at(i), e);
            assert_eq!(g.edge_index(e), Some(i));
            edges.push(e);
        });
        (g.vertex_count(), g.edge_count(), edges, g.average_degree())
    }

    #[test]
    fn graph_impl_matches_inherent_accessors() {
        let g = diamond();
        let (n, m, edges, d) = csr_probe(&g);
        assert_eq!(n, g.vertex_count());
        assert_eq!(m, g.edge_count());
        assert_eq!(edges, g.edges());
        assert_eq!(d, g.average_degree());
        for v in g.vertices() {
            assert_eq!(AsCsr::neighbors(&g, v), Graph::neighbors(&g, v));
            assert_eq!(AsCsr::degree(&g, v), Graph::degree(&g, v));
        }
        assert_eq!(AsCsr::adj_len(&g), 2 * g.edge_count());
    }

    #[test]
    fn edge_iteration_ranges_and_early_exit() {
        let g = diamond();
        let mut seen = Vec::new();
        g.for_each_edge_in(1..4, &mut |i, e| {
            seen.push((i, e));
            true
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].0, 1);
        assert_eq!(seen[0].1, g.edges()[1]);

        let mut count = 0;
        g.for_each_edge_in(0..g.edge_count(), &mut |_, _| {
            count += 1;
            count < 2
        });
        assert_eq!(count, 2, "early exit stops the walk");
    }

    #[test]
    fn has_edge_and_missing_edges_via_trait() {
        let g = diamond();
        assert!(AsCsr::has_edge(&g, Edge::new(VertexId(3), VertexId(1))));
        assert!(!AsCsr::has_edge(&g, Edge::new(VertexId(0), VertexId(3))));
        assert_eq!(g.edge_index(Edge::new(VertexId(0), VertexId(3))), None);
    }

    #[test]
    fn reference_impl_forwards() {
        let g = diamond();
        let r = &g;
        assert_eq!(csr_probe(&r), csr_probe(&g));
    }
}
