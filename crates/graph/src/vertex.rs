use serde::{Deserialize, Serialize};

/// Identifier of a vertex: an index in `0..n`.
///
/// A newtype over `u32` so vertex indices cannot be confused with counts,
/// player ids or bit budgets elsewhere in the workspace.
///
/// # Example
///
/// ```
/// use triad_graph::VertexId;
/// let v = VertexId(7);
/// assert_eq!(v.index(), 7);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
#[repr(transparent)] // the store casts `&[u32]` mapped slices to `&[VertexId]`
pub struct VertexId(pub u32);

impl VertexId {
    /// The vertex index as a `usize`, for indexing adjacency arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a vertex id from a `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        VertexId(u32::try_from(i).expect("vertex index exceeds u32::MAX"))
    }
}

impl std::fmt::Display for VertexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        assert_eq!(VertexId::from_index(42).index(), 42);
        assert_eq!(VertexId::from(3u32), VertexId(3));
    }

    #[test]
    fn ordering_follows_indices() {
        assert!(VertexId(1) < VertexId(2));
        assert_eq!(VertexId(5).to_string(), "5");
    }
}
