//! Distance to triangle-freeness and ε-farness certification.
//!
//! A graph is *ε-far* from triangle-free when at least `ε·|E|` edges must
//! be removed to destroy all triangles. Computing the exact distance is
//! NP-hard in general, so — exactly as the paper's analysis does — we work
//! with two efficiently computable proxies:
//!
//! * a **lower bound**: the size of an edge-disjoint triangle packing
//!   (each removal kills at most one packed triangle), and
//! * an **upper bound**: the greedy hitting set obtained by deleting one
//!   edge per remaining triangle.

use crate::kernels::DeletionView;
use crate::{triangles, Edge, Graph};
use std::collections::HashSet;

/// Certified bounds on the edge-removal distance to triangle-freeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceBounds {
    /// Size of an edge-disjoint triangle packing (≤ true distance).
    pub lower: usize,
    /// Number of edges removed by a greedy hitting strategy (≥ true distance).
    pub upper: usize,
}

impl DistanceBounds {
    /// Distance expressed as a fraction of the edge count, using the
    /// certified lower bound (so `epsilon_lower(g) ≥ x` *proves* the graph
    /// is x-far).
    pub fn epsilon_lower(&self, g: &Graph) -> f64 {
        if g.edge_count() == 0 {
            0.0
        } else {
            self.lower as f64 / g.edge_count() as f64
        }
    }
}

/// Computes certified lower and upper bounds on the distance of `g` to
/// triangle-freeness.
///
/// # Example
///
/// ```
/// use triad_graph::{Graph, distance};
/// // Two disjoint triangles: distance exactly 2.
/// let g = Graph::from_edges(6, [(0,1),(1,2),(0,2),(3,4),(4,5),(3,5)]);
/// let b = distance::distance_bounds(&g);
/// assert!(b.lower >= 2 && b.upper <= 3);
/// ```
pub fn distance_bounds(g: &Graph) -> DistanceBounds {
    let lower = triangles::greedy_triangle_packing(g).len();
    let upper = greedy_hitting_removal(g).len();
    DistanceBounds { lower, upper }
}

/// Greedy triangle hitting set: repeatedly finds a triangle and removes one
/// of its edges until the graph is triangle-free. Returns the removed edges
/// **in removal order** — a deterministic sequence, identical across
/// process runs (the pre-kernel version leaked `HashSet` iteration
/// order, violating the `docs/PARALLELISM.md` determinism contract).
///
/// Runs on a [`DeletionView`]: each removal flips tombstone bits instead
/// of rebuilding the CSR graph, and the triangle scan resumes from the
/// first edge that can still carry one (deletions never create
/// triangles), so the whole loop costs one amortized pass over the edge
/// set plus the intersections — not a rebuild per removed edge.
pub fn greedy_hitting_removal(g: &Graph) -> Vec<Edge> {
    let mut removed = Vec::new();
    let mut view = DeletionView::new(g);
    let mut cursor = 0;
    while let Some(t) = view.find_triangle_from(&mut cursor) {
        // Remove the edge of the triangle whose endpoints have highest
        // combined degree — a cheap heuristic that tends to hit many
        // triangles at once. (`max_by_key` keeps the *last* maximum, as
        // the rebuild-based loop did — pinned by the differential suite.)
        let e = *t
            .edges()
            .iter()
            .max_by_key(|e| view.degree(e.u()) + view.degree(e.v()))
            .expect("triangle has edges");
        view.delete_edge(e);
        removed.push(e);
    }
    removed
}

/// Returns `true` if `g` is *certifiably* ε-far from triangle-free: the
/// edge-disjoint packing alone proves that at least `ε·|E|` removals are
/// needed.
///
/// A `false` answer does not prove the graph is ε-close; it only means the
/// greedy certificate was insufficient.
pub fn is_certifiably_far(g: &Graph, epsilon: f64) -> bool {
    if g.edge_count() == 0 {
        return false;
    }
    let packing = triangles::greedy_triangle_packing(g).len();
    packing as f64 >= epsilon * g.edge_count() as f64
}

/// Returns `true` if `g` has no triangle at all.
pub fn is_triangle_free(g: &Graph) -> bool {
    !triangles::contains_triangle(g)
}

/// Exact minimum number of edge removals to destroy all triangles, by
/// branch and bound on triangle edges. Exponential in the worst case —
/// intended for validating the greedy bounds on small instances.
///
/// # Panics
///
/// Panics if the graph has more than `max_edges` edges (guard against
/// accidental exponential blowups); pass the graph's own edge count to
/// disable the guard consciously.
pub fn exact_distance(g: &Graph, max_edges: usize) -> usize {
    assert!(
        g.edge_count() <= max_edges,
        "exact_distance guard: {} edges exceeds the {max_edges}-edge cap",
        g.edge_count()
    );
    // Upper bound from the greedy heuristic seeds the search.
    let mut best = greedy_hitting_removal(g).len();
    let mut view = DeletionView::new(g);
    let mut forbidden = HashSet::new();
    branch(&mut view, &mut forbidden, 0, &mut best);
    best
}

/// Branch-and-bound node: some edge of the first remaining triangle
/// must be removed, so branch on its (non-forbidden) edges.
///
/// Two fixes over the pre-kernel version: the node works on a
/// [`DeletionView`] (delete on descent, restore on backtrack — no graph
/// rebuild per node), and branching uses the standard
/// inclusion–exclusion discipline: after exploring "remove `eᵢ`", `eᵢ`
/// is *forbidden* in the remaining branches of this node, so each
/// removal **set** is explored once instead of once per permutation —
/// the pre-kernel search was factorially larger for the same answer. A
/// branch whose triangle consists only of forbidden edges is infeasible
/// and is pruned.
fn branch(
    view: &mut DeletionView<'_>,
    forbidden: &mut HashSet<Edge>,
    depth: usize,
    best: &mut usize,
) {
    if depth >= *best {
        return; // cannot improve
    }
    let Some(t) = view.find_triangle() else {
        *best = depth; // triangle-free with `depth` removals
        return;
    };
    let mut locally_forbidden = Vec::new();
    for e in t.edges() {
        if forbidden.contains(&e) {
            continue;
        }
        view.delete_edge(e);
        branch(view, forbidden, depth + 1, best);
        view.restore_edge(e);
        forbidden.insert(e);
        locally_forbidden.push(e);
    }
    for e in locally_forbidden {
        forbidden.remove(&e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn triangle_free_graph_has_zero_distance() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let b = distance_bounds(&g);
        assert_eq!(b, DistanceBounds { lower: 0, upper: 0 });
        assert!(is_triangle_free(&g));
        assert!(!is_certifiably_far(&g, 0.01));
    }

    #[test]
    fn bounds_bracket_true_distance() {
        let g = two_triangles();
        let b = distance_bounds(&g);
        assert!(b.lower <= 2, "true distance is 2");
        assert!(b.upper >= 2);
        assert_eq!(b.lower, 2); // disjoint triangles pack perfectly
        assert_eq!(b.upper, 2); // one removal per triangle suffices
    }

    #[test]
    fn hitting_removal_leaves_triangle_free() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 3)]);
        let removed = greedy_hitting_removal(&g);
        let rm: HashSet<Edge> = removed.into_iter().collect();
        assert!(is_triangle_free(&g.without_edges(&rm)));
    }

    #[test]
    fn farness_certificate() {
        let g = two_triangles();
        // 2 packed triangles out of 6 edges: certifies 1/3-farness.
        assert!(is_certifiably_far(&g, 1.0 / 3.0));
        assert!(!is_certifiably_far(&g, 0.5));
        let b = distance_bounds(&g);
        assert!((b.epsilon_lower(&g) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn exact_distance_on_known_instances() {
        // Two disjoint triangles: exactly 2.
        assert_eq!(exact_distance(&two_triangles(), 64), 2);
        // K4: 4 triangles, any two share an edge; removing one edge kills
        // two triangles, so 2 removals suffice (and 1 cannot).
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(exact_distance(&k4, 64), 2);
        // Triangle-free: 0.
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(exact_distance(&path, 64), 0);
        // Book graph (3 triangles sharing edge (0,1)): one removal.
        let book = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)]);
        assert_eq!(exact_distance(&book, 64), 1);
    }

    #[test]
    fn greedy_bounds_bracket_the_exact_distance() {
        use crate::generators::gnp;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for trial in 0..8 {
            let g = gnp(14, 0.3, &mut rng);
            if g.edge_count() > 40 {
                continue;
            }
            let exact = exact_distance(&g, 40);
            let b = distance_bounds(&g);
            assert!(
                b.lower <= exact,
                "trial {trial}: packing {} > exact {exact}",
                b.lower
            );
            assert!(
                b.upper >= exact,
                "trial {trial}: greedy {} < exact {exact}",
                b.upper
            );
        }
    }

    #[test]
    fn greedy_removal_sequence_is_identical_across_runs() {
        // Regression: the pre-kernel implementation collected removals in
        // a `HashSet` and returned its iteration order, which varies even
        // within one process (per-instance `RandomState`). Two runs must
        // now yield the same sequence, element for element.
        use crate::generators::gnp;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..4 {
            let g = gnp(24, 0.3, &mut rng);
            let first = greedy_hitting_removal(&g);
            let second = greedy_hitting_removal(&g);
            assert_eq!(first, second, "removal order must be deterministic");
        }
    }

    #[test]
    fn exact_distance_matches_a_permutation_free_reference_on_small_graphs() {
        // Brute force over all edge subsets, smallest first — the
        // definitionally correct answer the pruned branch-and-bound must
        // reproduce.
        fn brute(g: &Graph) -> usize {
            let edges = g.edges().to_vec();
            for size in 0..=edges.len() {
                let mut chosen = vec![false; edges.len()];
                if subsets_of_size(g, &edges, &mut chosen, 0, size) {
                    return size;
                }
            }
            unreachable!("removing all edges always works");
        }
        fn subsets_of_size(
            g: &Graph,
            edges: &[Edge],
            chosen: &mut Vec<bool>,
            from: usize,
            left: usize,
        ) -> bool {
            if left == 0 {
                let rm: HashSet<Edge> = edges
                    .iter()
                    .zip(chosen.iter())
                    .filter(|(_, c)| **c)
                    .map(|(e, _)| *e)
                    .collect();
                return is_triangle_free(&g.without_edges(&rm));
            }
            if from + left > edges.len() {
                return false;
            }
            for i in from..=edges.len() - left {
                chosen[i] = true;
                if subsets_of_size(g, edges, chosen, i + 1, left - 1) {
                    chosen[i] = false;
                    return true;
                }
                chosen[i] = false;
            }
            false
        }

        use crate::generators::gnp;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for trial in 0..6 {
            let g = gnp(8, 0.4, &mut rng);
            if g.edge_count() > 14 {
                continue; // keep the brute force cheap
            }
            assert_eq!(
                exact_distance(&g, 14),
                brute(&g),
                "trial {trial}: pruned search disagrees with brute force"
            );
        }
    }

    #[test]
    #[ignore = "stress: K7 branch-and-bound; run with `cargo test -- --ignored`"]
    fn exact_distance_k7_stress() {
        // K7 has C(7,3) = 35 triangles. The exact distance of K_n is
        // e(n) - ex(n; K3) where ex is the Turán number: for n = 7 that
        // is 21 - 12 = 9. The forbidden-edge pruning stops the search
        // from re-exploring permutations of the same removal set, which
        // is what keeps this deep instance (optimum 9, so the search
        // must also refute every depth-8 prefix) inside bounded time.
        let mut edges = Vec::new();
        for u in 0..7u32 {
            for v in (u + 1)..7 {
                edges.push((u, v));
            }
        }
        let g = Graph::from_edges(7, edges);
        assert_eq!(exact_distance(&g, 21), 9);
    }

    #[test]
    #[should_panic(expected = "guard")]
    fn exact_distance_guard() {
        let g = two_triangles();
        let _ = exact_distance(&g, 3);
    }

    #[test]
    fn empty_graph_is_not_far() {
        let g = Graph::from_edges(3, []);
        assert!(!is_certifiably_far(&g, 0.1));
        assert_eq!(distance_bounds(&g).epsilon_lower(&g), 0.0);
    }
}
