//! Distance to triangle-freeness and ε-farness certification.
//!
//! A graph is *ε-far* from triangle-free when at least `ε·|E|` edges must
//! be removed to destroy all triangles. Computing the exact distance is
//! NP-hard in general, so — exactly as the paper's analysis does — we work
//! with two efficiently computable proxies:
//!
//! * a **lower bound**: the size of an edge-disjoint triangle packing
//!   (each removal kills at most one packed triangle), and
//! * an **upper bound**: the greedy hitting set obtained by deleting one
//!   edge per remaining triangle.

use crate::{triangles, Edge, Graph};
use std::collections::HashSet;

/// Certified bounds on the edge-removal distance to triangle-freeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistanceBounds {
    /// Size of an edge-disjoint triangle packing (≤ true distance).
    pub lower: usize,
    /// Number of edges removed by a greedy hitting strategy (≥ true distance).
    pub upper: usize,
}

impl DistanceBounds {
    /// Distance expressed as a fraction of the edge count, using the
    /// certified lower bound (so `epsilon_lower(g) ≥ x` *proves* the graph
    /// is x-far).
    pub fn epsilon_lower(&self, g: &Graph) -> f64 {
        if g.edge_count() == 0 {
            0.0
        } else {
            self.lower as f64 / g.edge_count() as f64
        }
    }
}

/// Computes certified lower and upper bounds on the distance of `g` to
/// triangle-freeness.
///
/// # Example
///
/// ```
/// use triad_graph::{Graph, distance};
/// // Two disjoint triangles: distance exactly 2.
/// let g = Graph::from_edges(6, [(0,1),(1,2),(0,2),(3,4),(4,5),(3,5)]);
/// let b = distance::distance_bounds(&g);
/// assert!(b.lower >= 2 && b.upper <= 3);
/// ```
pub fn distance_bounds(g: &Graph) -> DistanceBounds {
    let lower = triangles::greedy_triangle_packing(g).len();
    let upper = greedy_hitting_removal(g).len();
    DistanceBounds { lower, upper }
}

/// Greedy triangle hitting set: repeatedly finds a triangle and removes one
/// of its edges until the graph is triangle-free. Returns the removed edges.
pub fn greedy_hitting_removal(g: &Graph) -> Vec<Edge> {
    let mut removed: HashSet<Edge> = HashSet::new();
    let mut current = g.clone();
    while let Some(t) = triangles::find_triangle(&current) {
        // Remove the edge of the triangle whose endpoints have highest
        // combined degree — a cheap heuristic that tends to hit many
        // triangles at once.
        let e = *t
            .edges()
            .iter()
            .max_by_key(|e| current.degree(e.u()) + current.degree(e.v()))
            .expect("triangle has edges");
        removed.insert(e);
        let mut one = HashSet::new();
        one.insert(e);
        current = current.without_edges(&one);
    }
    removed.into_iter().collect()
}

/// Returns `true` if `g` is *certifiably* ε-far from triangle-free: the
/// edge-disjoint packing alone proves that at least `ε·|E|` removals are
/// needed.
///
/// A `false` answer does not prove the graph is ε-close; it only means the
/// greedy certificate was insufficient.
pub fn is_certifiably_far(g: &Graph, epsilon: f64) -> bool {
    if g.edge_count() == 0 {
        return false;
    }
    let packing = triangles::greedy_triangle_packing(g).len();
    packing as f64 >= epsilon * g.edge_count() as f64
}

/// Returns `true` if `g` has no triangle at all.
pub fn is_triangle_free(g: &Graph) -> bool {
    !triangles::contains_triangle(g)
}

/// Exact minimum number of edge removals to destroy all triangles, by
/// branch and bound on triangle edges. Exponential in the worst case —
/// intended for validating the greedy bounds on small instances.
///
/// # Panics
///
/// Panics if the graph has more than `max_edges` edges (guard against
/// accidental exponential blowups); pass the graph's own edge count to
/// disable the guard consciously.
pub fn exact_distance(g: &Graph, max_edges: usize) -> usize {
    assert!(
        g.edge_count() <= max_edges,
        "exact_distance guard: {} edges exceeds the {max_edges}-edge cap",
        g.edge_count()
    );
    // Upper bound from the greedy heuristic seeds the search.
    let mut best = greedy_hitting_removal(g).len();
    let mut removed = HashSet::new();
    branch(g, &mut removed, 0, &mut best);
    best
}

fn branch(g: &Graph, removed: &mut HashSet<Edge>, depth: usize, best: &mut usize) {
    if depth >= *best {
        return; // cannot improve
    }
    let current = g.without_edges(removed);
    let Some(t) = triangles::find_triangle(&current) else {
        *best = depth; // triangle-free with `depth` removals
        return;
    };
    // Some edge of every remaining triangle must go: branch on the three.
    for e in t.edges() {
        removed.insert(e);
        branch(g, removed, depth + 1, best);
        removed.remove(&e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Graph;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn triangle_free_graph_has_zero_distance() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let b = distance_bounds(&g);
        assert_eq!(b, DistanceBounds { lower: 0, upper: 0 });
        assert!(is_triangle_free(&g));
        assert!(!is_certifiably_far(&g, 0.01));
    }

    #[test]
    fn bounds_bracket_true_distance() {
        let g = two_triangles();
        let b = distance_bounds(&g);
        assert!(b.lower <= 2, "true distance is 2");
        assert!(b.upper >= 2);
        assert_eq!(b.lower, 2); // disjoint triangles pack perfectly
        assert_eq!(b.upper, 2); // one removal per triangle suffices
    }

    #[test]
    fn hitting_removal_leaves_triangle_free() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 3)]);
        let removed = greedy_hitting_removal(&g);
        let rm: HashSet<Edge> = removed.into_iter().collect();
        assert!(is_triangle_free(&g.without_edges(&rm)));
    }

    #[test]
    fn farness_certificate() {
        let g = two_triangles();
        // 2 packed triangles out of 6 edges: certifies 1/3-farness.
        assert!(is_certifiably_far(&g, 1.0 / 3.0));
        assert!(!is_certifiably_far(&g, 0.5));
        let b = distance_bounds(&g);
        assert!((b.epsilon_lower(&g) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn exact_distance_on_known_instances() {
        // Two disjoint triangles: exactly 2.
        assert_eq!(exact_distance(&two_triangles(), 64), 2);
        // K4: 4 triangles, any two share an edge; removing one edge kills
        // two triangles, so 2 removals suffice (and 1 cannot).
        let k4 = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(exact_distance(&k4, 64), 2);
        // Triangle-free: 0.
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(exact_distance(&path, 64), 0);
        // Book graph (3 triangles sharing edge (0,1)): one removal.
        let book = Graph::from_edges(5, [(0, 1), (0, 2), (1, 2), (0, 3), (1, 3), (0, 4), (1, 4)]);
        assert_eq!(exact_distance(&book, 64), 1);
    }

    #[test]
    fn greedy_bounds_bracket_the_exact_distance() {
        use crate::generators::gnp;
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        for trial in 0..8 {
            let g = gnp(14, 0.3, &mut rng);
            if g.edge_count() > 40 {
                continue;
            }
            let exact = exact_distance(&g, 40);
            let b = distance_bounds(&g);
            assert!(
                b.lower <= exact,
                "trial {trial}: packing {} > exact {exact}",
                b.lower
            );
            assert!(
                b.upper >= exact,
                "trial {trial}: greedy {} < exact {exact}",
                b.upper
            );
        }
    }

    #[test]
    #[should_panic(expected = "guard")]
    fn exact_distance_guard() {
        let g = two_triangles();
        let _ = exact_distance(&g, 3);
    }

    #[test]
    fn empty_graph_is_not_far() {
        let g = Graph::from_edges(3, []);
        assert!(!is_certifiably_far(&g, 0.1));
        assert_eq!(distance_bounds(&g).epsilon_lower(&g), 0.0);
    }
}
