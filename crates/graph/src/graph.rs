use crate::{Edge, VertexId};

/// An immutable undirected simple graph in compressed sparse row form.
///
/// Adjacency lists are sorted, enabling `O(log d)` edge queries and linear
/// neighborhood intersection (the workhorse of triangle detection).
///
/// Construct with [`crate::GraphBuilder`], which deduplicates edges.
///
/// # Example
///
/// ```
/// use triad_graph::{Graph, Edge, VertexId};
/// let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2)]);
/// assert_eq!(g.degree(VertexId(1)), 2);
/// assert!(g.has_edge(Edge::new(VertexId(2), VertexId(0))));
/// assert_eq!(g.average_degree(), 1.5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    /// CSR offsets: `adj[offsets[v]..offsets[v+1]]` are v's neighbors, sorted.
    offsets: Vec<usize>,
    adj: Vec<VertexId>,
    /// All edges in canonical order, sorted.
    edges: Vec<Edge>,
}

impl Graph {
    /// Builds a graph directly from `(u, v)` index pairs. Convenience for
    /// tests and examples; panics on out-of-range vertices or self-loops.
    pub fn from_edges<I>(n: usize, pairs: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut b = crate::GraphBuilder::new(n);
        for (u, v) in pairs {
            b.add_edge(Edge::new(VertexId(u), VertexId(v)));
        }
        b.build()
    }

    pub(crate) fn from_sorted_dedup_edges(n: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be sorted+dedup"
        );
        let mut degrees = vec![0usize; n];
        for e in &edges {
            degrees[e.u().index()] += 1;
            degrees[e.v().index()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut adj = vec![VertexId(0); acc];
        for e in &edges {
            let (u, v) = e.endpoints();
            adj[cursor[u.index()]] = v;
            cursor[u.index()] += 1;
            adj[cursor[v.index()]] = u;
            cursor[v.index()] += 1;
        }
        for v in 0..n {
            adj[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            n,
            offsets,
            adj,
            edges,
        }
    }

    /// Number of vertices `n`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Average degree `d = 2|E|/n`.
    ///
    /// This is the paper's density parameter; protocols are analyzed in
    /// terms of it and the degree-oblivious protocol estimates it.
    pub fn average_degree(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            2.0 * self.edges.len() as f64 / self.n as f64
        }
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.index() + 1] - self.offsets[v.index()]
    }

    /// Sorted neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adj[self.offsets[v.index()]..self.offsets[v.index() + 1]]
    }

    /// Start of `v`'s slice in the flat CSR adjacency array; slot `i` of
    /// `neighbors(v)` lives at flat index `adj_start(v) + i`. Used by the
    /// tombstone overlays in [`crate::kernels`].
    #[inline]
    pub(crate) fn adj_start(&self, v: VertexId) -> usize {
        self.offsets[v.index()]
    }

    /// Position of `e` in the canonical sorted edge array, if present.
    #[inline]
    pub(crate) fn edge_index(&self, e: Edge) -> Option<usize> {
        self.edges.binary_search(&e).ok()
    }

    /// `O(log d)` membership test.
    pub fn has_edge(&self, e: Edge) -> bool {
        let (u, v) = e.endpoints();
        if u.index() >= self.n || v.index() >= self.n {
            return false;
        }
        // Probe the smaller adjacency list.
        let (probe, target) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(probe).binary_search(&target).is_ok()
    }

    /// All edges, in sorted canonical order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        (0..self.n as u32).map(VertexId)
    }

    /// Common neighbors of `u` and `v` (sorted), via linear list merge.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        let (a, b) = (self.neighbors(u), self.neighbors(v));
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// The subgraph induced by `keep` (same vertex-id space; edges with both
    /// endpoints in `keep`). `keep` need not be sorted.
    pub fn induced_subgraph(&self, keep: &[VertexId]) -> Graph {
        let mut inset = vec![false; self.n];
        for v in keep {
            inset[v.index()] = true;
        }
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| inset[e.u().index()] && inset[e.v().index()])
            .collect();
        Graph::from_sorted_dedup_edges(self.n, edges)
    }

    /// Union of this graph's edges with another edge set over the same
    /// vertex-id space.
    pub fn union_with(&self, extra: &[Edge]) -> Graph {
        let mut all: Vec<Edge> = self.edges.clone();
        all.extend_from_slice(extra);
        all.sort_unstable();
        all.dedup();
        Graph::from_sorted_dedup_edges(self.n, all)
    }

    /// Graph with the given edges removed.
    pub fn without_edges(&self, remove: &std::collections::HashSet<Edge>) -> Graph {
        let edges: Vec<Edge> = self
            .edges
            .iter()
            .copied()
            .filter(|e| !remove.contains(e))
            .collect();
        Graph::from_sorted_dedup_edges(self.n, edges)
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n)
            .map(|v| self.degree(VertexId::from_index(v)))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path4() -> Graph {
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)])
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = path4();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.degree(VertexId(0)), 1);
        assert_eq!(g.degree(VertexId(1)), 2);
        assert_eq!(g.neighbors(VertexId(1)), &[VertexId(0), VertexId(2)]);
        assert_eq!(g.average_degree(), 1.5);
    }

    #[test]
    fn has_edge_both_orders_and_missing() {
        let g = path4();
        assert!(g.has_edge(Edge::new(VertexId(1), VertexId(0))));
        assert!(!g.has_edge(Edge::new(VertexId(0), VertexId(3))));
    }

    #[test]
    fn common_neighbors_merge() {
        let g = Graph::from_edges(5, [(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)]);
        assert_eq!(
            g.common_neighbors(VertexId(0), VertexId(1)),
            vec![VertexId(2), VertexId(3)]
        );
        assert!(g
            .common_neighbors(VertexId(2), VertexId(3))
            .iter()
            .eq([VertexId(0), VertexId(1)].iter()));
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let h = g.induced_subgraph(&[VertexId(1), VertexId(2), VertexId(3)]);
        assert_eq!(h.edge_count(), 2);
        assert!(h.has_edge(Edge::new(VertexId(1), VertexId(2))));
        assert!(!h.has_edge(Edge::new(VertexId(0), VertexId(1))));
    }

    #[test]
    fn union_and_removal() {
        let g = path4();
        let g2 = g.union_with(&[Edge::new(VertexId(0), VertexId(3))]);
        assert_eq!(g2.edge_count(), 4);
        let mut rm = std::collections::HashSet::new();
        rm.insert(Edge::new(VertexId(0), VertexId(1)));
        let g3 = g2.without_edges(&rm);
        assert_eq!(g3.edge_count(), 3);
        assert!(!g3.has_edge(Edge::new(VertexId(0), VertexId(1))));
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.vertices().count(), 0);
    }

    #[test]
    fn max_degree() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert_eq!(g.max_degree(), 4);
    }
}
