//! Degree-ordered forward adjacency — the `O(m^{3/2})` triangle kernel.
//!
//! Rank all vertices by `(degree, id)` ascending and orient every edge
//! from its lower-rank endpoint toward its higher-rank endpoint. A
//! vertex's *forward list* holds the ranks of its higher-rank neighbors,
//! sorted ascending. Two classical facts make this fast:
//!
//! 1. every forward list has length `O(√m)` — a vertex with forward
//!    degree `f` has `f` neighbors of degree ≥ its own, so its degree
//!    is at least `f` and those endpoints alone contribute `f²/2` edge
//!    endpoints;
//! 2. each triangle `{a, b, c}` with ranks `r_a < r_b < r_c` appears in
//!    **exactly one** forward intersection: `fwd(a) ∩ fwd(b)` at the
//!    *base edge* `{a, b}`, where both forward lists contain `r_c`.
//!
//! Summing the per-edge merge cost `|fwd(u)| + |fwd(v)|` over all edges
//! therefore gives the `O(m^{3/2})` bound the docs promise (Itai–Rodeh /
//! Schank–Wagner; the same bound "Tri, Tri again" exploits in the
//! distributed setting).

use crate::{AsCsr, Triangle, VertexId};
use std::ops::Range;

/// The degree-ordered forward adjacency of any CSR backing.
///
/// Built once in `O(n + m log m)` from anything implementing [`AsCsr`] —
/// a heap [`Graph`](crate::Graph) or an mmap-backed [`crate::store::CsrStore`]; queries
/// then run over forward lists only. The structure borrows nothing — edge
/// iteration still goes through the host backing so sharded callers can
/// walk canonical edge ranges.
#[derive(Debug, Clone)]
pub struct Forward {
    /// `rank[v]` = position of vertex `v` in the degree-ascending order.
    rank: Vec<u32>,
    /// `order[r]` = vertex with rank `r` (inverse of `rank`).
    order: Vec<VertexId>,
    /// CSR offsets into `fwd`, indexed by **rank**.
    offsets: Vec<usize>,
    /// Forward neighbor ranks, ascending within each list.
    fwd: Vec<u32>,
}

impl Forward {
    /// Builds the forward adjacency of `g`.
    pub fn build<G: AsCsr + ?Sized>(g: &G) -> Forward {
        let n = g.vertex_count();
        let mut order: Vec<VertexId> = g.vertices().collect();
        order.sort_unstable_by_key(|v| (g.degree(*v), *v));
        let mut rank = vec![0u32; n];
        for (r, v) in order.iter().enumerate() {
            rank[v.index()] = r as u32;
        }
        // Forward out-degrees, then prefix sums, then fill + sort.
        let mut counts = vec![0usize; n];
        g.for_each_edge(&mut |_, e| {
            let (ru, rv) = (rank[e.u().index()], rank[e.v().index()]);
            counts[ru.min(rv) as usize] += 1;
        });
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut fwd = vec![0u32; acc];
        g.for_each_edge(&mut |_, e| {
            let (ru, rv) = (rank[e.u().index()], rank[e.v().index()]);
            let (lo, hi) = if ru < rv { (ru, rv) } else { (rv, ru) };
            fwd[cursor[lo as usize]] = hi;
            cursor[lo as usize] += 1;
        });
        for r in 0..n {
            fwd[offsets[r]..offsets[r + 1]].sort_unstable();
        }
        Forward {
            rank,
            order,
            offsets,
            fwd,
        }
    }

    /// The forward list (ascending neighbor ranks) of the vertex with
    /// rank `r`.
    #[inline]
    fn list(&self, r: u32) -> &[u32] {
        &self.fwd[self.offsets[r as usize]..self.offsets[r as usize + 1]]
    }

    /// Forward out-degree of vertex `v` — `O(√m)` by construction.
    pub fn forward_degree(&self, v: VertexId) -> usize {
        self.list(self.rank[v.index()]).len()
    }

    /// Maximum forward out-degree over all vertices.
    pub fn max_forward_degree(&self) -> usize {
        (0..self.order.len())
            .map(|r| self.offsets[r + 1] - self.offsets[r])
            .max()
            .unwrap_or(0)
    }

    /// Counts the triangles whose base edge (the edge joining the two
    /// lowest-rank vertices) lies in `g.edges()[range]`. Summing over a
    /// partition of `0..m` counts every triangle exactly once.
    pub fn count_range<G: AsCsr + ?Sized>(&self, g: &G, range: Range<usize>) -> u64 {
        let mut count = 0u64;
        g.for_each_edge_in(range, &mut |_, e| {
            let (a, b) = self.oriented_lists(e.u(), e.v());
            count += merge_count(a, b);
            true
        });
        count
    }

    /// Enumerates the triangles whose base edge lies in
    /// `g.edges()[range]`, in (edge index, closing rank) order.
    pub fn enumerate_range<G: AsCsr + ?Sized>(&self, g: &G, range: Range<usize>) -> Vec<Triangle> {
        let mut out = Vec::new();
        g.for_each_edge_in(range, &mut |_, e| {
            let (a, b) = self.oriented_lists(e.u(), e.v());
            merge_common(a, b, |r| {
                out.push(Triangle::new(e.u(), e.v(), self.order[r as usize]));
            });
            true
        });
        out
    }

    /// Returns some triangle of `g`, or `None` if triangle-free: the
    /// triangle closing the first base edge (in canonical edge order)
    /// with a non-empty forward intersection, at its smallest closing
    /// rank — a deterministic function of the graph.
    pub fn find_triangle<G: AsCsr + ?Sized>(&self, g: &G) -> Option<Triangle> {
        let mut found = None;
        g.for_each_edge_in(0..g.edge_count(), &mut |_, e| {
            let (a, b) = self.oriented_lists(e.u(), e.v());
            match merge_first(a, b) {
                Some(r) => {
                    found = Some(Triangle::new(e.u(), e.v(), self.order[r as usize]));
                    false
                }
                None => true,
            }
        });
        found
    }

    /// The forward lists of an edge's endpoints (in either order — the
    /// intersection is symmetric, and only the base pair of a triangle
    /// yields hits).
    #[inline]
    fn oriented_lists(&self, u: VertexId, v: VertexId) -> (&[u32], &[u32]) {
        (
            self.list(self.rank[u.index()]),
            self.list(self.rank[v.index()]),
        )
    }
}

/// Number of common elements of two ascending slices (linear merge).
#[inline]
fn merge_count(a: &[u32], b: &[u32]) -> u64 {
    let mut count = 0u64;
    merge_common(a, b, |_| count += 1);
    count
}

/// First common element of two ascending slices.
#[inline]
fn merge_first(a: &[u32], b: &[u32]) -> Option<u32> {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return Some(a[i]),
        }
    }
    None
}

/// Calls `hit` for every common element of two ascending slices.
#[inline]
fn merge_common(a: &[u32], b: &[u32], mut hit: impl FnMut(u32)) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                hit(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::naive;
    use crate::Graph;

    fn k5() -> Graph {
        let mut pairs = Vec::new();
        for a in 0..5u32 {
            for b in (a + 1)..5 {
                pairs.push((a, b));
            }
        }
        Graph::from_edges(5, pairs)
    }

    #[test]
    fn counts_and_enumeration_match_naive_on_cliques_and_paths() {
        for g in [
            k5(),
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]),
            Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 3)]),
        ] {
            let fwd = Forward::build(&g);
            assert_eq!(
                fwd.count_range(&g, 0..g.edge_count()),
                naive::count_triangles(&g)
            );
            let mut ts = fwd.enumerate_range(&g, 0..g.edge_count());
            ts.sort_unstable();
            assert_eq!(ts, naive::enumerate_triangles(&g));
        }
    }

    #[test]
    fn range_counts_partition_the_total() {
        let g = k5();
        let fwd = Forward::build(&g);
        let m = g.edge_count();
        let total = fwd.count_range(&g, 0..m);
        let split: u64 = (0..m).map(|i| fwd.count_range(&g, i..i + 1)).sum();
        assert_eq!(total, split);
        assert_eq!(total, 10, "K5 has C(5,3) = 10 triangles");
    }

    #[test]
    fn find_returns_valid_witness_or_none() {
        let g = k5();
        let t = Forward::build(&g).find_triangle(&g).unwrap();
        assert!(t.exists_in(&g));
        let path = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert!(Forward::build(&path).find_triangle(&path).is_none());
    }

    #[test]
    fn forward_degrees_are_bounded_on_a_star_with_core() {
        // Hub 0 with 30 leaves plus a K4 core: the hub's forward list is
        // tiny even though its degree is large.
        let mut pairs: Vec<(u32, u32)> = (1..31).map(|i| (0, i)).collect();
        pairs.extend([(31, 32), (31, 33), (32, 33), (0, 31)]);
        let g = Graph::from_edges(34, pairs);
        let fwd = Forward::build(&g);
        assert!(fwd.forward_degree(VertexId(0)) <= 1);
        assert!(fwd.max_forward_degree() <= 4);
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = Graph::from_edges(0, []);
        let fwd = Forward::build(&g);
        assert_eq!(fwd.count_range(&g, 0..0), 0);
        assert!(fwd.find_triangle(&g).is_none());
        assert_eq!(fwd.max_forward_degree(), 0);
    }
}
