//! The pre-kernel reference implementations, preserved verbatim.
//!
//! These are the merge-the-full-adjacency-lists and
//! rebuild-the-graph-per-removal algorithms the kernel layer replaced.
//! They stay in-tree for two reasons: the differential test suite
//! (`tests/kernels_differential.rs`, plus the proptests in
//! `tests/properties.rs`) pins every kernel against them on a seed ×
//! generator × thread-count matrix, and the bench harness times them
//! against the kernels for `BENCH_kernels.json`. Production callers
//! should use [`crate::triangles`] / [`crate::distance`], which route
//! through [`crate::kernels`].

use crate::{Edge, Graph, Triangle, VertexId};
use std::collections::HashSet;

/// First common neighbor of `u` and `v` by full linear merge of both
/// adjacency lists — `Θ(d_u + d_v)` even when one list is tiny.
pub fn first_common_neighbor(g: &Graph, u: VertexId, v: VertexId) -> Option<VertexId> {
    let (a, b) = (g.neighbors(u), g.neighbors(v));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return Some(a[i]),
        }
    }
    None
}

/// First triangle in canonical edge order, closed at its smallest
/// common neighbor.
pub fn find_triangle(g: &Graph) -> Option<Triangle> {
    for e in g.edges() {
        let (u, v) = e.endpoints();
        if let Some(w) = first_common_neighbor(g, u, v) {
            return Some(Triangle::new(u, v, w));
        }
    }
    None
}

/// Per-edge full-merge triangle count.
pub fn count_triangles(g: &Graph) -> u64 {
    let mut count = 0u64;
    for e in g.edges() {
        let (u, v) = e.endpoints();
        count += g.common_neighbors(u, v).iter().filter(|w| **w > v).count() as u64;
    }
    count
}

/// Per-edge full-merge triangle enumeration (canonical order).
pub fn enumerate_triangles(g: &Graph) -> Vec<Triangle> {
    let mut out = Vec::new();
    for e in g.edges() {
        let (u, v) = e.endpoints();
        for w in g.common_neighbors(u, v) {
            if w > v {
                out.push(Triangle::new(u, v, w));
            }
        }
    }
    out
}

/// Per-edge full-merge triangle-edge filter (canonical order).
pub fn triangle_edges(g: &Graph) -> Vec<Edge> {
    g.edges()
        .iter()
        .copied()
        .filter(|e| {
            let (u, v) = e.endpoints();
            first_common_neighbor(g, u, v).is_some()
        })
        .collect()
}

/// The rebuild-per-removal greedy hitting loop: find a triangle, remove
/// its highest-degree-sum edge, rebuild the whole graph, repeat.
/// Returns the removed edges in removal order (the original returned a
/// `HashSet` in nondeterministic iteration order — that bug is fixed in
/// [`crate::distance::greedy_hitting_removal`] and mirrored here so the
/// two can be compared sequence-for-sequence).
pub fn greedy_hitting_removal(g: &Graph) -> Vec<Edge> {
    let mut removed = Vec::new();
    let mut current = g.clone();
    while let Some(t) = find_triangle(&current) {
        let e = *t
            .edges()
            .iter()
            .max_by_key(|e| current.degree(e.u()) + current.degree(e.v()))
            .expect("triangle has edges");
        removed.push(e);
        let mut one = HashSet::new();
        one.insert(e);
        current = current.without_edges(&one);
    }
    removed
}

/// The `HashSet`-membership greedy edge-disjoint triangle packing.
pub fn greedy_triangle_packing(g: &Graph) -> Vec<Triangle> {
    let mut used: HashSet<Edge> = HashSet::new();
    let mut packing = Vec::new();
    for e in g.edges() {
        if used.contains(e) {
            continue;
        }
        let (u, v) = e.endpoints();
        let mut found = None;
        for w in g.common_neighbors(u, v) {
            let e2 = Edge::new(u, w);
            let e3 = Edge::new(v, w);
            if !used.contains(&e2) && !used.contains(&e3) {
                found = Some(w);
                break;
            }
        }
        if let Some(w) = found {
            used.insert(*e);
            used.insert(Edge::new(u, w));
            used.insert(Edge::new(v, w));
            packing.push(Triangle::new(u, v, w));
        }
    }
    packing
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_suite_agrees_with_itself_on_k4() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_triangles(&g), 4);
        assert_eq!(enumerate_triangles(&g).len(), 4);
        assert_eq!(triangle_edges(&g).len(), 6);
        assert!(find_triangle(&g).unwrap().exists_in(&g));
        assert_eq!(greedy_triangle_packing(&g).len(), 1);
        let removed: HashSet<Edge> = greedy_hitting_removal(&g).into_iter().collect();
        assert!(find_triangle(&g.without_edges(&removed)).is_none());
    }
}
