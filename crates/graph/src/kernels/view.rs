//! Incremental edge-deletion views over an immutable [`Graph`].
//!
//! [`Graph`] is CSR and immutable: the pre-kernel greedy loops therefore
//! rebuilt (clone + re-sort) the entire graph after every single edge
//! removal, an `O(m log m)` charge per removed edge. A [`DeletionView`]
//! instead overlays two tombstone bitmaps on the borrowed CSR — one per
//! adjacency slot, one per canonical edge — so deleting an edge flips
//! two slot bits plus one edge bit (`O(log d)` to locate them, no
//! allocation) and restoring it flips them back. All queries skip dead
//! slots, and the scan order of live edges and live neighbors is
//! exactly the order a rebuilt graph would expose, which is what makes
//! the view-based greedy loops byte-compatible with the old
//! rebuild-per-edge implementations (pinned by
//! `tests/kernels_differential.rs`).

use crate::kernels::Adjacency;
use crate::{AsCsr, Edge, Graph, Triangle, VertexId};

/// A borrowed CSR backing plus tombstones: O(1)-ish edge deletion, no
/// rebuild. Generic over [`AsCsr`] (defaulting to [`Graph`]), so the
/// greedy loops run unchanged over an mmap-backed
/// [`crate::store::CsrStore`].
#[derive(Debug, Clone)]
pub struct DeletionView<'g, G: AsCsr + ?Sized = Graph> {
    g: &'g G,
    /// Liveness of each flat CSR adjacency slot.
    slot_alive: Vec<bool>,
    /// Liveness of each canonical edge (parallel to `g.edges()`).
    edge_alive: Vec<bool>,
    /// Live degree per vertex.
    degrees: Vec<usize>,
    /// Number of live edges.
    live: usize,
}

impl<'g, G: AsCsr + ?Sized> DeletionView<'g, G> {
    /// A view of `g` with every edge alive.
    pub fn new(g: &'g G) -> Self {
        DeletionView {
            g,
            slot_alive: vec![true; g.adj_len()],
            edge_alive: vec![true; g.edge_count()],
            degrees: g.vertices().map(|v| g.degree(v)).collect(),
            live: g.edge_count(),
        }
    }

    /// The underlying backing.
    pub fn graph(&self) -> &'g G {
        self.g
    }

    /// Number of live edges.
    pub fn live_edge_count(&self) -> usize {
        self.live
    }

    /// Live degree of `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.degrees[v.index()]
    }

    /// Whether `e` is present and not deleted.
    pub fn is_alive(&self, e: Edge) -> bool {
        self.g.edge_index(e).is_some_and(|i| self.edge_alive[i])
    }

    /// Flat CSR slot of `v → w`, if the underlying graph has the edge.
    fn slot(&self, v: VertexId, w: VertexId) -> Option<usize> {
        self.g
            .neighbors(v)
            .binary_search(&w)
            .ok()
            .map(|pos| self.g.adj_start(v) + pos)
    }

    /// Deletes `e`; returns `false` (and changes nothing) if `e` is
    /// absent from the underlying graph or already dead.
    pub fn delete_edge(&mut self, e: Edge) -> bool {
        let Some(i) = self.g.edge_index(e) else {
            return false;
        };
        if !self.edge_alive[i] {
            return false;
        }
        let (u, v) = e.endpoints();
        let su = self.slot(u, v).expect("edge present implies slot");
        let sv = self.slot(v, u).expect("edge present implies slot");
        self.edge_alive[i] = false;
        self.slot_alive[su] = false;
        self.slot_alive[sv] = false;
        self.degrees[u.index()] -= 1;
        self.degrees[v.index()] -= 1;
        self.live -= 1;
        true
    }

    /// Restores a previously deleted `e`; returns `false` if `e` is
    /// absent from the underlying graph or already alive.
    pub fn restore_edge(&mut self, e: Edge) -> bool {
        let Some(i) = self.g.edge_index(e) else {
            return false;
        };
        if self.edge_alive[i] {
            return false;
        }
        let (u, v) = e.endpoints();
        let su = self.slot(u, v).expect("edge present implies slot");
        let sv = self.slot(v, u).expect("edge present implies slot");
        self.edge_alive[i] = true;
        self.slot_alive[su] = true;
        self.slot_alive[sv] = true;
        self.degrees[u.index()] += 1;
        self.degrees[v.index()] += 1;
        self.live += 1;
        true
    }

    /// Deletes every live edge incident to `v`; returns how many died.
    pub fn delete_incident(&mut self, v: VertexId) -> usize {
        let doomed: Vec<Edge> = self.alive_neighbors(v).map(|w| Edge::new(v, w)).collect();
        let mut killed = 0;
        for e in doomed {
            if self.delete_edge(e) {
                killed += 1;
            }
        }
        killed
    }

    /// Live neighbors of `v`, ascending (the order a rebuilt graph's
    /// `neighbors` slice would have).
    pub fn alive_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        let base = self.g.adj_start(v);
        self.g
            .neighbors(v)
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.slot_alive[base + i])
            .map(|(_, w)| *w)
    }

    /// Live edges in canonical order.
    pub fn alive_edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.edge_alive
            .iter()
            .enumerate()
            .filter(|(_, alive)| **alive)
            .map(|(i, _)| self.g.edge_at(i))
    }

    /// Smallest live common neighbor of `u` and `v` — the value the
    /// naive `first_common_neighbor` would return on a rebuilt graph.
    pub fn first_common_alive_neighbor(&self, u: VertexId, v: VertexId) -> Option<VertexId> {
        let mut a = self.alive_neighbors(u).peekable();
        let mut b = self.alive_neighbors(v).peekable();
        while let (Some(x), Some(y)) = (a.peek().copied(), b.peek().copied()) {
            match x.cmp(&y) {
                std::cmp::Ordering::Less => {
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    b.next();
                }
                std::cmp::Ordering::Equal => return Some(x),
            }
        }
        None
    }

    /// First live triangle in canonical edge order (the triangle the
    /// naive edge scan of a rebuilt graph would find), or `None`.
    pub fn find_triangle(&self) -> Option<Triangle> {
        let mut cursor = 0;
        self.find_triangle_from(&mut cursor)
    }

    /// [`Self::find_triangle`] resuming from `*cursor` (an index into
    /// the canonical edge array) and advancing it past edges that have
    /// no live triangle.
    ///
    /// Deletions never create triangles, so once an edge has no live
    /// common neighbor it never will again: a monotone greedy deletion
    /// loop can carry the cursor across iterations and pay `O(1)`
    /// amortized rescans instead of a full scan per removal. The edge a
    /// triangle is found at is *not* skipped — it may sit in further
    /// triangles after one of the other two edges is deleted.
    pub fn find_triangle_from(&self, cursor: &mut usize) -> Option<Triangle> {
        let m = self.edge_alive.len();
        while *cursor < m {
            if self.edge_alive[*cursor] {
                let (u, v) = self.g.edge_at(*cursor).endpoints();
                if let Some(w) = self.first_common_alive_neighbor(u, v) {
                    return Some(Triangle::new(u, v, w));
                }
            }
            *cursor += 1;
        }
        None
    }

    /// Materializes the live edges as a standalone [`Graph`] (the
    /// rebuild the view exists to avoid — test/debug use only).
    pub fn to_graph(&self) -> Graph {
        let mut b = crate::GraphBuilder::new(self.g.vertex_count());
        b.extend_edges(self.alive_edges());
        b.build()
    }
}

impl<G: AsCsr + ?Sized> Adjacency for DeletionView<'_, G> {
    fn vertex_count(&self) -> usize {
        self.g.vertex_count()
    }
    fn degree(&self, v: VertexId) -> usize {
        DeletionView::degree(self, v)
    }
    fn neighbor_list(&self, v: VertexId) -> Vec<VertexId> {
        self.alive_neighbors(v).collect()
    }
    fn has_edge(&self, e: Edge) -> bool {
        self.is_alive(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_triangles() -> Graph {
        Graph::from_edges(6, [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)])
    }

    #[test]
    fn delete_and_restore_round_trip() {
        let g = two_triangles();
        let mut v = DeletionView::new(&g);
        let e = Edge::new(VertexId(0), VertexId(1));
        assert!(v.is_alive(e));
        assert!(v.delete_edge(e));
        assert!(!v.is_alive(e));
        assert!(!v.delete_edge(e), "double delete is a no-op");
        assert_eq!(v.degree(VertexId(0)), 1);
        assert_eq!(v.live_edge_count(), 5);
        assert!(v.restore_edge(e));
        assert!(!v.restore_edge(e), "double restore is a no-op");
        assert_eq!(v.to_graph(), g);
    }

    #[test]
    fn missing_edges_are_rejected() {
        let g = two_triangles();
        let mut v = DeletionView::new(&g);
        let missing = Edge::new(VertexId(0), VertexId(5));
        assert!(!v.delete_edge(missing));
        assert!(!v.restore_edge(missing));
        assert!(!v.is_alive(missing));
    }

    #[test]
    fn alive_neighbors_skip_tombstones_in_order() {
        let g = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]);
        let mut v = DeletionView::new(&g);
        v.delete_edge(Edge::new(VertexId(0), VertexId(2)));
        let nbrs: Vec<VertexId> = v.alive_neighbors(VertexId(0)).collect();
        assert_eq!(nbrs, vec![VertexId(1), VertexId(3), VertexId(4)]);
        assert_eq!(v.alive_edges().count(), 3);
    }

    #[test]
    fn view_find_matches_rebuilt_graph_find() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 3)]);
        let mut v = DeletionView::new(&g);
        let mut dead = std::collections::HashSet::new();
        for e in [
            Edge::new(VertexId(0), VertexId(1)),
            Edge::new(VertexId(2), VertexId(3)),
        ] {
            v.delete_edge(e);
            dead.insert(e);
            let rebuilt = g.without_edges(&dead);
            assert_eq!(
                v.find_triangle(),
                crate::kernels::naive::find_triangle(&rebuilt)
            );
            assert_eq!(v.to_graph(), rebuilt);
        }
    }

    #[test]
    fn cursor_resume_finds_the_same_triangles_as_full_scans() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4), (0, 3)]);
        let mut v = DeletionView::new(&g);
        let mut cursor = 0;
        while let Some(t) = v.find_triangle_from(&mut cursor) {
            assert_eq!(Some(t), v.find_triangle(), "resume must agree with rescan");
            // Delete the lexicographically first edge of the triangle.
            v.delete_edge(t.edges()[0]);
        }
        assert!(v.find_triangle().is_none());
    }

    #[test]
    fn delete_incident_isolates_the_vertex() {
        let g = two_triangles();
        let mut v = DeletionView::new(&g);
        assert_eq!(v.delete_incident(VertexId(4)), 2);
        assert_eq!(v.degree(VertexId(4)), 0);
        assert_eq!(v.live_edge_count(), 4);
        assert_eq!(v.alive_neighbors(VertexId(4)).count(), 0);
    }
}
