//! Fast triangle kernels: degree-ordered enumeration, incremental
//! edge-deletion views, and pool-parallel counting.
//!
//! The naive triangle machinery in [`crate::triangles`] intersects the
//! *full* adjacency lists of each edge's endpoints, which degrades to
//! `Θ(m·Δ)` on skewed graphs, and the greedy distance loops in
//! [`crate::distance`] used to rebuild the whole CSR graph after every
//! single edge removal. This module is the engine that replaces both hot
//! paths (see `docs/KERNELS.md`):
//!
//! * [`Forward`] — a degree-ordered *forward adjacency*: every edge is
//!   oriented from its lower-rank endpoint to its higher-rank endpoint
//!   (rank = position in the degree-ascending vertex order), and each
//!   forward list is sorted by rank. Forward out-degrees are `O(√m)`,
//!   so per-edge forward-list intersection gives genuinely `O(m^{3/2})`
//!   [`find_triangle`], [`count_triangles`] and [`enumerate_triangles`].
//! * [`DeletionView`] — a tombstone bitmap over a borrowed [`Graph`]:
//!   edge deletion flips two bits (no rebuild, no re-sort), restoration
//!   flips them back, and every query skips dead slots. The greedy
//!   hitting/packing loops and the exact-distance branch-and-bound run
//!   on views and never call [`Graph::without_edges`].
//! * [`count_triangles_par`] / [`triangle_edges_par`] — the forward
//!   kernel sharded over fixed-size edge ranges and mapped through any
//!   [`ParallelExecutor`] (in practice `triad_comm::pool::Pool`, whose
//!   `ordered_map` reduces shard results in index order). Shard
//!   boundaries depend only on the edge count, and the reductions are
//!   order-independent, so the output is byte-identical to the serial
//!   kernel at any thread count — the `docs/PARALLELISM.md` contract.
//! * [`naive`] — the pre-kernel reference implementations, kept as the
//!   ground truth for the differential test suite
//!   (`tests/kernels_differential.rs`) and the `BENCH_kernels.json`
//!   naive-vs-kernel timings.

pub mod bitset;
mod forward;
pub mod naive;
mod par;
mod view;

pub use bitset::{BitsetAdjacency, EdgeBitset, RowRef};
pub use forward::Forward;
pub use par::{count_triangles_par, triangle_edges_par, PAR_EDGE_CHUNK};
pub use view::DeletionView;

use crate::{AsCsr, Edge, Graph, Triangle, VertexId};

/// Index-ordered parallel map, the only capability the parallel kernels
/// need from an execution engine.
///
/// `triad-comm` implements this for its deterministic `pool::Pool` by
/// delegating to `Pool::ordered_map` (the crate dependency points that
/// way round, so the impl lives there). The contract is the one
/// `docs/PARALLELISM.md` states for `ordered_map`: the returned vector
/// holds `f(0), …, f(n-1)` in index order, regardless of how the calls
/// were scheduled.
pub trait ParallelExecutor {
    /// Computes `f(0), …, f(n-1)` and returns the results in index order.
    fn ordered_map_items<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync;
}

/// The inline, single-threaded executor: a plain loop. This *is* the
/// serial reference path the parallel kernels are tested against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialExecutor;

impl ParallelExecutor for SerialExecutor {
    fn ordered_map_items<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        (0..n).map(f).collect()
    }
}

/// Host-graph adjacency interface shared by [`Graph`] and
/// [`DeletionView`], so subgraph search ([`crate::subgraphs`]) can run
/// unchanged on a live view instead of a rebuilt graph.
pub trait Adjacency {
    /// Number of vertices in the host's id space.
    fn vertex_count(&self) -> usize;
    /// Current degree of `v` (live degree for views).
    fn degree(&self, v: VertexId) -> usize;
    /// Current sorted neighbors of `v`.
    fn neighbor_list(&self, v: VertexId) -> Vec<VertexId>;
    /// Whether `e` is currently present.
    fn has_edge(&self, e: Edge) -> bool;
}

impl Adjacency for Graph {
    fn vertex_count(&self) -> usize {
        Graph::vertex_count(self)
    }
    fn degree(&self, v: VertexId) -> usize {
        Graph::degree(self, v)
    }
    fn neighbor_list(&self, v: VertexId) -> Vec<VertexId> {
        self.neighbors(v).to_vec()
    }
    fn has_edge(&self, e: Edge) -> bool {
        Graph::has_edge(self, e)
    }
}

/// Returns some triangle of `g`, or `None` if triangle-free, in
/// `O(m^{3/2})` worst case via the forward kernel. Runs over any
/// [`AsCsr`] backing — heap graph or mmap-backed store — with the same
/// witness.
///
/// The witness is a deterministic function of the graph (the triangle
/// whose base edge — the edge joining its two lowest-*rank* vertices —
/// comes first in canonical edge order), but it is **not** the same
/// witness the naive edge scan returns; callers that need a triangle,
/// not a specific triangle, are unaffected.
pub fn find_triangle<G: AsCsr + ?Sized>(g: &G) -> Option<Triangle> {
    Forward::build(g).find_triangle(g)
}

/// Average-degree density gate: at `m ≥ n²/128` (average degree
/// `≥ n/64`, i.e. adjacency rows averaging one set bit per word) the
/// word-parallel [`BitsetAdjacency`] sweep overtakes the forward-list
/// merges, so [`count_triangles`] switches kernels there. Both sides of
/// the gate are asserted equal by the differential tests.
pub fn dense_kernel_wins(edges: usize, vertices: usize) -> bool {
    vertices > 64 && (edges as u128) * 128 >= (vertices as u128) * (vertices as u128)
}

/// Counts triangles of `g`: `O(m^{3/2})` forward-list merges on sparse
/// inputs, word-parallel AND-popcount ([`BitsetAdjacency`]) past the
/// [`dense_kernel_wins`] density gate. Both kernels partition triangles
/// by base edge, so the count is identical on either side of the gate.
pub fn count_triangles<G: AsCsr + ?Sized>(g: &G) -> u64 {
    if dense_kernel_wins(g.edge_count(), g.vertex_count()) {
        BitsetAdjacency::build(g).count_all(g)
    } else {
        Forward::build(g).count_range(g, 0..g.edge_count())
    }
}

/// Enumerates all triangles of `g`, each exactly once, in canonical
/// (sorted) order, in `O(m^{3/2} + t)` via the forward kernel.
pub fn enumerate_triangles<G: AsCsr + ?Sized>(g: &G) -> Vec<Triangle> {
    let mut out = Forward::build(g).enumerate_range(g, 0..g.edge_count());
    out.sort_unstable();
    out
}

/// All edges of `g` participating in at least one triangle, in canonical
/// order — the serial instantiation of [`triangle_edges_par`].
pub fn triangle_edges<G: AsCsr + ?Sized>(g: &G) -> Vec<Edge> {
    triangle_edges_par(g, &SerialExecutor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_is_index_ordered() {
        let got = SerialExecutor.ordered_map_items(5, |i| i * i);
        assert_eq!(got, vec![0, 1, 4, 9, 16]);
    }

    #[test]
    fn adjacency_impl_for_graph_matches_inherent_methods() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (0, 2)]);
        let a: &dyn Adjacency = &g;
        assert_eq!(a.vertex_count(), 4);
        assert_eq!(a.degree(VertexId(1)), 2);
        assert_eq!(a.neighbor_list(VertexId(0)), g.neighbors(VertexId(0)));
        assert!(a.has_edge(Edge::new(VertexId(2), VertexId(1))));
    }

    #[test]
    fn dense_gate_routes_to_the_bitset_kernel_with_the_same_count() {
        // K80 sits far past the density gate; a 100-vertex path sits
        // far below it. Both must agree with the ungated forward kernel.
        let mut pairs = Vec::new();
        for a in 0..80u32 {
            for b in (a + 1)..80 {
                pairs.push((a, b));
            }
        }
        let k80 = Graph::from_edges(80, pairs);
        assert!(dense_kernel_wins(k80.edge_count(), k80.vertex_count()));
        let forward = Forward::build(&k80).count_range(&k80, 0..k80.edge_count());
        assert_eq!(count_triangles(&k80), forward);
        assert_eq!(forward, 80 * 79 * 78 / 6);
        let path = Graph::from_edges(2000, (0..1999).map(|i| (i, i + 1)));
        assert!(!dense_kernel_wins(path.edge_count(), path.vertex_count()));
        assert_eq!(count_triangles(&path), 0);
    }

    #[test]
    fn kernel_entry_points_agree_with_naive_on_k4() {
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(count_triangles(&g), naive::count_triangles(&g));
        assert_eq!(enumerate_triangles(&g), naive::enumerate_triangles(&g));
        assert_eq!(triangle_edges(&g), naive::triangle_edges(&g));
        let t = find_triangle(&g).expect("K4 has triangles");
        assert!(t.exists_in(&g));
    }
}
