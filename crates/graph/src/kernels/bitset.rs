//! Word-parallel edge bitsets — the dense-graph triangle kernel and the
//! container behind `triad-comm`'s bitset payloads.
//!
//! Two structures live here, one per job:
//!
//! * [`EdgeBitset`] — a *transportable* edge-set container over the
//!   vertex-id space: one upper-triangle row per vertex (`row u` holds a
//!   bit per neighbor `v > u`), each row stored either as a sorted
//!   sparse id list or as packed `u64` words, promoted per row at a
//!   memory break-even threshold (a roaring-style hybrid). Iteration
//!   yields edges in canonical order, so an `EdgeBitset` and a sorted
//!   edge list describing the same set are interchangeable everywhere a
//!   deterministic order matters. Unions are word-parallel on dense
//!   rows.
//! * [`BitsetAdjacency`] — the *counting* structure: the full symmetric
//!   adjacency packed into `⌈n/64⌉`-word rows over the degree-ordered
//!   **rank** space (the same `(degree, id)`-ascending order
//!   [`super::Forward`] uses). Per base edge, the triangles it closes
//!   are exactly the set bits of `row(rank u) AND row(rank v)` masked to
//!   ranks above both endpoints — one AND-popcount sweep per edge,
//!   `O(m·n/64)` total, which beats the `O(m^{3/2})` merge kernel once
//!   the graph is dense and beats the naive `Θ(m·Δ)` merges far sooner.
//!
//! Witness discipline: [`BitsetAdjacency`] ranks vertices with the
//! identical sort key as [`super::Forward`] and scans base edges in the
//! same canonical order, so `find_triangle` returns the **same witness**
//! — the triangle closing the first base edge at its smallest closing
//! rank. The equivalence is pinned by the tests below and leaned on by
//! the payload differential suite (`tests/payload_differential.rs`).

use crate::{AsCsr, Edge, Triangle, VertexId};

/// Words needed for `n` bits.
#[inline]
const fn words_for(n: usize) -> usize {
    n.div_ceil(64)
}

/// One upper-triangle row of an [`EdgeBitset`]: the neighbors `v > u`
/// of row `u`, sparse (sorted ids) or dense (packed words).
#[derive(Debug, Clone, PartialEq)]
enum Row {
    /// Strictly ascending neighbor ids, all `> u` for row `u`.
    Sparse(Vec<u32>),
    /// Bit `v` set ⇔ edge `(u, v)` present; `⌈n/64⌉` words.
    Dense(Box<[u64]>),
}

impl Row {
    fn count(&self) -> usize {
        match self {
            Row::Sparse(ids) => ids.len(),
            Row::Dense(words) => words.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    fn contains(&self, v: u32) -> bool {
        match self {
            Row::Sparse(ids) => ids.binary_search(&v).is_ok(),
            Row::Dense(words) => (words[v as usize / 64] >> (v as usize % 64)) & 1 == 1,
        }
    }
}

/// A set of edges over `n` vertices, packed for word-parallel unions.
///
/// Semantically this is exactly a sorted, deduplicated edge list — and
/// it compares equal ([`PartialEq`]) to any `EdgeBitset` over the same
/// `n` holding the same edges, *regardless* of which rows happen to be
/// sparse or dense. Representation is a runtime choice, never a
/// semantic one (the same rule `triad-comm` applies to borrowed vs
/// owned `Cow<[Edge]>` payloads).
#[derive(Debug, Clone)]
pub struct EdgeBitset {
    n: usize,
    count: usize,
    rows: Vec<Row>,
}

impl EdgeBitset {
    /// Sparse rows longer than this promote to dense words. The
    /// break-even is memory-exact: a sparse entry is one `u32`, so a
    /// row of `2·⌈n/64⌉` ids occupies the same bytes as the full dense
    /// row, and anything longer is strictly smaller (and faster to
    /// union) packed.
    fn promote_at(n: usize) -> usize {
        2 * words_for(n)
    }

    /// An empty set over `n` vertices.
    pub fn new(n: usize) -> EdgeBitset {
        EdgeBitset {
            n,
            count: 0,
            rows: vec![Row::Sparse(Vec::new()); n],
        }
    }

    /// Builds the set from edges (duplicates are absorbed).
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range for `n`.
    pub fn from_edges<I: IntoIterator<Item = Edge>>(n: usize, edges: I) -> EdgeBitset {
        let mut set = EdgeBitset::new(n);
        for e in edges {
            set.insert(e);
        }
        set
    }

    /// The vertex-count this set is defined over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges in the set.
    pub fn len(&self) -> usize {
        self.count
    }

    /// `true` iff the set holds no edges.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Inserts `e`; returns `true` iff it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range for `n`.
    pub fn insert(&mut self, e: Edge) -> bool {
        let (u, v) = (e.u().index(), e.v().0);
        assert!(
            (v as usize) < self.n,
            "edge {e} out of range for n = {}",
            self.n
        );
        let promote = Self::promote_at(self.n);
        let row = &mut self.rows[u];
        let inserted = match row {
            Row::Sparse(ids) => match ids.binary_search(&v) {
                Ok(_) => false,
                Err(pos) => {
                    ids.insert(pos, v);
                    if ids.len() > promote {
                        let mut words = vec![0u64; words_for(self.n)].into_boxed_slice();
                        for &id in ids.iter() {
                            words[id as usize / 64] |= 1u64 << (id as usize % 64);
                        }
                        *row = Row::Dense(words);
                    }
                    true
                }
            },
            Row::Dense(words) => {
                let (w, b) = (v as usize / 64, v as usize % 64);
                let fresh = (words[w] >> b) & 1 == 0;
                words[w] |= 1u64 << b;
                fresh
            }
        };
        self.count += usize::from(inserted);
        inserted
    }

    /// `true` iff `e` is in the set.
    pub fn contains(&self, e: Edge) -> bool {
        let u = e.u().index();
        u < self.n && (e.v().index()) < self.n && self.rows[u].contains(e.v().0)
    }

    /// Word-parallel union: absorbs every edge of `other` into `self`.
    /// Dense-row pairs merge by one OR sweep; mixed pairs set bits.
    ///
    /// # Panics
    ///
    /// Panics if the two sets disagree on `n`.
    pub fn union_with(&mut self, other: &EdgeBitset) {
        assert_eq!(self.n, other.n, "union of bitsets over different n");
        let promote = Self::promote_at(self.n);
        for (row, theirs) in self.rows.iter_mut().zip(&other.rows) {
            match (&mut *row, theirs) {
                (_, Row::Sparse(ids)) if ids.is_empty() => {}
                (Row::Dense(mine), Row::Dense(words)) => {
                    self.count -= mine.iter().map(|w| w.count_ones() as usize).sum::<usize>();
                    for (a, b) in mine.iter_mut().zip(words.iter()) {
                        *a |= *b;
                    }
                    self.count += mine.iter().map(|w| w.count_ones() as usize).sum::<usize>();
                }
                (Row::Dense(mine), Row::Sparse(ids)) => {
                    for &id in ids {
                        let (w, b) = (id as usize / 64, id as usize % 64);
                        self.count += usize::from((mine[w] >> b) & 1 == 0);
                        mine[w] |= 1u64 << b;
                    }
                }
                (Row::Sparse(mine), theirs) => {
                    // Merge into a fresh sorted list, then keep or
                    // promote depending on the merged length.
                    let merged: Vec<u32> = match theirs {
                        Row::Sparse(ids) => {
                            let mut out = Vec::with_capacity(mine.len() + ids.len());
                            let (mut i, mut j) = (0, 0);
                            while i < mine.len() && j < ids.len() {
                                match mine[i].cmp(&ids[j]) {
                                    std::cmp::Ordering::Less => {
                                        out.push(mine[i]);
                                        i += 1;
                                    }
                                    std::cmp::Ordering::Greater => {
                                        out.push(ids[j]);
                                        j += 1;
                                    }
                                    std::cmp::Ordering::Equal => {
                                        out.push(mine[i]);
                                        i += 1;
                                        j += 1;
                                    }
                                }
                            }
                            out.extend_from_slice(&mine[i..]);
                            out.extend_from_slice(&ids[j..]);
                            out
                        }
                        Row::Dense(words) => {
                            let mut out: Vec<u32> = iter_words(words).collect();
                            for &id in mine.iter() {
                                if let Err(pos) = out.binary_search(&id) {
                                    out.insert(pos, id);
                                }
                            }
                            out
                        }
                    };
                    self.count += merged.len() - mine.len();
                    if merged.len() > promote {
                        let mut words = vec![0u64; words_for(self.n)].into_boxed_slice();
                        for &id in &merged {
                            words[id as usize / 64] |= 1u64 << (id as usize % 64);
                        }
                        *row = Row::Dense(words);
                    } else {
                        *row = Row::Sparse(merged);
                    }
                }
            }
        }
    }

    /// The edges in canonical (sorted) order.
    pub fn edges(&self) -> EdgeBitsetIter<'_> {
        EdgeBitsetIter {
            set: self,
            row: 0,
            sparse_pos: 0,
            word: 0,
            bits: 0,
            primed: false,
        }
    }

    /// Collects the set into a sorted edge list.
    pub fn to_edges(&self) -> Vec<Edge> {
        self.edges().collect()
    }

    /// Degree of every vertex under this edge set (both endpoints of
    /// each edge are counted, exactly as [`Graph::degree`](crate::Graph::degree) would).
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for e in self.edges() {
            deg[e.u().index()] += 1;
            deg[e.v().index()] += 1;
        }
        deg
    }

    /// Number of rows currently stored dense (diagnostic; exercised by
    /// the promotion tests and the runtime docs).
    pub fn dense_rows(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| matches!(r, Row::Dense(_)))
            .count()
    }

    /// Visits the non-empty rows as `(u, representation)` pairs in
    /// ascending `u` order — the raw view the wire codec serialises
    /// (`docs/NETWORKING.md`). Sparse rows expose their strictly
    /// ascending neighbor ids; dense rows expose their `⌈n/64⌉` packed
    /// words verbatim.
    pub fn rows(&self) -> impl Iterator<Item = (u32, RowRef<'_>)> {
        self.rows.iter().enumerate().filter_map(|(u, row)| {
            let r = match row {
                Row::Sparse(ids) if ids.is_empty() => return None,
                Row::Sparse(ids) => RowRef::Sparse(ids),
                Row::Dense(words) => RowRef::Dense(words),
            };
            Some((u as u32, r))
        })
    }

    /// Installs a fully validated dense row at `u`, replacing whatever
    /// the row held. The decoder's fast path: `words` must be exactly
    /// `⌈n/64⌉` long with every set bit in `(u, n)` — the caller (the
    /// wire codec) checks both *before* allocating.
    ///
    /// # Panics
    ///
    /// Panics if `u ≥ n` or `words` has the wrong length.
    pub fn set_dense_row(&mut self, u: u32, words: Box<[u64]>) {
        assert_eq!(words.len(), words_for(self.n), "dense row width mismatch");
        let row = &mut self.rows[u as usize];
        self.count -= row.count();
        self.count += words.iter().map(|w| w.count_ones() as usize).sum::<usize>();
        *row = Row::Dense(words);
    }
}

/// Borrowed view of one [`EdgeBitset`] row, as yielded by
/// [`EdgeBitset::rows`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowRef<'a> {
    /// Strictly ascending neighbor ids `> u`.
    Sparse(&'a [u32]),
    /// `⌈n/64⌉` packed words; bit `v` set ⇔ edge `(u, v)` present.
    Dense(&'a [u64]),
}

impl PartialEq for EdgeBitset {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.count == other.count && self.edges().eq(other.edges())
    }
}

impl Eq for EdgeBitset {}

/// Ascending set-bit indices of a dense row.
fn iter_words(words: &[u64]) -> impl Iterator<Item = u32> + '_ {
    words.iter().enumerate().flat_map(|(w, &bits)| {
        let mut rest = bits;
        std::iter::from_fn(move || {
            if rest == 0 {
                return None;
            }
            let b = rest.trailing_zeros();
            rest &= rest - 1;
            Some((w as u32) * 64 + b)
        })
    })
}

/// Canonical-order edge iterator over an [`EdgeBitset`].
#[derive(Debug, Clone)]
pub struct EdgeBitsetIter<'a> {
    set: &'a EdgeBitset,
    row: usize,
    sparse_pos: usize,
    word: usize,
    bits: u64,
    primed: bool,
}

impl Iterator for EdgeBitsetIter<'_> {
    type Item = Edge;

    fn next(&mut self) -> Option<Edge> {
        while self.row < self.set.n {
            match &self.set.rows[self.row] {
                Row::Sparse(ids) => {
                    if self.sparse_pos < ids.len() {
                        let v = ids[self.sparse_pos];
                        self.sparse_pos += 1;
                        return Some(Edge::new(VertexId(self.row as u32), VertexId(v)));
                    }
                }
                Row::Dense(words) => {
                    if !self.primed {
                        self.word = 0;
                        self.bits = words[0];
                        self.primed = true;
                    }
                    loop {
                        if self.bits != 0 {
                            let b = self.bits.trailing_zeros();
                            self.bits &= self.bits - 1;
                            let v = (self.word as u32) * 64 + b;
                            return Some(Edge::new(VertexId(self.row as u32), VertexId(v)));
                        }
                        self.word += 1;
                        if self.word >= words.len() {
                            break;
                        }
                        self.bits = words[self.word];
                    }
                }
            }
            self.row += 1;
            self.sparse_pos = 0;
            self.primed = false;
        }
        None
    }
}

/// The full symmetric adjacency packed into `⌈n/64⌉`-word rows over the
/// degree-ordered rank space — the word-parallel triangle kernel.
///
/// `rows[r]` has bit `s` set iff the rank-`r` and rank-`s` vertices are
/// adjacent. For a base edge with endpoint ranks `lo < hi`, the closing
/// vertices of its triangles are the common neighbors of rank `> hi`:
/// one masked AND-popcount sweep. Scanning base edges in canonical edge
/// order reproduces [`super::Forward`]'s counting partition and its
/// exact `find_triangle` witness.
#[derive(Debug, Clone)]
pub struct BitsetAdjacency {
    /// `rank[v]` = position of vertex `v` in the degree-ascending order.
    rank: Vec<u32>,
    /// `order[r]` = vertex with rank `r`.
    order: Vec<VertexId>,
    /// Words per row.
    words: usize,
    /// `n · words` packed adjacency bits, rank-indexed both ways.
    rows: Vec<u64>,
}

impl BitsetAdjacency {
    /// Builds the packed adjacency of `g`.
    pub fn build<G: AsCsr + ?Sized>(g: &G) -> BitsetAdjacency {
        let degrees: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        Self::assemble(
            g.vertex_count(),
            &degrees,
            (0..g.edge_count()).map(|i| g.edge_at(i)),
        )
    }

    /// Builds the packed adjacency of an [`EdgeBitset`], ranking by the
    /// degrees the edge set itself induces — identical to
    /// [`BitsetAdjacency::build`] on a [`Graph`](crate::Graph) holding the same edges.
    pub fn from_edge_bitset(set: &EdgeBitset) -> BitsetAdjacency {
        Self::assemble(set.n(), &set.degrees(), set.edges())
    }

    fn assemble<I>(n: usize, degrees: &[usize], edges: I) -> BitsetAdjacency
    where
        I: Iterator<Item = Edge>,
    {
        let mut order: Vec<VertexId> = (0..n as u32).map(VertexId).collect();
        order.sort_unstable_by_key(|v| (degrees[v.index()], *v));
        let mut rank = vec![0u32; n];
        for (r, v) in order.iter().enumerate() {
            rank[v.index()] = r as u32;
        }
        let words = words_for(n);
        let mut rows = vec![0u64; n * words];
        for e in edges {
            let (ru, rv) = (rank[e.u().index()] as usize, rank[e.v().index()] as usize);
            rows[ru * words + rv / 64] |= 1u64 << (rv % 64);
            rows[rv * words + ru / 64] |= 1u64 << (ru % 64);
        }
        BitsetAdjacency {
            rank,
            order,
            words,
            rows,
        }
    }

    #[inline]
    fn row(&self, r: u32) -> &[u64] {
        let base = r as usize * self.words;
        &self.rows[base..base + self.words]
    }

    /// Ranks of an edge's endpoints as `(lo, hi)`.
    #[inline]
    fn edge_ranks(&self, e: Edge) -> (u32, u32) {
        let (ru, rv) = (self.rank[e.u().index()], self.rank[e.v().index()]);
        if ru < rv {
            (ru, rv)
        } else {
            (rv, ru)
        }
    }

    /// Number of triangles closed by the base edge with endpoint ranks
    /// `(lo, hi)`: popcount of the AND of both rows masked to ranks
    /// `> hi`.
    #[inline]
    fn closing_count(&self, lo: u32, hi: u32) -> u64 {
        let (a, b) = (self.row(lo), self.row(hi));
        let start = hi as usize + 1;
        let mut w = start / 64;
        if w >= self.words {
            return 0;
        }
        let mut mask = !0u64 << (start % 64);
        let mut count = 0u64;
        while w < self.words {
            count += u64::from((a[w] & b[w] & mask).count_ones());
            mask = !0;
            w += 1;
        }
        count
    }

    /// Smallest closing rank `> hi` of the base edge, or `None`.
    #[inline]
    fn first_closing(&self, lo: u32, hi: u32) -> Option<u32> {
        let (a, b) = (self.row(lo), self.row(hi));
        let start = hi as usize + 1;
        let mut w = start / 64;
        if w >= self.words {
            return None;
        }
        let mut mask = !0u64 << (start % 64);
        while w < self.words {
            let hits = a[w] & b[w] & mask;
            if hits != 0 {
                return Some((w as u32) * 64 + hits.trailing_zeros());
            }
            mask = !0;
            w += 1;
        }
        None
    }

    /// Counts the triangles whose base edge appears in `edges` (each
    /// edge of the graph exactly once ⇒ each triangle exactly once,
    /// the same partition [`super::Forward::count_range`] uses).
    pub fn count_edges<I: IntoIterator<Item = Edge>>(&self, edges: I) -> u64 {
        edges
            .into_iter()
            .map(|e| {
                let (lo, hi) = self.edge_ranks(e);
                self.closing_count(lo, hi)
            })
            .sum()
    }

    /// Counts all triangles of `g` (whose adjacency this was built from).
    pub fn count_all<G: AsCsr + ?Sized>(&self, g: &G) -> u64 {
        self.count_edges((0..g.edge_count()).map(|i| g.edge_at(i)))
    }

    /// Returns the triangle closing the first base edge of `edges` (in
    /// the order given — pass canonical edge order for the
    /// [`super::Forward`]-identical witness) at its smallest closing
    /// rank, or `None` if no edge closes.
    pub fn find_triangle_in<I: IntoIterator<Item = Edge>>(&self, edges: I) -> Option<Triangle> {
        for e in edges {
            let (lo, hi) = self.edge_ranks(e);
            if let Some(r) = self.first_closing(lo, hi) {
                return Some(Triangle::new(e.u(), e.v(), self.order[r as usize]));
            }
        }
        None
    }
}

/// Returns some triangle of `set`, or `None` if triangle-free — the
/// **same witness** `kernels::find_triangle` returns on a [`Graph`](crate::Graph)
/// holding the same edges (pinned by tests), in `O(m·n/64)` word work.
pub fn find_triangle(set: &EdgeBitset) -> Option<Triangle> {
    BitsetAdjacency::from_edge_bitset(set).find_triangle_in(set.edges())
}

/// Counts the triangles of `set` by word-parallel AND-popcount.
pub fn count_triangles(set: &EdgeBitset) -> u64 {
    BitsetAdjacency::from_edge_bitset(set).count_edges(set.edges())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{self, naive, Forward};
    use crate::Graph;

    /// Deterministic pseudo-random edge pairs (splitmix-style), dense
    /// enough to exercise row promotion.
    fn scrambled_pairs(n: u32, m: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut out = Vec::with_capacity(m);
        while out.len() < m {
            let a = (next() % u64::from(n)) as u32;
            let b = (next() % u64::from(n)) as u32;
            if a != b {
                out.push((a, b));
            }
        }
        out
    }

    #[test]
    fn insert_iterate_roundtrips_in_canonical_order() {
        let n = 50;
        let g = Graph::from_edges(n, scrambled_pairs(50, 300, 7));
        let set = EdgeBitset::from_edges(n, g.edges().iter().copied());
        assert_eq!(set.len(), g.edge_count());
        assert_eq!(set.to_edges(), g.edges());
        for e in g.edges() {
            assert!(set.contains(*e));
        }
        assert!(!set.is_empty());
        assert_eq!(
            set.degrees(),
            g.vertices().map(|v| g.degree(v)).collect::<Vec<_>>()
        );
    }

    #[test]
    fn duplicates_are_absorbed_and_len_is_exact() {
        let mut set = EdgeBitset::new(10);
        let e = Edge::new(VertexId(2), VertexId(7));
        assert!(set.insert(e));
        assert!(!set.insert(e));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn dense_rows_promote_and_stay_equal_to_sparse() {
        // One hub with every neighbor: its row must promote, and the
        // set must stay equal to a sparse-built set with the same edges.
        let n = 200;
        let pairs: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        let hub = EdgeBitset::from_edges(
            n,
            pairs
                .iter()
                .map(|&(a, b)| Edge::new(VertexId(a), VertexId(b))),
        );
        assert!(hub.dense_rows() >= 1, "hub row must promote to dense");
        let mut sparse = EdgeBitset::new(n);
        for &(a, b) in pairs.iter().rev() {
            sparse.insert(Edge::new(VertexId(a), VertexId(b)));
        }
        assert_eq!(hub, sparse, "representation must not affect equality");
        assert_eq!(hub.to_edges(), sparse.to_edges());
    }

    #[test]
    fn union_matches_set_union_across_representations() {
        let n = 120;
        let a_pairs = scrambled_pairs(120, 900, 3); // dense: promotes rows
        let b_pairs = scrambled_pairs(120, 60, 4); // sparse
        let ga = Graph::from_edges(n, a_pairs.clone());
        let gb = Graph::from_edges(n, b_pairs.clone());
        let mut both = a_pairs;
        both.extend(b_pairs);
        let reference = Graph::from_edges(n, both);

        // All four (dense|sparse) × (dense|sparse) orderings agree.
        for (x, y) in [(&ga, &gb), (&gb, &ga)] {
            let mut u = EdgeBitset::from_edges(n, x.edges().iter().copied());
            u.union_with(&EdgeBitset::from_edges(n, y.edges().iter().copied()));
            assert_eq!(u.to_edges(), reference.edges());
            assert_eq!(u.len(), reference.edge_count());
        }
        let mut u = EdgeBitset::from_edges(n, ga.edges().iter().copied());
        u.union_with(&EdgeBitset::new(n));
        assert_eq!(u.to_edges(), ga.edges());
    }

    #[test]
    fn counts_match_forward_and_naive_across_densities() {
        for (n, m, seed) in [(30, 40, 1), (40, 200, 2), (60, 1200, 3), (16, 120, 4)] {
            let g = Graph::from_edges(n, scrambled_pairs(n as u32, m, seed));
            let adj = BitsetAdjacency::build(&g);
            assert_eq!(adj.count_all(&g), naive::count_triangles(&g), "n={n} m={m}");
            let set = EdgeBitset::from_edges(n, g.edges().iter().copied());
            assert_eq!(count_triangles(&set), naive::count_triangles(&g));
        }
    }

    #[test]
    fn witness_is_bit_for_bit_the_forward_witness() {
        for (n, m, seed) in [(25, 60, 5), (40, 300, 6), (80, 2000, 7), (50, 90, 8)] {
            let g = Graph::from_edges(n, scrambled_pairs(n as u32, m, seed));
            let fwd = Forward::build(&g).find_triangle(&g);
            let adj = BitsetAdjacency::build(&g);
            assert_eq!(
                adj.find_triangle_in(g.edges().iter().copied()),
                fwd,
                "n={n} m={m}: adjacency witness"
            );
            let set = EdgeBitset::from_edges(n, g.edges().iter().copied());
            assert_eq!(find_triangle(&set), fwd, "n={n} m={m}: bitset witness");
        }
    }

    #[test]
    fn triangle_free_and_degenerate_inputs() {
        let path = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4)]);
        let set = EdgeBitset::from_edges(6, path.edges().iter().copied());
        assert_eq!(find_triangle(&set), None);
        assert_eq!(count_triangles(&set), 0);
        let empty = EdgeBitset::new(0);
        assert_eq!(find_triangle(&empty), None);
        assert_eq!(empty.to_edges(), vec![]);
        // Ranks at a word boundary: n just past 64 with a closing vertex
        // whose rank lands in the second word.
        let mut pairs: Vec<(u32, u32)> = (0..66u32)
            .flat_map(|i| [(i, (i + 1) % 70), (i, (i + 2) % 70)])
            .collect();
        pairs.push((68, 69));
        let g = Graph::from_edges(70, pairs);
        let set = EdgeBitset::from_edges(70, g.edges().iter().copied());
        assert_eq!(count_triangles(&set), naive::count_triangles(&g));
        assert_eq!(find_triangle(&set), kernels::find_triangle(&g));
    }

    #[test]
    fn rows_view_reconstructs_the_set_and_dense_install_matches_insert() {
        let n = 150;
        let g = Graph::from_edges(n, scrambled_pairs(150, 1200, 9));
        let set = EdgeBitset::from_edges(n, g.edges().iter().copied());
        // Rebuild through the raw row view, exercising both arms.
        let mut rebuilt = EdgeBitset::new(n);
        let mut saw_sparse = false;
        let mut saw_dense = false;
        for (u, row) in set.rows() {
            match row {
                RowRef::Sparse(ids) => {
                    saw_sparse = true;
                    assert!(ids.windows(2).all(|w| w[0] < w[1]));
                    for &v in ids {
                        rebuilt.insert(Edge::new(VertexId(u), VertexId(v)));
                    }
                }
                RowRef::Dense(words) => {
                    saw_dense = true;
                    rebuilt.set_dense_row(u, words.to_vec().into_boxed_slice());
                }
            }
        }
        assert!(
            saw_sparse && saw_dense,
            "workload must exercise both row kinds"
        );
        assert_eq!(rebuilt, set);
        assert_eq!(rebuilt.len(), set.len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edges_are_rejected() {
        let mut set = EdgeBitset::new(4);
        set.insert(Edge::new(VertexId(1), VertexId(9)));
    }
}
