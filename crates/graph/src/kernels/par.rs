//! Pool-parallel triangle kernels.
//!
//! Work is sharded over **fixed-size ranges of the canonical edge
//! array** — shard boundaries depend only on the edge count, never on
//! the thread count — and shard results are reduced in shard order by
//! the executor's ordered map. Counting reduces by summation
//! (commutative) and triangle-edge collection reduces by OR-ing
//! per-shard bitmaps then emitting in canonical edge order, so both
//! functions are byte-identical to the serial kernel at any thread
//! count: the `docs/PARALLELISM.md` contract, enforced by
//! `tests/kernels_differential.rs`.

use crate::kernels::{Forward, ParallelExecutor};
use crate::{AsCsr, Edge};

/// Edges per parallel shard. Fixed (not derived from the thread count)
/// so the shard decomposition — and hence any per-shard observable — is
/// the same no matter how many workers run it.
pub const PAR_EDGE_CHUNK: usize = 2048;

/// Number of shards covering `m` edges (at least 1, so the empty graph
/// still maps cleanly).
fn shard_count(m: usize) -> usize {
    m.div_ceil(PAR_EDGE_CHUNK).max(1)
}

/// The edge range of shard `s`.
fn shard_range(s: usize, m: usize) -> std::ops::Range<usize> {
    (s * PAR_EDGE_CHUNK).min(m)..((s + 1) * PAR_EDGE_CHUNK).min(m)
}

/// Counts triangles of `g` with per-shard forward intersections run on
/// `exec` — equal to [`crate::kernels::count_triangles`] (and to the
/// naive count) at any thread count.
pub fn count_triangles_par<G: AsCsr + ?Sized, E: ParallelExecutor>(g: &G, exec: &E) -> u64 {
    let fwd = Forward::build(g);
    let m = g.edge_count();
    exec.ordered_map_items(shard_count(m), |s| fwd.count_range(g, shard_range(s, m)))
        .into_iter()
        .sum()
}

/// All edges of `g` participating in at least one triangle, in
/// canonical order, computed by sharded forward enumeration on `exec`.
///
/// Each shard enumerates the triangles based in its edge range and
/// marks all three edges of each; the marks are OR-ed and emitted in
/// canonical order, so the result equals the naive per-edge filter
/// (`kernels::naive::triangle_edges`) bit for bit.
pub fn triangle_edges_par<G: AsCsr + ?Sized, E: ParallelExecutor>(g: &G, exec: &E) -> Vec<Edge> {
    let fwd = Forward::build(g);
    let m = g.edge_count();
    let shard_marks = exec.ordered_map_items(shard_count(m), |s| {
        let mut marks = vec![false; m];
        for t in fwd.enumerate_range(g, shard_range(s, m)) {
            for e in t.edges() {
                let i = g.edge_index(e).expect("triangle edges are graph edges");
                marks[i] = true;
            }
        }
        marks
    });
    let mut marked = vec![false; m];
    for marks in shard_marks {
        for (slot, hit) in marked.iter_mut().zip(marks) {
            *slot |= hit;
        }
    }
    let mut out = Vec::new();
    g.for_each_edge(&mut |i, e| {
        if marked[i] {
            out.push(e);
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{naive, SerialExecutor};
    use crate::Graph;

    fn book_plus_pendant() -> Graph {
        Graph::from_edges(
            6,
            [
                (0, 1),
                (0, 2),
                (1, 2),
                (0, 3),
                (1, 3),
                (0, 4),
                (1, 4),
                (4, 5),
            ],
        )
    }

    #[test]
    fn par_count_matches_naive_on_the_serial_executor() {
        let g = book_plus_pendant();
        assert_eq!(
            count_triangles_par(&g, &SerialExecutor),
            naive::count_triangles(&g)
        );
    }

    #[test]
    fn par_triangle_edges_match_naive_filter() {
        let g = book_plus_pendant();
        assert_eq!(
            triangle_edges_par(&g, &SerialExecutor),
            naive::triangle_edges(&g)
        );
    }

    #[test]
    fn sharding_covers_every_edge_exactly_once() {
        for m in [
            0usize,
            1,
            PAR_EDGE_CHUNK - 1,
            PAR_EDGE_CHUNK,
            PAR_EDGE_CHUNK + 1,
        ] {
            let mut covered = 0usize;
            for s in 0..shard_count(m) {
                let r = shard_range(s, m);
                assert!(r.start <= r.end && r.end <= m);
                covered += r.len();
            }
            assert_eq!(covered, m, "m = {m}");
        }
    }

    #[test]
    fn empty_graph_counts_zero() {
        let g = Graph::from_edges(3, []);
        assert_eq!(count_triangles_par(&g, &SerialExecutor), 0);
        assert!(triangle_edges_par(&g, &SerialExecutor).is_empty());
    }
}
