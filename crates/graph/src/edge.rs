use crate::VertexId;
use serde::{Deserialize, Serialize};

/// An undirected edge, stored canonically with `u() < v()`.
///
/// Canonical storage means two `Edge` values over the same endpoint pair are
/// always equal and hash identically, regardless of construction order —
/// essential for the paper's model where several players may hold duplicate
/// copies of the same edge.
///
/// # Example
///
/// ```
/// use triad_graph::{Edge, VertexId};
/// let e1 = Edge::new(VertexId(5), VertexId(2));
/// let e2 = Edge::new(VertexId(2), VertexId(5));
/// assert_eq!(e1, e2);
/// assert_eq!(e1.u(), VertexId(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Edge {
    u: VertexId,
    v: VertexId,
}

impl Edge {
    /// Creates an edge between two distinct vertices, canonicalizing order.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not part of the model).
    #[inline]
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert!(a != b, "self-loops are not allowed");
        if a < b {
            Edge { u: a, v: b }
        } else {
            Edge { u: b, v: a }
        }
    }

    /// The smaller endpoint.
    #[inline]
    pub fn u(self) -> VertexId {
        self.u
    }

    /// The larger endpoint.
    #[inline]
    pub fn v(self) -> VertexId {
        self.v
    }

    /// Both endpoints, smaller first.
    #[inline]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        (self.u, self.v)
    }

    /// Returns `true` if `w` is one of the endpoints.
    #[inline]
    pub fn is_incident_to(self, w: VertexId) -> bool {
        self.u == w || self.v == w
    }

    /// Given one endpoint, returns the other; `None` if `w` is not an endpoint.
    #[inline]
    pub fn other(self, w: VertexId) -> Option<VertexId> {
        if self.u == w {
            Some(self.v)
        } else if self.v == w {
            Some(self.u)
        } else {
            None
        }
    }

    /// Returns the shared endpoint of two distinct edges, if any.
    ///
    /// Two distinct edges can share at most one endpoint; this is what makes
    /// a pair of edges a *vee* (the paper's Definition 2 precondition).
    pub fn shared_endpoint(self, other: Edge) -> Option<VertexId> {
        if self == other {
            return None;
        }
        [self.u, self.v]
            .into_iter()
            .find(|&a| other.is_incident_to(a))
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(a: u32, b: u32) -> Edge {
        Edge::new(VertexId(a), VertexId(b))
    }

    #[test]
    fn canonical_order() {
        assert_eq!(e(5, 2), e(2, 5));
        assert_eq!(e(5, 2).u(), VertexId(2));
        assert_eq!(e(5, 2).v(), VertexId(5));
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let _ = e(3, 3);
    }

    #[test]
    fn incidence_and_other() {
        let ed = e(1, 4);
        assert!(ed.is_incident_to(VertexId(1)));
        assert!(ed.is_incident_to(VertexId(4)));
        assert!(!ed.is_incident_to(VertexId(2)));
        assert_eq!(ed.other(VertexId(1)), Some(VertexId(4)));
        assert_eq!(ed.other(VertexId(4)), Some(VertexId(1)));
        assert_eq!(ed.other(VertexId(9)), None);
    }

    #[test]
    fn shared_endpoint() {
        assert_eq!(e(1, 2).shared_endpoint(e(2, 3)), Some(VertexId(2)));
        assert_eq!(e(1, 2).shared_endpoint(e(3, 4)), None);
        // identical edges: not a vee
        assert_eq!(e(1, 2).shared_endpoint(e(1, 2)), None);
    }

    #[test]
    fn display() {
        assert_eq!(e(7, 3).to_string(), "(3, 7)");
    }
}
