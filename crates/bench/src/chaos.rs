//! Chaos-matrix benchmark — the `BENCH_chaos.json` export.
//!
//! Sweeps fault rate × protocol × player count over a deterministic
//! triangle-free workload and records, per cell, the quorum-gated
//! verdict, per-error-kind failure counts, the faults actually injected,
//! and the recovery traffic charged under
//! [`triad_comm::RETRANSMIT_LABEL`]. Unlike the timing benches
//! (`BENCH_runtime.json`, `BENCH_kernels.json`) every number here is
//! deterministic — same seeds, same plan, same verdict at any thread
//! count — so `BENCH_chaos.json` is byte-diffable across machines.
//!
//! The rate-0 rows are the control group: the fault-free chaos path is
//! byte-identical to the plain amplified path (pinned by
//! `tests/chaos_differential.rs`), so those rows must show zero
//! failures, zero injections and zero retransmitted bits.

use crate::experiments::Scale;
use crate::runtime::bipartite_workload;
use triad_comm::pool::Pool;
use triad_comm::{FaultPlan, FaultRates};
use triad_protocols::amplify::PreparedInput;
use triad_protocols::baseline::SendEverything;
use triad_protocols::{
    run_chaos_amplified, ChaosRun, Repeatable, SimProtocolKind, SimultaneousTester, Tuning,
    UnrestrictedTester, DEFAULT_QUORUM,
};

/// One cell of the chaos matrix: one protocol amplified under one fault
/// plan on one workload.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Protocol under amplification.
    pub protocol: String,
    /// Fault mix of the plan (`none` or `mixed`).
    pub faults: String,
    /// Aggregate per-delivery fault rate of the plan.
    pub rate: f64,
    /// Vertex count of the (triangle-free) input.
    pub vertices: usize,
    /// Edge count of the input.
    pub edges: usize,
    /// Number of players.
    pub players: usize,
    /// Scheduled repetitions (all attempted: the input is triangle-free,
    /// so no witness short-circuits the sweep).
    pub repetitions: u32,
    /// The fault plan's seed.
    pub seed: u64,
    /// The survivor quorum applied.
    pub quorum: f64,
    /// The completed chaos run behind the cell.
    pub run: ChaosRun,
}

impl ChaosCell {
    fn to_json(&self) -> String {
        let r = &self.run;
        let mut s = String::from("{");
        s.push_str(&format!("\"protocol\":\"{}\",", self.protocol));
        s.push_str(&format!("\"faults\":\"{}\",", self.faults));
        s.push_str(&format!("\"rate\":{:.3},", self.rate));
        s.push_str(&format!("\"vertices\":{},", self.vertices));
        s.push_str(&format!("\"edges\":{},", self.edges));
        s.push_str(&format!("\"players\":{},", self.players));
        s.push_str(&format!("\"repetitions\":{},", self.repetitions));
        s.push_str(&format!("\"seed\":{},", self.seed));
        s.push_str(&format!("\"quorum\":{:.3},", self.quorum));
        s.push_str(&format!("\"outcome\":\"{}\",", r.outcome.as_str()));
        s.push_str(&format!("\"survived\":{},", r.survived));
        s.push_str(&format!("\"attempted\":{},", r.attempted));
        s.push_str(&format!("\"needed\":{},", r.needed));
        s.push_str(&format!(
            "\"failures\":{{\"transport\":{},\"timeout\":{},\"corrupt\":{},\"aborted\":{}}},",
            r.failures.transport, r.failures.timeout, r.failures.corrupt, r.failures.aborted
        ));
        s.push_str(&format!(
            "\"injected\":{{\"drops\":{},\"corruptions\":{},\"duplicates\":{},\"delays\":{},\"crashes\":{}}},",
            r.injected.drops,
            r.injected.corruptions,
            r.injected.duplicates,
            r.injected.delays,
            r.injected.crashes
        ));
        s.push_str(&format!("\"total_bits\":{},", r.stats.total_bits));
        s.push_str(&format!("\"retransmit_bits\":{}", r.retransmit_bits()));
        s.push('}');
        s
    }
}

/// Runs one chaos cell: `protocol` amplified `repetitions` times on
/// `input` under a [`FaultRates::mixed`] plan at `rate` (rate 0 uses
/// [`FaultRates::none`] and is labelled `none`).
pub fn chaos_cell<T: Repeatable + Sync>(
    pool: &Pool,
    protocol: &str,
    tester: &T,
    input: &PreparedInput<'_>,
    repetitions: u32,
    rate: f64,
    plan_seed: u64,
) -> ChaosCell {
    let (faults, rates) = if rate == 0.0 {
        ("none", FaultRates::none())
    } else {
        ("mixed", FaultRates::mixed(rate))
    };
    let run = run_chaos_amplified(
        pool,
        tester,
        input,
        repetitions,
        11,
        &FaultPlan::new(plan_seed, rates),
        DEFAULT_QUORUM,
    );
    ChaosCell {
        protocol: protocol.to_string(),
        faults: faults.to_string(),
        rate,
        vertices: input.n(),
        edges: input
            .graph()
            .expect("chaos suite prepares its inputs with a graph")
            .edge_count(),
        players: input.k(),
        repetitions,
        seed: plan_seed,
        quorum: DEFAULT_QUORUM,
        run,
    }
}

/// The standard chaos matrix: fault rates × protocols × player counts
/// on triangle-free bipartite workloads, all at the default (unanimous)
/// quorum. Repetitions run on the current worker pool; the numbers are
/// thread-count-invariant.
pub fn chaos_suite(scale: Scale) -> Vec<ChaosCell> {
    let (n, d) = scale.pick((400, 6.0), (2000, 8.0));
    let reps = scale.pick(6, 16);
    let rates: &[f64] = scale.pick(&[0.0, 0.05, 0.2][..], &[0.0, 0.02, 0.05, 0.1, 0.2][..]);
    let ks: &[usize] = scale.pick(&[4][..], &[4, 8][..]);
    let tuning = Tuning::practical(0.2);
    let pool = Pool::current();
    let mut cells = Vec::new();
    for &k in ks {
        let (g, parts) = bipartite_workload(n, d, k, 7);
        let input = PreparedInput::new(&g, &parts).expect("valid workload");
        let unrestricted = UnrestrictedTester::new(tuning);
        let sim_low = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d });
        let testers: [(&str, &(dyn Repeatable + Sync)); 3] = [
            ("unrestricted", &unrestricted),
            ("sim-low", &sim_low),
            ("send-everything", &SendEverything::default()),
        ];
        for (pi, (name, tester)) in testers.into_iter().enumerate() {
            for (ri, &rate) in rates.iter().enumerate() {
                // A distinct plan seed per cell so cells don't share
                // fault streams; the derivation is fixed, so the matrix
                // is reproducible end to end.
                let plan_seed = 0xC4A0_5EED ^ ((k as u64) << 16) ^ ((pi as u64) << 8) ^ ri as u64;
                cells.push(chaos_cell(
                    &pool, name, &tester, &input, reps, rate, plan_seed,
                ));
            }
        }
    }
    cells
}

/// Writes cells to `<dir>/BENCH_chaos.json` (creating `dir` if needed)
/// and returns the path.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_chaos_json(
    dir: &std::path::Path,
    cells: &[ChaosCell],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_chaos.json");
    let body: Vec<String> = cells.iter().map(|c| format!("  {}", c.to_json())).collect();
    std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cells() -> Vec<ChaosCell> {
        let (g, parts) = bipartite_workload(200, 4.0, 3, 5);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let pool = Pool::serial();
        vec![
            chaos_cell(
                &pool,
                "send-everything",
                &SendEverything::default(),
                &input,
                4,
                0.0,
                9,
            ),
            chaos_cell(
                &pool,
                "send-everything",
                &SendEverything::default(),
                &input,
                4,
                0.3,
                9,
            ),
        ]
    }

    #[test]
    fn rate_zero_cell_is_a_clean_control() {
        let cells = mini_cells();
        let control = &cells[0];
        assert_eq!(control.faults, "none");
        assert_eq!(control.run.failures.total(), 0);
        assert_eq!(control.run.injected.total(), 0);
        assert_eq!(control.run.retransmit_bits(), 0);
        assert_eq!(control.run.survived, control.run.attempted);
        assert_eq!(control.run.outcome.as_str(), "accepted");
    }

    #[test]
    fn faulted_cell_injects_and_never_flips_the_verdict() {
        let cells = mini_cells();
        let faulted = &cells[1];
        assert_eq!(faulted.faults, "mixed");
        assert!(
            faulted.run.injected.total() > 0,
            "{:?}",
            faulted.run.injected
        );
        // A one-sided tester on a triangle-free input can only accept or
        // refuse — a chaos cell must never invent a witness.
        assert!(matches!(
            faulted.run.outcome.as_str(),
            "accepted" | "inconclusive"
        ));
    }

    #[test]
    fn cells_are_deterministic_across_thread_counts() {
        let (g, parts) = bipartite_workload(200, 4.0, 3, 5);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let serial = chaos_cell(
            &Pool::serial(),
            "send-everything",
            &SendEverything::default(),
            &input,
            5,
            0.25,
            13,
        );
        for threads in [2, 8] {
            let par = chaos_cell(
                &Pool::new(threads),
                "send-everything",
                &SendEverything::default(),
                &input,
                5,
                0.25,
                13,
            );
            assert_eq!(par.to_json(), serial.to_json(), "threads = {threads}");
        }
    }

    #[test]
    fn chaos_json_is_well_formed() {
        let cells = mini_cells();
        let dir = std::env::temp_dir().join(format!("triad-chaos-json-{}", std::process::id()));
        let path = write_chaos_json(&dir, &cells).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_chaos.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert!(text.contains("\"outcome\""));
        assert!(text.contains("\"failures\":{\"transport\":"));
        assert!(text.contains("\"injected\":{\"drops\":"));
        assert!(text.contains("\"retransmit_bits\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
