//! Chaos-matrix benchmark — the `BENCH_chaos.json` export.
//!
//! Sweeps fault rate × protocol × player count over a deterministic
//! triangle-free workload and records, per cell, the quorum-gated
//! verdict, per-error-kind failure counts, the faults actually injected,
//! and the recovery traffic charged under
//! [`triad_comm::RETRANSMIT_LABEL`]. Unlike the timing benches
//! (`BENCH_runtime.json`, `BENCH_kernels.json`) every number here is
//! deterministic — same seeds, same plan, same verdict at any thread
//! count — so `BENCH_chaos.json` is byte-diffable across machines.
//!
//! The rate-0 rows are the control group: the fault-free chaos path is
//! byte-identical to the plain amplified path (pinned by
//! `tests/chaos_differential.rs`), so those rows must show zero
//! failures, zero injections and zero retransmitted bits.

use std::sync::Arc;
use std::time::Duration;

use crate::experiments::Scale;
use crate::runtime::bipartite_workload;
use triad_comm::pool::Pool;
use triad_comm::{
    ConnectOptions, CostModel, FaultPlan, FaultRates, PlayerSession, PlayerState, Recorder,
    ResumeClaim, RunError, RunErrorKind, Runtime, ServeConfig, SessionOptions, SharedRandomness,
    SimMessage, Tally, TcpCoordinator,
};
use triad_protocols::amplify::PreparedInput;
use triad_protocols::baseline::SendEverything;
use triad_protocols::{
    run_chaos_amplified, single_run_verdict, ChaosRun, Repeatable, SimProtocolKind,
    SimultaneousTester, Tuning, UnrestrictedTester, DEFAULT_QUORUM,
};

/// One cell of the chaos matrix: one protocol amplified under one fault
/// plan on one workload.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Protocol under amplification.
    pub protocol: String,
    /// Fault mix of the plan (`none` or `mixed`).
    pub faults: String,
    /// Aggregate per-delivery fault rate of the plan.
    pub rate: f64,
    /// Vertex count of the (triangle-free) input.
    pub vertices: usize,
    /// Edge count of the input.
    pub edges: usize,
    /// Number of players.
    pub players: usize,
    /// Scheduled repetitions (all attempted: the input is triangle-free,
    /// so no witness short-circuits the sweep).
    pub repetitions: u32,
    /// The fault plan's seed.
    pub seed: u64,
    /// The survivor quorum applied.
    pub quorum: f64,
    /// The completed chaos run behind the cell.
    pub run: ChaosRun,
}

impl ChaosCell {
    fn to_json(&self) -> String {
        let r = &self.run;
        let mut s = String::from("{");
        s.push_str(&format!("\"protocol\":\"{}\",", self.protocol));
        s.push_str(&format!("\"faults\":\"{}\",", self.faults));
        s.push_str(&format!("\"rate\":{:.3},", self.rate));
        s.push_str(&format!("\"vertices\":{},", self.vertices));
        s.push_str(&format!("\"edges\":{},", self.edges));
        s.push_str(&format!("\"players\":{},", self.players));
        s.push_str(&format!("\"repetitions\":{},", self.repetitions));
        s.push_str(&format!("\"seed\":{},", self.seed));
        s.push_str(&format!("\"quorum\":{:.3},", self.quorum));
        s.push_str(&format!("\"outcome\":\"{}\",", r.outcome.as_str()));
        s.push_str(&format!("\"survived\":{},", r.survived));
        s.push_str(&format!("\"attempted\":{},", r.attempted));
        s.push_str(&format!("\"needed\":{},", r.needed));
        s.push_str(&format!(
            "\"failures\":{{\"transport\":{},\"timeout\":{},\"corrupt\":{},\"aborted\":{}}},",
            r.failures.transport, r.failures.timeout, r.failures.corrupt, r.failures.aborted
        ));
        s.push_str(&format!(
            "\"injected\":{{\"drops\":{},\"corruptions\":{},\"duplicates\":{},\"delays\":{},\"crashes\":{}}},",
            r.injected.drops,
            r.injected.corruptions,
            r.injected.duplicates,
            r.injected.delays,
            r.injected.crashes
        ));
        s.push_str(&format!("\"total_bits\":{},", r.stats.total_bits));
        s.push_str(&format!("\"retransmit_bits\":{}", r.retransmit_bits()));
        s.push('}');
        s
    }
}

/// Runs one chaos cell: `protocol` amplified `repetitions` times on
/// `input` under a [`FaultRates::mixed`] plan at `rate` (rate 0 uses
/// [`FaultRates::none`] and is labelled `none`).
pub fn chaos_cell<T: Repeatable + Sync>(
    pool: &Pool,
    protocol: &str,
    tester: &T,
    input: &PreparedInput<'_>,
    repetitions: u32,
    rate: f64,
    plan_seed: u64,
) -> ChaosCell {
    let (faults, rates) = if rate == 0.0 {
        ("none", FaultRates::none())
    } else {
        ("mixed", FaultRates::mixed(rate))
    };
    let run = run_chaos_amplified(
        pool,
        tester,
        input,
        repetitions,
        11,
        &FaultPlan::new(plan_seed, rates),
        DEFAULT_QUORUM,
    );
    ChaosCell {
        protocol: protocol.to_string(),
        faults: faults.to_string(),
        rate,
        vertices: input.n(),
        edges: input
            .graph()
            .expect("chaos suite prepares its inputs with a graph")
            .edge_count(),
        players: input.k(),
        repetitions,
        seed: plan_seed,
        quorum: DEFAULT_QUORUM,
        run,
    }
}

/// One row of the reconnect matrix: a live loopback daemon run with a
/// scripted mid-run disconnect (`docs/NETWORKING.md`, *Sessions*). The
/// `rejoin` scenario drops player 0 after two answered requests and
/// rejoins it inside a generous window: the interrupted delivery
/// replays below the charging layer, so the verdict, [`CommStats`] and
/// the full tally must match the uninterrupted in-process reference
/// bit for bit (`matches_uninterrupted`). The `expire` scenario lets
/// the window lapse instead: the run records a typed abort and the
/// verdict degrades to `inconclusive` — it never flips to an accept.
///
/// [`CommStats`]: triad_comm::CommStats
#[derive(Debug, Clone)]
pub struct ReconnectCell {
    /// `rejoin` (reconnect inside the window) or `expire` (window
    /// lapses with the slot detached).
    pub scenario: String,
    /// Protocol under test. Requests are answered statelessly from the
    /// seed in force, so any multi-round protocol exercises the replay
    /// path; the matrix uses `unrestricted`.
    pub protocol: String,
    /// Vertex count of the (triangle-free) input.
    pub vertices: usize,
    /// Edge count of the input.
    pub edges: usize,
    /// Number of players.
    pub players: usize,
    /// Reconnect window the daemon served with, in milliseconds.
    pub window_ms: u64,
    /// Shared-randomness seed of the run.
    pub seed: u64,
    /// Single-run quorum verdict (`accepted`, `inconclusive`, or
    /// `triangle-found`) per [`single_run_verdict`].
    pub verdict: String,
    /// Coarse kind of the recorded fault (`none` on a clean run,
    /// `aborted` on window expiry).
    pub fault: String,
    /// Whether verdict, stats, and every tally rollup matched the
    /// uninterrupted in-process reference exactly.
    pub matches_uninterrupted: bool,
    /// Logical payload bits charged before the run ended.
    pub total_bits: u64,
}

impl ReconnectCell {
    fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"scenario\":\"{}\",", self.scenario));
        s.push_str(&format!("\"protocol\":\"{}\",", self.protocol));
        s.push_str(&format!("\"vertices\":{},", self.vertices));
        s.push_str(&format!("\"edges\":{},", self.edges));
        s.push_str(&format!("\"players\":{},", self.players));
        s.push_str(&format!("\"window_ms\":{},", self.window_ms));
        s.push_str(&format!("\"seed\":{},", self.seed));
        s.push_str(&format!("\"verdict\":\"{}\",", self.verdict));
        s.push_str(&format!("\"fault\":\"{}\",", self.fault));
        s.push_str(&format!(
            "\"matches_uninterrupted\":{},",
            self.matches_uninterrupted
        ));
        s.push_str(&format!("\"total_bits\":{}", self.total_bits));
        s.push('}');
        s
    }
}

/// Runs one reconnect scenario over a real loopback daemon. Player 0
/// answers two requests and drops its connection; with `rejoin` it
/// presents its resume nonce and serves on, otherwise it stays away and
/// the slot's window expires. The cell records the verdict, the typed
/// fault (if any), and whether the run matched the uninterrupted
/// in-process reference bit for bit. Every number is deterministic: the
/// disconnect is scripted at a fixed request count, so the same seeds
/// produce the same row on any machine.
pub fn reconnect_cell(
    rejoin: bool,
    window: Duration,
    n: usize,
    d: f64,
    seed: u64,
) -> ReconnectCell {
    let k = 3usize;
    let (g, parts) = bipartite_workload(n, d, k, 7);
    let input = PreparedInput::new(&g, &parts).expect("valid workload");
    let tester = UnrestrictedTester::new(Tuning::practical(0.2));
    let reference = tester.run_prepared_tally(&input, seed);
    let shares = Arc::new(parts.shares().to_vec());
    let cfg = ServeConfig {
        k,
        n: g.vertex_count(),
        seed,
        cost_model: CostModel::Coordinator,
        protocol: "unrestricted".to_string(),
        params: format!("eps=0.2 d={d}"),
    };
    let coordinator = TcpCoordinator::bind("127.0.0.1:0").expect("bind loopback");
    let addr = coordinator.local_addr().expect("local addr");
    let handles: Vec<_> = (0..k as u32)
        .map(|j| {
            let shares = Arc::clone(&shares);
            std::thread::spawn(move || {
                let opts = ConnectOptions {
                    slot: Some(j),
                    retries: 40,
                    backoff: Duration::from_millis(10),
                    ..ConnectOptions::default()
                };
                let Ok(session) = PlayerSession::connect_with(addr, &opts) else {
                    return;
                };
                let w = session.welcome().clone();
                let state =
                    PlayerState::new(w.player as usize, w.n as usize, &shares[w.player as usize]);
                let sim = |_: &PlayerState, _: &SharedRandomness| SimMessage::empty();
                if j == 0 {
                    // The scripted casualty: answer two requests, then
                    // drop the connection mid-round…
                    let _ = session.serve_until(&state, sim, Some(2));
                    if rejoin {
                        // …and come straight back with the resume nonce.
                        if let Ok(back) = PlayerSession::rejoin_with(
                            addr,
                            &opts,
                            ResumeClaim {
                                slot: w.player,
                                nonce: w.resume_nonce,
                                last_acked: 2,
                            },
                        ) {
                            let _ = back.serve(&state, sim);
                        }
                    }
                } else {
                    let _ = session.serve(&state, sim);
                }
            })
        })
        .collect();
    let options = SessionOptions {
        auth_token: None,
        reconnect_window: window,
    };
    let transport = coordinator
        .accept_players_with(&cfg, Duration::from_secs(20), &options)
        .expect("register all players");
    let mut rt: Runtime<Tally> = Runtime::new_with(
        Box::new(transport),
        g.vertex_count(),
        SharedRandomness::new(seed),
        CostModel::Coordinator,
    );
    let outcome = tester.run_on(&mut rt);
    let fault = rt.take_fault();
    let verdict = single_run_verdict(outcome, fault.as_ref());
    let stats = rt.stats();
    let tally = rt.into_recorder();
    let reference_tally = &reference.transcript;
    let matches = fault.is_none()
        && outcome.triangle() == reference.outcome.triangle()
        && stats == reference.stats
        && tally.total_bits() == reference_tally.total_bits()
        && tally.by_phase() == reference_tally.by_phase()
        && tally.by_player() == reference_tally.by_player()
        && tally.by_round() == reference_tally.by_round()
        && tally.by_direction() == reference_tally.by_direction();
    for h in handles {
        let _ = h.join();
    }
    ReconnectCell {
        scenario: if rejoin { "rejoin" } else { "expire" }.to_string(),
        protocol: cfg.protocol,
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        players: k,
        window_ms: window.as_millis() as u64,
        seed,
        verdict: verdict.as_str().to_string(),
        fault: match fault.as_ref().map(RunError::kind) {
            None => "none",
            Some(RunErrorKind::Transport) => "transport",
            Some(RunErrorKind::Timeout) => "timeout",
            Some(RunErrorKind::Corrupt) => "corrupt",
            Some(RunErrorKind::Aborted) => "aborted",
        }
        .to_string(),
        matches_uninterrupted: matches,
        total_bits: tally.total_bits().get(),
    }
}

/// The reconnect matrix appended to `BENCH_chaos.json`: both
/// session-layer scenarios over a live loopback daemon. The `rejoin`
/// row must report `matches_uninterrupted = true` with no fault; the
/// `expire` row must report a typed `aborted` fault and an
/// `inconclusive` verdict. Anything else is a session-layer regression.
pub fn reconnect_suite(scale: Scale) -> Vec<ReconnectCell> {
    let (n, d) = scale.pick((240, 4.0), (400, 6.0));
    let expire_window = Duration::from_millis(scale.pick(150, 300));
    vec![
        reconnect_cell(true, Duration::from_secs(20), n, d, 11),
        reconnect_cell(false, expire_window, n, d, 11),
    ]
}

/// The standard chaos matrix: fault rates × protocols × player counts
/// on triangle-free bipartite workloads, all at the default (unanimous)
/// quorum. Repetitions run on the current worker pool; the numbers are
/// thread-count-invariant.
pub fn chaos_suite(scale: Scale) -> Vec<ChaosCell> {
    let (n, d) = scale.pick((400, 6.0), (2000, 8.0));
    let reps = scale.pick(6, 16);
    let rates: &[f64] = scale.pick(&[0.0, 0.05, 0.2][..], &[0.0, 0.02, 0.05, 0.1, 0.2][..]);
    let ks: &[usize] = scale.pick(&[4][..], &[4, 8][..]);
    let tuning = Tuning::practical(0.2);
    let pool = Pool::current();
    let mut cells = Vec::new();
    for &k in ks {
        let (g, parts) = bipartite_workload(n, d, k, 7);
        let input = PreparedInput::new(&g, &parts).expect("valid workload");
        let unrestricted = UnrestrictedTester::new(tuning);
        let sim_low = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d });
        let testers: [(&str, &(dyn Repeatable + Sync)); 3] = [
            ("unrestricted", &unrestricted),
            ("sim-low", &sim_low),
            ("send-everything", &SendEverything::default()),
        ];
        for (pi, (name, tester)) in testers.into_iter().enumerate() {
            for (ri, &rate) in rates.iter().enumerate() {
                // A distinct plan seed per cell so cells don't share
                // fault streams; the derivation is fixed, so the matrix
                // is reproducible end to end.
                let plan_seed = 0xC4A0_5EED ^ ((k as u64) << 16) ^ ((pi as u64) << 8) ^ ri as u64;
                cells.push(chaos_cell(
                    &pool, name, &tester, &input, reps, rate, plan_seed,
                ));
            }
        }
    }
    cells
}

/// Writes the chaos cells followed by the reconnect rows to
/// `<dir>/BENCH_chaos.json` (creating `dir` if needed) and returns the
/// path. Reconnect rows carry a `scenario` key, so consumers of the
/// original schema can filter them out by its presence.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_chaos_json(
    dir: &std::path::Path,
    cells: &[ChaosCell],
    reconnect: &[ReconnectCell],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_chaos.json");
    let body: Vec<String> = cells
        .iter()
        .map(|c| format!("  {}", c.to_json()))
        .chain(reconnect.iter().map(|c| format!("  {}", c.to_json())))
        .collect();
    std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_cells() -> Vec<ChaosCell> {
        let (g, parts) = bipartite_workload(200, 4.0, 3, 5);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let pool = Pool::serial();
        vec![
            chaos_cell(
                &pool,
                "send-everything",
                &SendEverything::default(),
                &input,
                4,
                0.0,
                9,
            ),
            chaos_cell(
                &pool,
                "send-everything",
                &SendEverything::default(),
                &input,
                4,
                0.3,
                9,
            ),
        ]
    }

    #[test]
    fn rate_zero_cell_is_a_clean_control() {
        let cells = mini_cells();
        let control = &cells[0];
        assert_eq!(control.faults, "none");
        assert_eq!(control.run.failures.total(), 0);
        assert_eq!(control.run.injected.total(), 0);
        assert_eq!(control.run.retransmit_bits(), 0);
        assert_eq!(control.run.survived, control.run.attempted);
        assert_eq!(control.run.outcome.as_str(), "accepted");
    }

    #[test]
    fn faulted_cell_injects_and_never_flips_the_verdict() {
        let cells = mini_cells();
        let faulted = &cells[1];
        assert_eq!(faulted.faults, "mixed");
        assert!(
            faulted.run.injected.total() > 0,
            "{:?}",
            faulted.run.injected
        );
        // A one-sided tester on a triangle-free input can only accept or
        // refuse — a chaos cell must never invent a witness.
        assert!(matches!(
            faulted.run.outcome.as_str(),
            "accepted" | "inconclusive"
        ));
    }

    #[test]
    fn cells_are_deterministic_across_thread_counts() {
        let (g, parts) = bipartite_workload(200, 4.0, 3, 5);
        let input = PreparedInput::new(&g, &parts).unwrap();
        let serial = chaos_cell(
            &Pool::serial(),
            "send-everything",
            &SendEverything::default(),
            &input,
            5,
            0.25,
            13,
        );
        for threads in [2, 8] {
            let par = chaos_cell(
                &Pool::new(threads),
                "send-everything",
                &SendEverything::default(),
                &input,
                5,
                0.25,
                13,
            );
            assert_eq!(par.to_json(), serial.to_json(), "threads = {threads}");
        }
    }

    #[test]
    fn chaos_json_is_well_formed() {
        let cells = mini_cells();
        let reconnect = vec![reconnect_cell(true, Duration::from_secs(20), 120, 4.0, 3)];
        let dir = std::env::temp_dir().join(format!("triad-chaos-json-{}", std::process::id()));
        let path = write_chaos_json(&dir, &cells, &reconnect).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_chaos.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert!(text.contains("\"outcome\""));
        assert!(text.contains("\"failures\":{\"transport\":"));
        assert!(text.contains("\"injected\":{\"drops\":"));
        assert!(text.contains("\"retransmit_bits\""));
        assert!(text.contains("\"scenario\":\"rejoin\""));
        assert!(text.contains("\"matches_uninterrupted\":true"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejoin_row_matches_the_uninterrupted_reference() {
        // The reconnect matrix's headline number: a mid-run disconnect
        // healed inside the window leaves no trace in the accounting.
        let cell = reconnect_cell(true, Duration::from_secs(20), 120, 4.0, 5);
        assert_eq!(cell.scenario, "rejoin");
        assert_eq!(cell.fault, "none");
        assert_eq!(cell.verdict, "accepted");
        assert!(cell.matches_uninterrupted, "{cell:?}");
        assert!(cell.total_bits > 0);
    }

    #[test]
    fn expire_row_degrades_typed_and_never_flips() {
        let cell = reconnect_cell(false, Duration::from_millis(100), 120, 4.0, 5);
        assert_eq!(cell.scenario, "expire");
        assert_eq!(cell.fault, "aborted");
        // A lost player past the window can only refuse to answer —
        // the verdict must degrade to inconclusive, never accept.
        assert_eq!(cell.verdict, "inconclusive");
        assert!(!cell.matches_uninterrupted);
    }
}
