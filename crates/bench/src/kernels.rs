//! Naive-vs-kernel wall-clock timings — the `BENCH_kernels.json` export.
//!
//! Times the pre-kernel reference implementations
//! (`triad_graph::kernels::naive`) against the degree-ordered forward
//! kernel, the pool-parallel kernel, and the
//! [`triad_graph::kernels::DeletionView`]-based greedy hitting loop, on
//! the standard workload families. Counts and
//! removal sequences are asserted equal while timing, so a speedup can
//! never be reported for a kernel that silently changed the answer.
//!
//! [`time_store_workload`] adds the out-of-core tier: the same forward
//! and pool-parallel kernels over an mmap-backed
//! [`triad_graph::CsrStore`]'s borrowed slices (no owned edge list, no
//! `Graph`), with peak-RSS and owned-allocation evidence recorded next
//! to the timings, plus one prepared protocol run whose shares are
//! partitioned straight off the mapping. Naive, bitset, and greedy
//! columns are `null` for store rows: the naive references are
//! deliberately untimed at out-of-core sizes (hours, not milliseconds)
//! and the `n × n` bitset does not exist at n = 10⁶.
//!
//! Timings are wall-clock and therefore machine-dependent: unlike
//! `BENCH_costs.json`, this file is *not* byte-diffable across runs. The
//! reference numbers live in `EXPERIMENTS.md`.

use crate::experiments::Scale;
use crate::workloads::{clique_plus_path, dense_core_workload, planted_far};
use std::time::Instant;
use triad_comm::pool::Pool;
use triad_graph::kernels::{self, naive, BitsetAdjacency, Forward};
use triad_graph::{distance, CsrStore, Graph};

/// One workload's measured kernel-vs-naive timings (milliseconds).
///
/// In-memory rows fill the naive/bitset/greedy columns; store rows
/// (out-of-core CSR) leave them `None` and fill the evidence columns
/// (`peak_rss_mb`, `store_owned_bytes`, `file_bytes`, `mapped`,
/// `sim_test_ms`) instead.
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Workload name.
    pub workload: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Triangle count (agreed on by every implementation timed here).
    pub triangles: u64,
    /// Naive per-edge full-merge count, milliseconds (`None` for store
    /// rows — untimed at out-of-core sizes).
    pub naive_count_ms: Option<f64>,
    /// Forward-kernel count, milliseconds.
    pub kernel_count_ms: f64,
    /// Pool-parallel forward-kernel count, milliseconds.
    pub par_count_ms: f64,
    /// Word-parallel AND-popcount bitset count (build + sweep),
    /// milliseconds — the dense referee path behind
    /// [`triad_graph::kernels::dense_kernel_wins`] (`None` for store
    /// rows: the `n × n` bitmap does not exist at out-of-core scale).
    pub bitset_count_ms: Option<f64>,
    /// Threads used for the parallel measurement.
    pub par_threads: usize,
    /// Rebuild-per-removal greedy hitting loop, milliseconds (`None`
    /// when the workload is too large to time the naive loop).
    pub naive_greedy_ms: Option<f64>,
    /// DeletionView greedy hitting loop, milliseconds.
    pub view_greedy_ms: Option<f64>,
    /// Edges removed by the greedy loop (both variants, verified equal).
    pub greedy_removed: Option<usize>,
    /// Peak resident set size of the process (`VmHWM`), in MiB, read
    /// after the kernels ran — the "no materialized edge list" evidence
    /// for store rows.
    pub peak_rss_mb: Option<f64>,
    /// Bytes of owned memory held by the store backing (0 when mapped).
    pub store_owned_bytes: Option<usize>,
    /// On-disk CSR file size in bytes.
    pub file_bytes: Option<u64>,
    /// Whether the store row ran over an `mmap` backing (`false` =
    /// buffered read-into-`Vec` fallback).
    pub mapped: Option<bool>,
    /// One prepared simultaneous-protocol run whose shares were
    /// partitioned straight off the store's borrowed slices,
    /// milliseconds.
    pub sim_test_ms: Option<f64>,
}

impl KernelTiming {
    /// Naive count time divided by kernel count time (`None` when the
    /// naive reference was not timed).
    pub fn count_speedup(&self) -> Option<f64> {
        self.naive_count_ms
            .map(|n| n / self.kernel_count_ms.max(1e-9))
    }

    /// Forward-kernel time divided by bitset-kernel time: > 1 means
    /// the word-parallel intersection beats the edge-list referee path
    /// on this workload (`None` when the bitset was not timed).
    pub fn bitset_speedup(&self) -> Option<f64> {
        self.bitset_count_ms
            .map(|b| self.kernel_count_ms / b.max(1e-9))
    }

    /// Rebuild-loop time divided by view-loop time, when both ran.
    pub fn greedy_speedup(&self) -> Option<f64> {
        match (self.naive_greedy_ms, self.view_greedy_ms) {
            (Some(n), Some(v)) => Some(n / v.max(1e-9)),
            _ => None,
        }
    }

    fn to_json(&self) -> String {
        fn opt_ms(v: Option<f64>) -> String {
            v.map_or_else(|| "null".into(), |v| format!("{v:.3}"))
        }
        let mut s = String::from("{");
        s.push_str(&format!("\"workload\":\"{}\",", self.workload));
        s.push_str(&format!("\"vertices\":{},", self.vertices));
        s.push_str(&format!("\"edges\":{},", self.edges));
        s.push_str(&format!("\"triangles\":{},", self.triangles));
        s.push_str(&format!(
            "\"naive_count_ms\":{},",
            opt_ms(self.naive_count_ms)
        ));
        s.push_str(&format!("\"kernel_count_ms\":{:.3},", self.kernel_count_ms));
        s.push_str(&format!("\"par_count_ms\":{:.3},", self.par_count_ms));
        s.push_str(&format!("\"par_threads\":{},", self.par_threads));
        s.push_str(&format!(
            "\"bitset_count_ms\":{},",
            opt_ms(self.bitset_count_ms)
        ));
        s.push_str(&format!(
            "\"bitset_speedup\":{},",
            opt_ms(self.bitset_speedup())
        ));
        s.push_str(&format!(
            "\"count_speedup\":{},",
            opt_ms(self.count_speedup())
        ));
        s.push_str(&format!(
            "\"naive_greedy_ms\":{},",
            opt_ms(self.naive_greedy_ms)
        ));
        s.push_str(&format!(
            "\"view_greedy_ms\":{},",
            opt_ms(self.view_greedy_ms)
        ));
        s.push_str(&format!(
            "\"greedy_removed\":{},",
            self.greedy_removed
                .map_or_else(|| "null".into(), |r| r.to_string())
        ));
        s.push_str(&format!(
            "\"greedy_speedup\":{},",
            opt_ms(self.greedy_speedup())
        ));
        s.push_str(&format!("\"peak_rss_mb\":{},", opt_ms(self.peak_rss_mb)));
        s.push_str(&format!(
            "\"store_owned_bytes\":{},",
            self.store_owned_bytes
                .map_or_else(|| "null".into(), |b| b.to_string())
        ));
        s.push_str(&format!(
            "\"file_bytes\":{},",
            self.file_bytes
                .map_or_else(|| "null".into(), |b| b.to_string())
        ));
        s.push_str(&format!(
            "\"mapped\":{},",
            self.mapped.map_or_else(|| "null".into(), |m| m.to_string())
        ));
        s.push_str(&format!("\"sim_test_ms\":{}", opt_ms(self.sim_test_ms)));
        s.push('}');
        s
    }
}

/// Peak resident set size of this process (`VmHWM` from
/// `/proc/self/status`) in MiB, when the platform exposes it.
pub fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Best-of-`reps` wall-clock time of `f`, in milliseconds, together with
/// the (identical across reps) result of the final run.
fn time_best<T: PartialEq + std::fmt::Debug, F: FnMut() -> T>(reps: usize, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &result {
            assert!(prev == &r, "timed function is not deterministic");
        }
        result = Some(r);
    }
    (best, result.expect("at least one rep ran"))
}

/// Times all counting kernels (and, when `with_greedy`, both greedy
/// hitting loops) on one workload, asserting the implementations agree.
/// The parallel column runs on the caller's `pool` — [`kernel_suite`]
/// passes the pool sized from the global `--threads` / `TRIAD_THREADS`
/// setting, so the recorded `par_threads` reflects the configured
/// fan-out instead of whatever the harness happened to default to.
///
/// # Panics
///
/// Panics if any kernel disagrees with its naive reference — a
/// correctness bug, not a measurement problem.
pub fn time_workload(
    name: &str,
    g: &Graph,
    with_greedy: bool,
    reps: usize,
    pool: &Pool,
) -> KernelTiming {
    let (naive_count_ms, naive_count) = time_best(reps, || naive::count_triangles(g));
    let (kernel_count_ms, kernel_count) = time_best(reps, || kernels::count_triangles(g));
    let (par_count_ms, par_count) = time_best(reps, || kernels::count_triangles_par(g, pool));
    let (bitset_count_ms, bitset_count) =
        time_best(reps, || BitsetAdjacency::build(g).count_all(g));
    assert_eq!(kernel_count, naive_count, "{name}: kernel count diverged");
    assert_eq!(par_count, naive_count, "{name}: parallel count diverged");
    assert_eq!(bitset_count, naive_count, "{name}: bitset count diverged");
    let (naive_greedy_ms, view_greedy_ms, greedy_removed) = if with_greedy {
        let (nms, nseq) = time_best(reps, || naive::greedy_hitting_removal(g));
        let (vms, vseq) = time_best(reps, || distance::greedy_hitting_removal(g));
        assert_eq!(vseq, nseq, "{name}: greedy removal sequence diverged");
        (Some(nms), Some(vms), Some(vseq.len()))
    } else {
        (None, None, None)
    };
    KernelTiming {
        workload: name.to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        triangles: naive_count,
        naive_count_ms: Some(naive_count_ms),
        kernel_count_ms,
        par_count_ms,
        bitset_count_ms: Some(bitset_count_ms),
        par_threads: pool.threads(),
        naive_greedy_ms,
        view_greedy_ms,
        greedy_removed,
        peak_rss_mb: None,
        store_owned_bytes: None,
        file_bytes: None,
        mapped: None,
        sim_test_ms: None,
    }
}

/// Times the forward and pool-parallel kernels over an out-of-core
/// [`CsrStore`] — every neighbor access goes through the store's
/// borrowed slices (the mapping, or the owned fallback), never an
/// in-memory [`Graph`]. Also runs one prepared simultaneous-protocol
/// test whose shares are partitioned straight off the store, and
/// records the allocation evidence: peak RSS, the store's owned bytes,
/// the file size, and whether the backing is mapped.
///
/// # Panics
///
/// Panics if the serial and parallel counts disagree.
pub fn time_store_workload(name: &str, store: &CsrStore, reps: usize, pool: &Pool) -> KernelTiming {
    let (kernel_count_ms, kernel_count) = time_best(reps, || {
        let fwd = Forward::build(store);
        fwd.count_range(store, 0..store.edge_count())
    });
    let (par_count_ms, par_count) = time_best(reps, || kernels::count_triangles_par(store, pool));
    assert_eq!(par_count, kernel_count, "{name}: parallel count diverged");
    // One graph-free protocol run: shares partitioned off the store's
    // slices, prepared without ever materializing a Graph.
    let d = store.average_degree();
    let (sim_test_ms, _) = time_best(reps, || {
        let parts = triad_graph::partition::by_vertex(store, 4);
        let input =
            triad_protocols::amplify::PreparedInput::from_partition(store.vertex_count(), &parts)
                .expect("by_vertex shares are in range");
        let tester = triad_protocols::SimultaneousTester::new(
            triad_protocols::Tuning::practical(0.2),
            triad_protocols::SimProtocolKind::Low { avg_degree: d },
        );
        triad_protocols::amplify::Repeatable::run_prepared(&tester, &input, 7)
            .expect("prepared store run")
            .outcome
            .found_triangle()
    });
    KernelTiming {
        workload: name.to_string(),
        vertices: store.vertex_count(),
        edges: store.edge_count(),
        triangles: kernel_count,
        naive_count_ms: None,
        kernel_count_ms,
        par_count_ms,
        bitset_count_ms: None,
        par_threads: pool.threads(),
        naive_greedy_ms: None,
        view_greedy_ms: None,
        greedy_removed: None,
        peak_rss_mb: peak_rss_mb(),
        store_owned_bytes: Some(store.owned_bytes()),
        file_bytes: Some(store.file_bytes()),
        mapped: Some(store.mapped()),
        sim_test_ms: Some(sim_test_ms),
    }
}

/// The standard kernel timing suite: planted ε-far, dense-core (the
/// skewed-degree adversary where the naive `Θ(m·Δ)` merges hurt most)
/// and clique-plus-path workloads, ordered smallest to largest so the
/// last entry is the headline number. All parallel columns run on the
/// pool sized by the global `--threads` / `TRIAD_THREADS` configuration.
pub fn kernel_suite(scale: Scale) -> Vec<KernelTiming> {
    let reps = scale.pick(2, 3);
    let pool = Pool::current();
    let mut out = Vec::new();

    // Greedy-loop comparison: sized so the rebuild-per-removal naive
    // loop stays tractable.
    let (gn, gd) = scale.pick((600, 6.0), (1600, 6.0));
    let w = planted_far(gn, gd, 0.2, 4, 7);
    out.push(time_workload(
        &format!("planted-far-greedy-n{gn}"),
        &w.graph,
        true,
        reps,
        &pool,
    ));

    // Counting: clique embedded in a path (all triangles in one dense
    // spot), then a dense-core skewed instance, then the large planted
    // ε-far instance.
    let (cn, cc) = scale.pick((1200, 40), (4000, 96));
    out.push(time_workload(
        &format!("clique-plus-path-n{cn}-c{cc}"),
        &clique_plus_path(cn, cc),
        false,
        reps,
        &pool,
    ));
    let (dn, hubs) = scale.pick((1500, 6), (6000, 12));
    let (_, w) = dense_core_workload(dn, hubs, 4, 7);
    out.push(time_workload(
        &format!("dense-core-n{dn}-h{hubs}"),
        &w.graph,
        false,
        reps,
        &pool,
    ));
    let (pn, pd) = scale.pick((2000, 6.0), (20000, 8.0));
    let w = planted_far(pn, pd, 0.2, 4, 7);
    out.push(time_workload(
        &format!("planted-far-n{pn}"),
        &w.graph,
        false,
        reps,
        &pool,
    ));
    out
}

/// Writes timings to `<dir>/BENCH_kernels.json` (creating `dir` if
/// needed) and returns the path. The JSON is a flat array of timing
/// objects, hand-rolled like every other exporter in this repository.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_kernels_json(
    dir: &std::path::Path,
    timings: &[KernelTiming],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_kernels.json");
    let body: Vec<String> = timings
        .iter()
        .map(|t| format!("  {}", t.to_json()))
        .collect();
    std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_a_workload_verifies_agreement() {
        let w = planted_far(300, 6.0, 0.2, 4, 3);
        let t = time_workload("test", &w.graph, true, 1, &Pool::new(2));
        assert_eq!(t.edges, w.graph.edge_count());
        assert_eq!(t.par_threads, 2, "pool sizing must be recorded");
        assert!(t.triangles > 0, "ε-far planted graphs have triangles");
        assert!(t.greedy_removed.unwrap() > 0);
        assert!(t.count_speedup().unwrap() > 0.0);
        assert!(t.bitset_speedup().unwrap() > 0.0);
        assert!(t.greedy_speedup().unwrap() > 0.0);
    }

    #[test]
    fn store_rows_time_kernels_over_the_mapping() {
        let w = planted_far(240, 6.0, 0.2, 4, 3);
        let dir = std::env::temp_dir().join(format!("triad-kernels-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.csr");
        triad_graph::store::write_csr(&path, &w.graph).unwrap();
        let store = CsrStore::open(&path).unwrap();
        let t = time_store_workload("store-test", &store, 1, &Pool::serial());
        assert_eq!(t.edges, w.graph.edge_count());
        assert_eq!(
            t.triangles,
            naive::count_triangles(&w.graph),
            "store kernels must count the same triangles"
        );
        assert!(t.naive_count_ms.is_none() && t.bitset_count_ms.is_none());
        assert_eq!(t.file_bytes, Some(store.file_bytes()));
        assert_eq!(t.mapped, Some(store.mapped()));
        assert!(t.sim_test_ms.is_some());
        let json = t.to_json();
        assert!(json.contains("\"naive_count_ms\":null"), "{json}");
        assert!(json.contains("\"file_bytes\":"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kernels_json_is_well_formed() {
        let w = planted_far(200, 6.0, 0.2, 4, 3);
        let pool = Pool::serial();
        let timings = vec![
            time_workload("with-greedy", &w.graph, true, 1, &pool),
            time_workload("without-greedy", &w.graph, false, 1, &pool),
        ];
        let dir = std::env::temp_dir().join(format!("triad-kernels-json-{}", std::process::id()));
        let path = write_kernels_json(&dir, &timings).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_kernels.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert_eq!(text.matches("\"workload\"").count(), 2);
        assert_eq!(text.matches("\"bitset_speedup\"").count(), 2);
        assert_eq!(text.matches("\"greedy_speedup\":null").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
