//! Naive-vs-kernel wall-clock timings — the `BENCH_kernels.json` export.
//!
//! Times the pre-kernel reference implementations
//! (`triad_graph::kernels::naive`) against the degree-ordered forward
//! kernel, the pool-parallel kernel, and the
//! [`triad_graph::kernels::DeletionView`]-based greedy hitting loop, on
//! the standard workload families. Counts and
//! removal sequences are asserted equal while timing, so a speedup can
//! never be reported for a kernel that silently changed the answer.
//!
//! Timings are wall-clock and therefore machine-dependent: unlike
//! `BENCH_costs.json`, this file is *not* byte-diffable across runs. The
//! reference numbers live in `EXPERIMENTS.md`.

use crate::experiments::Scale;
use crate::workloads::{clique_plus_path, dense_core_workload, planted_far};
use std::time::Instant;
use triad_comm::pool::Pool;
use triad_graph::kernels::{self, naive, BitsetAdjacency};
use triad_graph::{distance, Graph};

/// One workload's measured kernel-vs-naive timings (milliseconds).
#[derive(Debug, Clone)]
pub struct KernelTiming {
    /// Workload name.
    pub workload: String,
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Triangle count (agreed on by every implementation timed here).
    pub triangles: u64,
    /// Naive per-edge full-merge count, milliseconds.
    pub naive_count_ms: f64,
    /// Forward-kernel count, milliseconds.
    pub kernel_count_ms: f64,
    /// Pool-parallel forward-kernel count, milliseconds.
    pub par_count_ms: f64,
    /// Word-parallel AND-popcount bitset count (build + sweep),
    /// milliseconds — the dense referee path behind
    /// [`triad_graph::kernels::dense_kernel_wins`].
    pub bitset_count_ms: f64,
    /// Threads used for the parallel measurement.
    pub par_threads: usize,
    /// Rebuild-per-removal greedy hitting loop, milliseconds (`None`
    /// when the workload is too large to time the naive loop).
    pub naive_greedy_ms: Option<f64>,
    /// DeletionView greedy hitting loop, milliseconds.
    pub view_greedy_ms: Option<f64>,
    /// Edges removed by the greedy loop (both variants, verified equal).
    pub greedy_removed: Option<usize>,
}

impl KernelTiming {
    /// Naive count time divided by kernel count time.
    pub fn count_speedup(&self) -> f64 {
        self.naive_count_ms / self.kernel_count_ms.max(1e-9)
    }

    /// Forward-kernel time divided by bitset-kernel time: > 1 means
    /// the word-parallel intersection beats the edge-list referee path
    /// on this workload.
    pub fn bitset_speedup(&self) -> f64 {
        self.kernel_count_ms / self.bitset_count_ms.max(1e-9)
    }

    /// Rebuild-loop time divided by view-loop time, when both ran.
    pub fn greedy_speedup(&self) -> Option<f64> {
        match (self.naive_greedy_ms, self.view_greedy_ms) {
            (Some(n), Some(v)) => Some(n / v.max(1e-9)),
            _ => None,
        }
    }

    fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"workload\":\"{}\",", self.workload));
        s.push_str(&format!("\"vertices\":{},", self.vertices));
        s.push_str(&format!("\"edges\":{},", self.edges));
        s.push_str(&format!("\"triangles\":{},", self.triangles));
        s.push_str(&format!("\"naive_count_ms\":{:.3},", self.naive_count_ms));
        s.push_str(&format!("\"kernel_count_ms\":{:.3},", self.kernel_count_ms));
        s.push_str(&format!("\"par_count_ms\":{:.3},", self.par_count_ms));
        s.push_str(&format!("\"par_threads\":{},", self.par_threads));
        s.push_str(&format!("\"bitset_count_ms\":{:.3},", self.bitset_count_ms));
        s.push_str(&format!("\"bitset_speedup\":{:.3},", self.bitset_speedup()));
        s.push_str(&format!("\"count_speedup\":{:.3},", self.count_speedup()));
        match (
            self.naive_greedy_ms,
            self.view_greedy_ms,
            self.greedy_removed,
        ) {
            (Some(n), Some(v), Some(r)) => {
                s.push_str(&format!("\"naive_greedy_ms\":{n:.3},"));
                s.push_str(&format!("\"view_greedy_ms\":{v:.3},"));
                s.push_str(&format!("\"greedy_removed\":{r},"));
                s.push_str(&format!(
                    "\"greedy_speedup\":{:.3}",
                    self.greedy_speedup().expect("both greedy timings present")
                ));
            }
            _ => {
                s.push_str("\"naive_greedy_ms\":null,");
                s.push_str("\"view_greedy_ms\":null,");
                s.push_str("\"greedy_removed\":null,");
                s.push_str("\"greedy_speedup\":null");
            }
        }
        s.push('}');
        s
    }
}

/// Best-of-`reps` wall-clock time of `f`, in milliseconds, together with
/// the (identical across reps) result of the final run.
fn time_best<T: PartialEq + std::fmt::Debug, F: FnMut() -> T>(reps: usize, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &result {
            assert!(prev == &r, "timed function is not deterministic");
        }
        result = Some(r);
    }
    (best, result.expect("at least one rep ran"))
}

/// Times all counting kernels (and, when `with_greedy`, both greedy
/// hitting loops) on one workload, asserting the implementations agree.
///
/// # Panics
///
/// Panics if any kernel disagrees with its naive reference — a
/// correctness bug, not a measurement problem.
pub fn time_workload(name: &str, g: &Graph, with_greedy: bool, reps: usize) -> KernelTiming {
    let pool = Pool::current();
    let (naive_count_ms, naive_count) = time_best(reps, || naive::count_triangles(g));
    let (kernel_count_ms, kernel_count) = time_best(reps, || kernels::count_triangles(g));
    let (par_count_ms, par_count) = time_best(reps, || kernels::count_triangles_par(g, &pool));
    let (bitset_count_ms, bitset_count) =
        time_best(reps, || BitsetAdjacency::build(g).count_all(g));
    assert_eq!(kernel_count, naive_count, "{name}: kernel count diverged");
    assert_eq!(par_count, naive_count, "{name}: parallel count diverged");
    assert_eq!(bitset_count, naive_count, "{name}: bitset count diverged");
    let (naive_greedy_ms, view_greedy_ms, greedy_removed) = if with_greedy {
        let (nms, nseq) = time_best(reps, || naive::greedy_hitting_removal(g));
        let (vms, vseq) = time_best(reps, || distance::greedy_hitting_removal(g));
        assert_eq!(vseq, nseq, "{name}: greedy removal sequence diverged");
        (Some(nms), Some(vms), Some(vseq.len()))
    } else {
        (None, None, None)
    };
    KernelTiming {
        workload: name.to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        triangles: naive_count,
        naive_count_ms,
        kernel_count_ms,
        par_count_ms,
        bitset_count_ms,
        par_threads: pool.threads(),
        naive_greedy_ms,
        view_greedy_ms,
        greedy_removed,
    }
}

/// The standard kernel timing suite: planted ε-far, dense-core (the
/// skewed-degree adversary where the naive `Θ(m·Δ)` merges hurt most)
/// and clique-plus-path workloads, ordered smallest to largest so the
/// last entry is the headline number.
pub fn kernel_suite(scale: Scale) -> Vec<KernelTiming> {
    let reps = scale.pick(2, 3);
    let mut out = Vec::new();

    // Greedy-loop comparison: sized so the rebuild-per-removal naive
    // loop stays tractable.
    let (gn, gd) = scale.pick((600, 6.0), (1600, 6.0));
    let w = planted_far(gn, gd, 0.2, 4, 7);
    out.push(time_workload(
        &format!("planted-far-greedy-n{gn}"),
        &w.graph,
        true,
        reps,
    ));

    // Counting: clique embedded in a path (all triangles in one dense
    // spot), then a dense-core skewed instance, then the large planted
    // ε-far instance.
    let (cn, cc) = scale.pick((1200, 40), (4000, 96));
    out.push(time_workload(
        &format!("clique-plus-path-n{cn}-c{cc}"),
        &clique_plus_path(cn, cc),
        false,
        reps,
    ));
    let (dn, hubs) = scale.pick((1500, 6), (6000, 12));
    let (_, w) = dense_core_workload(dn, hubs, 4, 7);
    out.push(time_workload(
        &format!("dense-core-n{dn}-h{hubs}"),
        &w.graph,
        false,
        reps,
    ));
    let (pn, pd) = scale.pick((2000, 6.0), (20000, 8.0));
    let w = planted_far(pn, pd, 0.2, 4, 7);
    out.push(time_workload(
        &format!("planted-far-n{pn}"),
        &w.graph,
        false,
        reps,
    ));
    out
}

/// Writes timings to `<dir>/BENCH_kernels.json` (creating `dir` if
/// needed) and returns the path. The JSON is a flat array of timing
/// objects, hand-rolled like every other exporter in this repository.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_kernels_json(
    dir: &std::path::Path,
    timings: &[KernelTiming],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_kernels.json");
    let body: Vec<String> = timings
        .iter()
        .map(|t| format!("  {}", t.to_json()))
        .collect();
    std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_a_workload_verifies_agreement() {
        let w = planted_far(300, 6.0, 0.2, 4, 3);
        let t = time_workload("test", &w.graph, true, 1);
        assert_eq!(t.edges, w.graph.edge_count());
        assert!(t.triangles > 0, "ε-far planted graphs have triangles");
        assert!(t.greedy_removed.unwrap() > 0);
        assert!(t.count_speedup() > 0.0);
        assert!(t.bitset_speedup() > 0.0);
        assert!(t.greedy_speedup().unwrap() > 0.0);
    }

    #[test]
    fn kernels_json_is_well_formed() {
        let w = planted_far(200, 6.0, 0.2, 4, 3);
        let timings = vec![
            time_workload("with-greedy", &w.graph, true, 1),
            time_workload("without-greedy", &w.graph, false, 1),
        ];
        let dir = std::env::temp_dir().join(format!("triad-kernels-json-{}", std::process::id()));
        let path = write_kernels_json(&dir, &timings).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_kernels.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert_eq!(text.matches("\"workload\"").count(), 2);
        assert_eq!(text.matches("\"bitset_speedup\"").count(), 2);
        assert_eq!(text.matches("\"greedy_speedup\":null").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
