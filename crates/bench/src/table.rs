//! Plain-text and Markdown rendering of experiment reports.

/// A rendered experiment: a titled table plus prose notes.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id ("E1", ...).
    pub id: String,
    /// Human title.
    pub title: String,
    /// The asymptotic claim being reproduced, verbatim from the paper.
    pub paper_claim: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form conclusions (fit exponents, verdicts).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, paper_claim: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            paper_claim: paper_claim.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) -> &mut Self {
        self.notes.push(s.into());
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("paper: {}\n", self.paper_claim));
        let w = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = w[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  → {n}\n"));
        }
        out
    }

    /// Renders as a Markdown section.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {} — {}\n\n", self.id, self.title));
        out.push_str(&format!("**Paper claim:** {}\n\n", self.paper_claim));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out.push('\n');
        for n in &self.notes {
            out.push_str(&format!("- {n}\n"));
        }
        out.push('\n');
        out
    }
}

/// Formats a float to 3 significant-ish decimals for table cells.
pub fn f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_formats() {
        let mut r = Report::new("E0", "demo", "Õ(√n)", &["n", "bits"]);
        r.row(vec!["100".into(), "42".into()]);
        r.note("fit exponent 0.5");
        let text = r.to_text();
        assert!(text.contains("E0"));
        assert!(text.contains("42"));
        assert!(text.contains("fit exponent"));
        let md = r.to_markdown();
        assert!(md.contains("| n | bits |"));
        assert!(md.contains("| 100 | 42 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut r = Report::new("E0", "demo", "", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(12345.6), "12346");
        assert_eq!(f(42.25), "42.2");
        assert_eq!(f(0.333333), "0.333");
    }
}
