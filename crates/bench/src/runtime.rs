//! Amplified-sweep runtime microbench — the `BENCH_runtime.json` export.
//!
//! Times four implementations of the same amplified sweep (all
//! repetitions of a one-sided tester on a triangle-free input, so no
//! early exit shortens any path):
//!
//! * **naive** — the pre-recorder execution model, reconstructed
//!   faithfully: every repetition re-validates the shares, rebuilds the
//!   per-player states, detaches every message payload into an owned
//!   clone, and logs a full [`Transcript`] that is absorbed into the
//!   merged event log;
//! * **full** — the current full-transcript path over a
//!   [`PreparedInput`] (players built once, payloads borrowed);
//! * **tally** — the fast path: prepared input plus the zero-allocation
//!   [`Tally`] recorder;
//! * **pooled** — the tally fast path with the prepared players shared
//!   across the workers of a deterministic pool: repetitions are
//!   sharded, results merged in repetition order.
//!
//! Outcomes and total bit counts are asserted equal across all three
//! while timing, so a speedup can never be reported for a path that
//! silently changed the cost accounting. Like `BENCH_kernels.json` the
//! numbers are wall-clock and machine-dependent — not byte-diffable;
//! reference numbers live in EXPERIMENTS.md. See `docs/RUNTIME.md` for
//! the recorder and prepared-input design.

use crate::experiments::Scale;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use triad_comm::pool::Pool;
use triad_comm::{
    run_simultaneous_prepared, CommStats, PayloadRepr, PlayerState, Recorder, SharedRandomness,
    SimMessage, SimultaneousProtocol, Tally, Transcript,
};
use triad_graph::partition::{random_disjoint, Partition};
use triad_graph::{Graph, GraphBuilder, Triangle};
use triad_protocols::amplify::{
    rep_seed, run_amplified_prepared, run_amplified_with, PreparedInput,
};
use triad_protocols::baseline::SendEverything;
use triad_protocols::simultaneous::{AlgHigh, AlgLow};
use triad_protocols::{TestOutcome, Tuning, UnrestrictedTester};

/// Wraps a simultaneous protocol so every message payload is detached
/// into an owned clone — reconstructing the pre-`Cow` allocation
/// behavior for the naive reference path.
struct OwnedMessages<'p, P>(&'p P);

impl<P: SimultaneousProtocol> SimultaneousProtocol for OwnedMessages<'_, P> {
    type Output = P::Output;

    fn message<'a>(&self, player: &'a PlayerState, shared: &SharedRandomness) -> SimMessage<'a> {
        self.0.message(player, shared).into_owned()
    }

    fn referee(
        &self,
        n: usize,
        messages: &[SimMessage],
        shared: &SharedRandomness,
    ) -> Self::Output {
        self.0.referee(n, messages, shared)
    }
}

/// One protocol's measured sweep timings (milliseconds).
#[derive(Debug, Clone)]
pub struct RuntimeTiming {
    /// Protocol under amplification.
    pub protocol: String,
    /// Vertex count of the (triangle-free) input.
    pub vertices: usize,
    /// Edge count of the input.
    pub edges: usize,
    /// Number of players.
    pub players: usize,
    /// Amplification repetitions (all executed: the input is
    /// triangle-free, so the sweep never exits early).
    pub repetitions: u32,
    /// Pre-recorder execution model: per-rep validate + player rebuild +
    /// owned payload clones + full transcript, milliseconds.
    pub naive_ms: f64,
    /// Current full-transcript path over a prepared input, milliseconds.
    pub full_ms: f64,
    /// Prepared input + `Tally` fast path, milliseconds.
    pub tally_ms: f64,
    /// Tally fast path with the prepared players shared across a
    /// multi-worker pool, milliseconds. Verdict, stats and bits are
    /// asserted identical to the serial paths (docs/PARALLELISM.md).
    pub pooled_ms: f64,
    /// Worker count of the pooled run.
    pub pool_workers: usize,
    /// Total bits of the sweep (agreed on by every path timed here).
    pub total_bits: u64,
}

impl RuntimeTiming {
    /// Naive sweep time divided by tally fast-path time — the headline
    /// `≥5×` number of the amplified-sweep microbench.
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.tally_ms.max(1e-9)
    }

    /// Full-transcript-on-prepared-input time divided by tally time —
    /// what the recorder choice alone buys.
    pub fn recorder_speedup(&self) -> f64 {
        self.full_ms / self.tally_ms.max(1e-9)
    }

    /// Serial tally time divided by pooled tally time — what sharing the
    /// prepared players across pool workers buys on top of the fast
    /// path.
    pub fn parallel_speedup(&self) -> f64 {
        self.tally_ms / self.pooled_ms.max(1e-9)
    }

    fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!("\"protocol\":\"{}\",", self.protocol));
        s.push_str(&format!("\"vertices\":{},", self.vertices));
        s.push_str(&format!("\"edges\":{},", self.edges));
        s.push_str(&format!("\"players\":{},", self.players));
        s.push_str(&format!("\"repetitions\":{},", self.repetitions));
        s.push_str(&format!("\"naive_ms\":{:.3},", self.naive_ms));
        s.push_str(&format!("\"full_ms\":{:.3},", self.full_ms));
        s.push_str(&format!("\"tally_ms\":{:.3},", self.tally_ms));
        s.push_str(&format!("\"pooled_ms\":{:.3},", self.pooled_ms));
        s.push_str(&format!("\"pool_workers\":{},", self.pool_workers));
        s.push_str(&format!("\"total_bits\":{},", self.total_bits));
        s.push_str(&format!("\"speedup\":{:.3},", self.speedup()));
        s.push_str(&format!(
            "\"recorder_speedup\":{:.3},",
            self.recorder_speedup()
        ));
        s.push_str(&format!(
            "\"parallel_speedup\":{:.3}",
            self.parallel_speedup()
        ));
        s.push('}');
        s
    }
}

/// Best-of-`reps` wall-clock time of `f`, in milliseconds, with the
/// (identical across reps) result of the final run.
fn time_best<T: PartialEq + std::fmt::Debug, F: FnMut() -> T>(reps: usize, mut f: F) -> (f64, T) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        let r = f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &result {
            assert!(prev == &r, "timed sweep is not deterministic");
        }
        result = Some(r);
    }
    (best, result.expect("at least one rep ran"))
}

/// A deterministic triangle-free (bipartite) workload: `n/2 · d/2`
/// random cross edges, randomly partitioned across `k` players. Shared
/// with the chaos matrix ([`crate::chaos`]): a triangle-free input
/// guarantees no early exit, so every scheduled repetition runs.
pub fn bipartite_workload(n: usize, d: f64, k: usize, seed: u64) -> (Graph, Partition) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let half = (n / 2) as u32;
    let target = (n as f64 * d / 2.0) as usize;
    let mut b = GraphBuilder::new(n);
    for _ in 0..target {
        let u = rng.gen_range(0..half);
        let v = rng.gen_range(half..n as u32);
        b.add_edge(triad_graph::Edge::new(
            triad_graph::VertexId(u),
            triad_graph::VertexId(v),
        ));
    }
    let g = b.build();
    let partition = random_disjoint(&g, k, &mut rng);
    (g, partition)
}

/// The naive sweep: everything the pre-recorder path paid per
/// repetition, reconstructed with today's public APIs.
fn naive_sweep<P: SimultaneousProtocol<Output = Option<Triangle>>>(
    protocol: &P,
    g: &Graph,
    partition: &Partition,
    reps: u32,
    base_seed: u64,
) -> (Option<Triangle>, CommStats, u64) {
    let wrapped = OwnedMessages(protocol);
    let mut stats = CommStats::default();
    let mut transcript = Transcript::new(partition.players());
    for r in 0..reps {
        // Per-rep validation + player construction, as every per-run
        // entry point performed before PreparedInput existed.
        let input = PreparedInput::new(g, partition).expect("valid workload");
        let run = run_simultaneous_prepared::<_, Transcript>(
            &wrapped,
            input.n(),
            input.players(),
            SharedRandomness::new(rep_seed(base_seed, r)),
        );
        stats = stats.merged(run.stats);
        transcript.absorb(&run.transcript);
        if let Some(t) = run.output {
            return (Some(t), stats, transcript.total_bits().get());
        }
    }
    (None, stats, transcript.total_bits().get())
}

/// The recorder-generic prepared sweep: players built once, repetitions
/// re-roll only the randomness.
fn prepared_sweep<P, R>(
    protocol: &P,
    input: &PreparedInput<'_>,
    reps: u32,
    base_seed: u64,
) -> (Option<Triangle>, CommStats, u64)
where
    P: SimultaneousProtocol<Output = Option<Triangle>>,
    R: Recorder,
{
    let mut stats = CommStats::default();
    let mut recorder = R::with_players(input.k());
    for r in 0..reps {
        let run = run_simultaneous_prepared::<_, R>(
            protocol,
            input.n(),
            input.players(),
            SharedRandomness::new(rep_seed(base_seed, r)),
        );
        stats = stats.merged(run.stats);
        recorder.absorb(&run.transcript);
        if let Some(t) = run.output {
            return (Some(t), stats, recorder.total_bits().get());
        }
    }
    (None, stats, recorder.total_bits().get())
}

/// Worker count of the pooled timing row. Fixed (rather than the
/// machine's parallelism) so the row means the same thing everywhere;
/// determinism makes the *results* identical at any worker count
/// regardless.
const POOL_WORKERS: usize = 4;

/// The tally fast path with the prepared players shared across the
/// workers of `pool`: repetitions are sharded, results are merged in
/// repetition order, so the outcome is identical to the serial sweep.
fn pooled_sweep<P>(
    pool: &Pool,
    protocol: &P,
    input: &PreparedInput<'_>,
    reps: u32,
    base_seed: u64,
) -> (Option<Triangle>, CommStats, u64)
where
    P: SimultaneousProtocol<Output = Option<Triangle>> + Sync,
{
    let runs = pool.ordered_map_until(
        reps as usize,
        |r| {
            run_simultaneous_prepared::<_, Tally>(
                protocol,
                input.n(),
                input.players(),
                SharedRandomness::new(rep_seed(base_seed, r as u32)),
            )
        },
        |run| run.output.is_some(),
    );
    let mut stats = CommStats::default();
    let mut recorder = Tally::with_players(input.k());
    let mut out = None;
    for run in runs {
        stats = stats.merged(run.stats);
        recorder.absorb(&run.transcript);
        if let Some(t) = run.output {
            out = Some(t);
            break;
        }
    }
    (out, stats, recorder.total_bits().get())
}

/// Times one protocol's amplified sweep on all three paths, asserting
/// verdicts and bit totals agree.
///
/// # Panics
///
/// Panics if any path disagrees on the outcome or the total bits — a
/// cost-accounting bug, not a measurement problem.
pub fn time_sweep<P: SimultaneousProtocol<Output = Option<Triangle>> + Sync>(
    name: &str,
    protocol: &P,
    g: &Graph,
    partition: &Partition,
    reps: u32,
    timing_reps: usize,
    base_seed: u64,
) -> RuntimeTiming {
    let input = PreparedInput::new(g, partition).expect("valid workload");
    let (naive_ms, naive) = time_best(timing_reps, || {
        naive_sweep(protocol, g, partition, reps, base_seed)
    });
    let (full_ms, full) = time_best(timing_reps, || {
        prepared_sweep::<_, Transcript>(protocol, &input, reps, base_seed)
    });
    let (tally_ms, tally) = time_best(timing_reps, || {
        prepared_sweep::<_, Tally>(protocol, &input, reps, base_seed)
    });
    let pool = Pool::new(POOL_WORKERS);
    let (pooled_ms, pooled) = time_best(timing_reps, || {
        pooled_sweep(&pool, protocol, &input, reps, base_seed)
    });
    assert_eq!(full.0, naive.0, "{name}: outcome diverged (full)");
    assert_eq!(tally.0, naive.0, "{name}: outcome diverged (tally)");
    assert_eq!(pooled.0, naive.0, "{name}: outcome diverged (pooled)");
    assert_eq!(full.1, naive.1, "{name}: stats diverged (full)");
    assert_eq!(tally.1, naive.1, "{name}: stats diverged (tally)");
    assert_eq!(pooled.1, naive.1, "{name}: stats diverged (pooled)");
    assert_eq!(tally.2, naive.2, "{name}: total bits diverged");
    assert_eq!(pooled.2, naive.2, "{name}: total bits diverged (pooled)");
    RuntimeTiming {
        protocol: name.to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        players: partition.players(),
        repetitions: reps,
        naive_ms,
        full_ms,
        tally_ms,
        pooled_ms,
        pool_workers: POOL_WORKERS,
        total_bits: naive.2,
    }
}

/// Times the unrestricted (interactive) tester's amplified sweep.
///
/// The naive path here is the literal pre-`PreparedInput` entry point —
/// [`run_amplified_with`] re-validates and rebuilds the players every
/// repetition and logs full transcripts; `full` is prepared players with
/// a [`Transcript`]; `tally` is [`run_amplified_prepared`]. The
/// unrestricted tester is the event-heavy case: each repetition records
/// per-player requests and responses across several phases, so this row
/// is where the recorder choice itself shows up.
///
/// # Panics
///
/// Panics on verdict or bit-total divergence between the paths.
pub fn time_unrestricted_sweep(
    tuning: Tuning,
    g: &Graph,
    partition: &Partition,
    reps: u32,
    timing_reps: usize,
    base_seed: u64,
) -> RuntimeTiming {
    let tester = UnrestrictedTester::new(tuning);
    let input = PreparedInput::new(g, partition).expect("valid workload");
    let serial = Pool::serial();
    let (naive_ms, naive) = time_best(timing_reps, || {
        let run = run_amplified_with(&serial, &tester, g, partition, reps, base_seed)
            .expect("valid workload");
        (run.outcome, run.stats, run.transcript.total_bits().get())
    });
    let (full_ms, full) = time_best(timing_reps, || {
        let mut outcome = TestOutcome::NoTriangleFound;
        let mut stats = CommStats::default();
        let mut transcript = Transcript::new(input.k());
        for r in 0..reps {
            let run = tester.run_prepared_recorded::<Transcript>(&input, rep_seed(base_seed, r));
            outcome = run.outcome;
            stats = stats.merged(run.stats);
            transcript.absorb(&run.transcript);
            if run.outcome.found_triangle() {
                break;
            }
        }
        (outcome, stats, transcript.total_bits().get())
    });
    assert_eq!(full.0, naive.0, "unrestricted: outcome diverged (full)");
    let (tally_ms, tally) = time_best(timing_reps, || {
        let run = run_amplified_prepared(&serial, &tester, &input, reps, base_seed)
            .expect("valid workload");
        (run.outcome, run.stats, run.transcript.total_bits().get())
    });
    let pool = Pool::new(POOL_WORKERS);
    let (pooled_ms, pooled) = time_best(timing_reps, || {
        let run = run_amplified_prepared(&pool, &tester, &input, reps, base_seed)
            .expect("valid workload");
        (run.outcome, run.stats, run.transcript.total_bits().get())
    });
    assert_eq!(tally.0, naive.0, "unrestricted: outcome diverged");
    assert_eq!(pooled.0, naive.0, "unrestricted: outcome diverged (pooled)");
    assert_eq!(full.1, naive.1, "unrestricted: stats diverged (full)");
    assert_eq!(tally.1, naive.1, "unrestricted: stats diverged (tally)");
    assert_eq!(pooled.1, naive.1, "unrestricted: stats diverged (pooled)");
    assert_eq!(full.2, naive.2, "unrestricted: total bits diverged (full)");
    assert_eq!(tally.2, naive.2, "unrestricted: total bits diverged");
    assert_eq!(
        pooled.2, naive.2,
        "unrestricted: total bits diverged (pooled)"
    );
    RuntimeTiming {
        protocol: "unrestricted".to_string(),
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        players: partition.players(),
        repetitions: reps,
        naive_ms,
        full_ms,
        tally_ms,
        pooled_ms,
        pool_workers: POOL_WORKERS,
        total_bits: naive.2,
    }
}

/// The standard runtime suite: the whole-input baseline (the allocation
/// worst case the borrowed payloads target), the two degree-aware §3.4
/// testers, and the interactive unrestricted tester, all on
/// triangle-free inputs so every repetition runs.
pub fn runtime_suite(scale: Scale) -> Vec<RuntimeTiming> {
    let timing_reps = scale.pick(2, 3);
    let (n, d, k) = scale.pick((1000, 8.0, 4), (6000, 10.0, 4));
    let reps = scale.pick(8, 24);
    let (g, parts) = bipartite_workload(n, d, k, 7);
    let tuning = Tuning::practical(0.2);
    vec![
        time_unrestricted_sweep(tuning, &g, &parts, reps, timing_reps, 11),
        time_sweep(
            "send-everything",
            &SendEverything::default(),
            &g,
            &parts,
            reps,
            timing_reps,
            11,
        ),
        time_sweep(
            "sim-low",
            &AlgLow::new(tuning, d),
            &g,
            &parts,
            reps,
            timing_reps,
            11,
        ),
        time_sweep(
            "sim-high",
            &AlgHigh::new(tuning, d),
            &g,
            &parts,
            reps,
            timing_reps,
            11,
        ),
        dense_payload_sweep(scale, timing_reps),
    ]
}

/// The dense-payload row: a bipartite workload thick enough that every
/// exact share clears the `dense_kernel_wins` gate, run with the
/// baseline forced onto `Payload::EdgeBits` — so the sweep exercises
/// the packed-bitset message path (borrowed `share_bitset`, bitset
/// referee union) end to end. Bit totals are asserted equal across
/// paths as everywhere else; the representation is charged identically
/// by construction.
fn dense_payload_sweep(scale: Scale, timing_reps: usize) -> RuntimeTiming {
    let (n, d, k) = scale.pick((400, 40.0, 3), (1200, 80.0, 3));
    let reps = scale.pick(8, 24);
    let (g, parts) = bipartite_workload(n, d, k, 9);
    time_sweep(
        "send-everything-dense-bits",
        &SendEverything::with_repr(PayloadRepr::Bits),
        &g,
        &parts,
        reps,
        timing_reps,
        11,
    )
}

/// Writes timings to `<dir>/BENCH_runtime.json` (creating `dir` if
/// needed) and returns the path. When `sessions` is given, its
/// scheduler-saturation sweep is appended as the final row (protocol
/// `scheduler-sessions`, queries/sec at 1/2/4/8 workers).
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_runtime_json(
    dir: &std::path::Path,
    timings: &[RuntimeTiming],
    sessions: Option<&crate::sessions::SessionSaturation>,
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("BENCH_runtime.json");
    let mut body: Vec<String> = timings
        .iter()
        .map(|t| format!("  {}", t.to_json()))
        .collect();
    if let Some(s) = sessions {
        body.push(format!("  {}", s.to_json()));
    }
    std::fs::write(&path, format!("[\n{}\n]\n", body.join(",\n")))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_paths_agree_and_time() {
        let (g, parts) = bipartite_workload(400, 6.0, 3, 5);
        let t = time_sweep(
            "send-everything",
            &SendEverything::default(),
            &g,
            &parts,
            4,
            1,
            3,
        );
        assert_eq!(t.players, 3);
        assert_eq!(t.repetitions, 4);
        assert!(t.total_bits > 0);
        assert!(t.speedup() > 0.0);
        assert!(t.recorder_speedup() > 0.0);
        assert!(t.parallel_speedup() > 0.0);
        assert_eq!(t.pool_workers, 4);
    }

    #[test]
    fn dense_payload_row_runs_on_bitsets() {
        let t = dense_payload_sweep(Scale::Quick, 1);
        assert_eq!(t.protocol, "send-everything-dense-bits");
        assert!(t.total_bits > 0);
        // The forced representation must not change the accounting: an
        // edge-list run over the same workload agrees bit for bit.
        let (g, parts) = bipartite_workload(400, 40.0, 3, 9);
        let e = time_sweep(
            "reference-edges",
            &SendEverything::with_repr(PayloadRepr::Edges),
            &g,
            &parts,
            Scale::Quick.pick(8, 24),
            1,
            11,
        );
        assert_eq!(t.total_bits, e.total_bits);
        assert_eq!(t.vertices, e.vertices);
        assert_eq!(t.edges, e.edges);
    }

    #[test]
    fn runtime_json_is_well_formed() {
        let (g, parts) = bipartite_workload(300, 6.0, 3, 5);
        let timings = vec![time_sweep(
            "send-everything",
            &SendEverything::default(),
            &g,
            &parts,
            3,
            1,
            3,
        )];
        let dir = std::env::temp_dir().join(format!("triad-runtime-json-{}", std::process::id()));
        let sessions = crate::sessions::session_saturation(Scale::Quick, 2);
        let path = write_runtime_json(&dir, &timings, Some(&sessions)).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_runtime.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("[\n") && text.ends_with("]\n"));
        assert!(text.contains("\"speedup\""));
        assert!(text.contains("\"recorder_speedup\""));
        assert!(text.contains("\"pooled_ms\""));
        assert!(text.contains("\"parallel_speedup\""));
        assert!(text.contains("\"protocol\":\"scheduler-sessions\""));
        assert!(text.contains("\"qps_8\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
