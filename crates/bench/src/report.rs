//! One protocol execution rendered as an exportable
//! [`CostReport`] — the engine behind `triad report` and the
//! `BENCH_*.json` files.
//!
//! The CLI and the bench harness both need "generate an input, run a
//! protocol, summarize the cost against the paper's bound"; this module
//! is that pipeline so the two emit byte-identical schemas.

use crate::experiments::Scale;
use crate::predict;
use crate::workloads::Workload;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_comm::{CostReport, ReportParams, Transcript};
use triad_graph::generators;
use triad_graph::partition::random_disjoint;
use triad_protocols::{
    baseline::run_send_everything, ProtocolError, ProtocolRun, SimProtocolKind, SimultaneousTester,
    Tuning, UnrestrictedTester,
};

/// The protocol names `triad report` accepts, in display order.
pub const PROTOCOLS: &[&str] = &[
    "unrestricted",
    "sim-low",
    "sim-high",
    "sim-oblivious",
    "exact",
];

/// The generator names `triad report` accepts, in display order.
pub const GENERATORS: &[&str] = &["planted", "gnp", "powerlaw", "dense-core"];

/// Errors from assembling or running a report.
#[derive(Debug, Clone)]
pub enum ReportError {
    /// Unknown protocol or generator name, or bad parameters.
    Usage(String),
    /// The protocol itself rejected the input.
    Protocol(ProtocolError),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::Usage(msg) => write!(f, "{msg}"),
            ReportError::Protocol(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReportError {}

impl From<ProtocolError> for ReportError {
    fn from(e: ProtocolError) -> Self {
        ReportError::Protocol(e)
    }
}

/// Generates the named workload at `(n, d, eps, k)` and partitions it
/// randomly among the players.
///
/// # Errors
///
/// Returns [`ReportError::Usage`] on an unknown generator name or
/// parameters the generator rejects.
pub fn generate(
    generator: &str,
    n: usize,
    d: f64,
    eps: f64,
    k: usize,
    seed: u64,
) -> Result<Workload, ReportError> {
    if k == 0 {
        return Err(ReportError::Usage("k must be positive".into()));
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = match generator {
        "planted" => generators::far_graph(n, d, eps, &mut rng)
            .map_err(|e| ReportError::Usage(e.to_string()))?,
        "gnp" => generators::gnp_with_average_degree(n, d, &mut rng),
        "powerlaw" => generators::ChungLu::new(n, d, 2.5)
            .map_err(|e| ReportError::Usage(e.to_string()))?
            .sample(&mut rng),
        "dense-core" => generators::dense_core(n, 4, &mut rng)
            .map_err(|e| ReportError::Usage(e.to_string()))?
            .graph()
            .clone(),
        other => {
            return Err(ReportError::Usage(format!(
                "unknown generator `{other}` (expected one of {})",
                GENERATORS.join(", ")
            )))
        }
    };
    let partition = random_disjoint(&graph, k, &mut rng);
    Ok(Workload {
        n,
        d: graph.average_degree(),
        k,
        graph,
        partition,
    })
}

/// Runs the named protocol over an already-generated workload.
///
/// # Errors
///
/// Returns [`ReportError::Usage`] on an unknown protocol name and
/// [`ReportError::Protocol`] when the run itself fails.
pub fn run_protocol(
    protocol: &str,
    w: &Workload,
    eps: f64,
    seed: u64,
) -> Result<ProtocolRun, ReportError> {
    let tuning = Tuning::practical(eps);
    let run = match protocol {
        "unrestricted" => UnrestrictedTester::new(tuning).run(&w.graph, &w.partition, seed)?,
        "sim-low" => SimultaneousTester::new(
            tuning,
            SimProtocolKind::Low {
                avg_degree: w.d.max(0.1),
            },
        )
        .run(&w.graph, &w.partition, seed)?,
        "sim-high" => SimultaneousTester::new(
            tuning,
            SimProtocolKind::High {
                avg_degree: w.d.max(0.1),
            },
        )
        .run(&w.graph, &w.partition, seed)?,
        "sim-oblivious" => SimultaneousTester::new(tuning, SimProtocolKind::Oblivious).run(
            &w.graph,
            &w.partition,
            seed,
        )?,
        "exact" => run_send_everything(&w.graph, &w.partition, seed)?,
        other => {
            return Err(ReportError::Usage(format!(
                "unknown protocol `{other}` (expected one of {})",
                PROTOCOLS.join(", ")
            )))
        }
    };
    Ok(run)
}

/// Builds a [`CostReport`] from a finished run, attaching the paper's
/// predicted bound when the protocol has one. The run's parameters
/// arrive bundled as a [`ReportParams`] (the same struct the report
/// embeds), not as a positional argument list.
pub fn report_for_run(
    params: ReportParams,
    run: &ProtocolRun,
    transcript: &Transcript,
) -> CostReport {
    let (protocol, n, d, k) = (params.protocol.clone(), params.n, params.d, params.k);
    let report = CostReport::from_transcript(params, run.outcome_str(), run.stats, transcript);
    match predict::for_protocol(&protocol, n, d, k) {
        Some(p) => report.with_predicted(p.formula, p.bits),
        None => report,
    }
}

/// The full `triad report` pipeline: generate, run, summarize.
///
/// # Errors
///
/// Returns [`ReportError::Usage`] on unknown names or bad parameters
/// and [`ReportError::Protocol`] when the run fails.
///
/// # Example
///
/// ```
/// let report = triad_bench::report::run_report(
///     "sim-low", "planted", 256, 4, 6.0, 0.2, 7,
/// ).unwrap();
/// let phase_sum: u64 = report.phases.iter().map(|r| r.bits).sum();
/// assert_eq!(phase_sum, report.total_bits);
/// ```
pub fn run_report(
    protocol: &str,
    generator: &str,
    n: usize,
    k: usize,
    d: f64,
    eps: f64,
    seed: u64,
) -> Result<CostReport, ReportError> {
    let w = generate(generator, n, d, eps, k, seed)?;
    let run = run_protocol(protocol, &w, eps, seed)?;
    let params = ReportParams {
        protocol: protocol.to_string(),
        generator: generator.to_string(),
        n,
        k,
        d: w.d,
        eps,
        seed,
    };
    Ok(report_for_run(params, &run, &run.transcript))
}

/// The standard cost suite: every protocol on the planted workload at
/// pinned parameters and seed, so the resulting `BENCH_costs.json` is
/// byte-for-byte diffable across revisions.
///
/// Protocols run in parallel on the configured pool
/// ([`triad_comm::pool::Pool::current`]); reports are emitted in
/// registry order, so the JSON bytes do not depend on the thread count.
///
/// # Panics
///
/// Panics if a protocol run fails — the parameters are pinned, so a
/// failure is a regression, not an input problem.
pub fn standard_suite(scale: Scale) -> Vec<CostReport> {
    standard_suite_with(&triad_comm::pool::Pool::current(), scale)
}

/// [`standard_suite`] on an explicit pool.
///
/// # Panics
///
/// Panics if a protocol run fails (see [`standard_suite`]).
pub fn standard_suite_with(pool: &triad_comm::pool::Pool, scale: Scale) -> Vec<CostReport> {
    let (n, d, k, seed) = scale.pick((512, 6.0, 4, 7), (4096, 8.0, 8, 7));
    pool.ordered_map(PROTOCOLS.len(), |i| {
        let p = PROTOCOLS[i];
        run_report(p, "planted", n, k, d, 0.2, seed)
            .unwrap_or_else(|e| panic!("standard suite {p}: {e}"))
    })
}

/// Writes reports to `<dir>/BENCH_<name>.json` (creating `dir` if
/// needed) and returns the path.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn write_bench_json(
    dir: &std::path::Path,
    name: &str,
    reports: &[CostReport],
) -> std::io::Result<std::path::PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let file = std::fs::File::create(&path)?;
    triad_comm::write_reports_json(reports, std::io::BufWriter::new(file))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_protocol_reports_partitioned_phases() {
        for protocol in PROTOCOLS {
            let r = run_report(protocol, "planted", 256, 4, 6.0, 0.2, 11)
                .unwrap_or_else(|e| panic!("{protocol}: {e}"));
            assert_eq!(r.params.protocol, *protocol);
            let phase_sum: u64 = r.phases.iter().map(|x| x.bits).sum();
            assert_eq!(
                phase_sum, r.total_bits,
                "{protocol}: phases must partition total"
            );
            let player_sum: u64 = r.per_player.iter().map(|x| x.bits).sum();
            assert_eq!(
                player_sum, r.total_bits,
                "{protocol}: players must partition total"
            );
            let p = r
                .predicted
                .as_ref()
                .expect("all five protocols have bounds");
            assert!(p.bits > 0.0);
        }
    }

    #[test]
    fn every_generator_yields_a_runnable_workload() {
        for generator in GENERATORS {
            let r = run_report("exact", generator, 240, 3, 6.0, 0.2, 5)
                .unwrap_or_else(|e| panic!("{generator}: {e}"));
            assert!(r.total_bits > 0, "{generator}");
        }
    }

    #[test]
    fn unknown_names_are_usage_errors() {
        assert!(matches!(
            run_report("nope", "planted", 128, 2, 4.0, 0.2, 0),
            Err(ReportError::Usage(_))
        ));
        assert!(matches!(
            run_report("exact", "nope", 128, 2, 4.0, 0.2, 0),
            Err(ReportError::Usage(_))
        ));
    }

    #[test]
    fn standard_suite_writes_diffable_bench_json() {
        let reports = standard_suite(Scale::Quick);
        assert_eq!(reports.len(), PROTOCOLS.len());
        let dir = std::env::temp_dir().join(format!("triad-bench-json-{}", std::process::id()));
        let path = write_bench_json(&dir, "costs", &reports).unwrap();
        assert_eq!(path.file_name().unwrap(), "BENCH_costs.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(
            text.matches("\"schema_version\"").count(),
            PROTOCOLS.len(),
            "one report object per protocol"
        );
        // Pinned seeds: a second run must produce identical bytes.
        let again = standard_suite(Scale::Quick);
        let mut buf = Vec::new();
        triad_comm::write_reports_json(&again, &mut buf).unwrap();
        assert_eq!(
            text.as_bytes(),
            buf.as_slice(),
            "BENCH json must be deterministic"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unrestricted_report_names_search_phases() {
        let r = run_report("unrestricted", "planted", 300, 4, 6.0, 0.2, 3).unwrap();
        let keys: Vec<&str> = r.phases.iter().map(|x| x.key.as_str()).collect();
        assert!(
            keys.iter()
                .any(|k| *k == "estimate-degree" || *k == "find-candidates"),
            "expected search phases in {keys:?}"
        );
    }
}
