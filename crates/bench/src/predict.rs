//! The paper's asymptotic upper bounds, evaluated at concrete
//! parameters.
//!
//! Each function returns the bound's leading term with unit constants
//! and no polylog factors; exported reports carry the `measured /
//! predicted` ratio, so the hidden constant-plus-polylog factor is
//! visible rather than assumed. The formula strings are the exact text
//! stamped into `CostReport::predicted.formula`, keeping `BENCH_*.json`
//! files diffable across revisions.

/// A bound's formula (as stamped into reports) and its value at the
/// run's parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The asymptotic formula as written in the paper.
    pub formula: &'static str,
    /// The leading term evaluated with unit constants.
    pub bits: f64,
}

/// Theorem 3.20 / Corollary 3.21: the unrestricted tester costs
/// `Õ(k·(nd)^{1/4} + k²)` bits.
pub fn unrestricted(n: usize, d: f64, k: usize) -> Prediction {
    let k = k as f64;
    Prediction {
        formula: "k·(nd)^{1/4} + k²",
        bits: k * (n as f64 * d).powf(0.25) + k * k,
    }
}

/// Theorem 3.26: the low-degree (`d = O(√n)`) simultaneous tester costs
/// `O(k·√n·log n)`; the leading term is `k·√n`.
pub fn sim_low(n: usize, k: usize) -> Prediction {
    Prediction {
        formula: "k·√n",
        bits: k as f64 * (n as f64).sqrt(),
    }
}

/// Theorem 3.24: the high-degree (`d = Ω(√n)`) simultaneous tester costs
/// `O(k·(nd)^{1/3}·log n)`; the leading term is `k·(nd)^{1/3}`.
pub fn sim_high(n: usize, d: f64, k: usize) -> Prediction {
    Prediction {
        formula: "k·(nd)^{1/3}",
        bits: k as f64 * (n as f64 * d).powf(1.0 / 3.0),
    }
}

/// Theorem 3.32: the degree-oblivious simultaneous tester pays both
/// regimes' terms (up to polylog): `k·(√n + (nd)^{1/3})`.
pub fn sim_oblivious(n: usize, d: f64, k: usize) -> Prediction {
    Prediction {
        formula: "k·(√n + (nd)^{1/3})",
        bits: k as f64 * ((n as f64).sqrt() + (n as f64 * d).powf(1.0 / 3.0)),
    }
}

/// Woodruff–Zhang (\[38\]): exact triangle detection is `Ω(k·n·d)` — here
/// rendered as the cost of shipping all `m = nd/2` edges at
/// `2⌈log₂ n⌉` bits each, the exact cost of the `SendEverything`
/// baseline up to length prefixes.
pub fn exact(n: usize, d: f64) -> Prediction {
    let m = n as f64 * d / 2.0;
    let bits_per_vertex = (n.max(2) as f64).log2().ceil();
    Prediction {
        formula: "2m·⌈log₂ n⌉",
        bits: m * 2.0 * bits_per_vertex,
    }
}

/// The prediction for a protocol by its CLI name, or `None` for names
/// with no closed-form bound in the paper.
pub fn for_protocol(protocol: &str, n: usize, d: f64, k: usize) -> Option<Prediction> {
    match protocol {
        "unrestricted" => Some(unrestricted(n, d, k)),
        "sim-low" => Some(sim_low(n, k)),
        "sim-high" => Some(sim_high(n, d, k)),
        "sim-oblivious" => Some(sim_oblivious(n, d, k)),
        "exact" => Some(exact(n, d)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_evaluate_to_their_leading_terms() {
        // n = 256, d = 4 ⇒ nd = 1024: every root is exact.
        let p = unrestricted(256, 4.0, 3);
        assert!((p.bits - (3.0 * 1024f64.powf(0.25) + 9.0)).abs() < 1e-9);
        assert_eq!(sim_low(256, 3).bits, 48.0);
        assert!((sim_high(256, 4.0, 3).bits - 3.0 * 1024f64.cbrt()).abs() < 1e-9);
        let ob = sim_oblivious(256, 4.0, 3);
        assert!((ob.bits - (sim_low(256, 3).bits + sim_high(256, 4.0, 3).bits)).abs() < 1e-9);
        // m = 512 edges at 2 × 8 bits.
        assert_eq!(exact(256, 4.0).bits, 512.0 * 16.0);
    }

    #[test]
    fn lookup_covers_every_cli_protocol_name() {
        for name in [
            "unrestricted",
            "sim-low",
            "sim-high",
            "sim-oblivious",
            "exact",
        ] {
            let p = for_protocol(name, 1024, 8.0, 4).expect(name);
            assert!(p.bits > 0.0, "{name}");
        }
        assert!(for_protocol("unknown", 1024, 8.0, 4).is_none());
    }

    #[test]
    fn testers_beat_exact_asymptotically() {
        let (n, d, k) = (1 << 20, 16.0, 8);
        let ex = exact(n, d).bits;
        for p in [
            unrestricted(n, d, k),
            sim_low(n, k),
            sim_high(n, d, k),
            sim_oblivious(n, d, k),
        ] {
            assert!(p.bits < ex / 100.0, "{} should be ≪ exact", p.formula);
        }
    }
}
