//! # triad-bench
//!
//! The harness that regenerates the paper's results table (Table 1) and
//! every analytic claim as *measured* communication. See `DESIGN.md` for
//! the experiment index (E1–E12) and `EXPERIMENTS.md` for the recorded
//! paper-vs-measured comparison.
//!
//! * [`chaos`] — deterministic fault-injection matrix: survival and
//!   retransmission accounting per fault rate (`BENCH_chaos.json`),
//! * [`fit`] — log-log regression for scaling exponents,
//! * [`kernels`] — naive-vs-kernel triangle timings (`BENCH_kernels.json`),
//! * [`predict`] — the paper's bounds evaluated at concrete parameters,
//! * [`runtime`] — amplified-sweep recorder/prepared-input timings
//!   (`BENCH_runtime.json`),
//! * [`sessions`] — scheduler-saturation sweep: queries/sec for batched
//!   sessions at 1/2/4/8 workers (the `scheduler-sessions` row of
//!   `BENCH_runtime.json`),
//! * [`report`] — protocol runs rendered as exportable [`triad_comm::CostReport`]s,
//! * [`table`] — plain-text / Markdown report rendering,
//! * [`workloads`] — the standard input families at given `(n, d, k)`,
//! * [`experiments`] — one function per experiment, each returning a
//!   [`table::Report`].

pub mod chaos;
pub mod experiments;
pub mod fit;
pub mod kernels;
pub mod predict;
pub mod report;
pub mod runtime;
pub mod sessions;
pub mod table;
pub mod workloads;
