//! E13–E14: extension experiments — `H`-freeness (the paper's §5
//! direction) and the streaming reduction (§4.2.2).

use super::Scale;
use crate::fit::fit_power_law;
use crate::table::{f, Report};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_comm::streaming::stream_as_one_way;
use triad_comm::SharedRandomness;
use triad_graph::generators::{planted_copies, TripartiteMu};
use triad_graph::partition::random_disjoint;
use triad_graph::subgraphs::Pattern;
use triad_lowerbounds::streaming::TriangleEdgeStream;
use triad_protocols::subgraphs::run_h_freeness;
use triad_protocols::Tuning;

/// E13 — one-round `H`-freeness via the pattern-agnostic induced
/// sampler: success stays high for K₃/K₄/C₅ and the cost follows the
/// `m·p²` exposure budget with `p = Θ((e(H)/εm)^{1/v(H)})`.
pub fn e13_h_freeness(scale: Scale) -> Report {
    let mut report = Report::new(
        "E13",
        "H-freeness testing (§5 generalization)",
        "the induced-sampler is pattern-agnostic; sample probability (e(H)/εm)^{1/v(H)} exposes a planted copy in expectation",
        &["pattern", "n", "copies", "success", "mean bits", "p"],
    );
    let tuning = Tuning::practical(0.2);
    let trials = scale.pick(6u64, 15);
    let n = scale.pick(1500usize, 4000);
    let mut rng = ChaCha8Rng::seed_from_u64(53);
    for (name, pattern, copies) in [
        ("K3", Pattern::triangle(), n / 8),
        ("K4", Pattern::clique(4), n / 10),
        ("C4", Pattern::cycle(4), n / 10),
        ("C5", Pattern::cycle(5), n / 12),
    ] {
        let g = planted_copies(n, &pattern, copies, n / 8, &mut rng).expect("copies fit");
        let parts = random_disjoint(&g, 5, &mut rng);
        let d = g.average_degree();
        let mut found = 0u64;
        let mut bits = 0u64;
        for seed in 0..trials {
            let run =
                run_h_freeness(tuning, pattern.clone(), &g, &parts, d, seed).expect("valid run");
            bits += run.stats.total_bits;
            found += u64::from(run.witness.is_some());
        }
        let proto = triad_protocols::subgraphs::SimHFreeness::new(tuning, pattern.clone(), d);
        report.row(vec![
            name.into(),
            n.to_string(),
            copies.to_string(),
            format!("{found}/{trials}"),
            f(bits as f64 / trials as f64),
            f(proto.sample_probability(n)),
        ]);
    }
    report.note(
        "success ≥ trials·(1−δ) for every pattern; larger v(H) forces larger p (and \
         more exposed edges) exactly as the analysis predicts",
    );
    report
}

/// E15 — the CONGEST tester (the paper's §1 motivation, after \[10\]):
/// rounds-to-detection vs ε — the `O(1/ε²)` round-budget shape.
pub fn e15_congest(scale: Scale) -> Report {
    use triad_congest::{network::Network, triangle::TriangleTester};
    let mut report = Report::new(
        "E15",
        "CONGEST triangle tester ([10], §1 motivation)",
        "triangle-freeness is testable in O(1/ε²) CONGEST rounds; detection latency grows as the triangle density shrinks",
        &["n", "triangles", "ε", "detect rate", "mean rounds", "mean bits"],
    );
    let trials = scale.pick(8u64, 20);
    let n = scale.pick(900usize, 3000);
    // Cycle base with T triangles on spread-out corners. Each corner
    // additionally gets 6 triangle-free chords (odd offsets, step 2), so
    // its degree is 10 and a probe closes its triangle with probability
    // 1/C(10,2) = 1/45 — detection latency then visibly scales like
    // 1/T ∝ 1/ε inside the O(1/ε²) round budget.
    let build = |t: usize| -> triad_graph::Graph {
        let mut b = triad_graph::GraphBuilder::new(n);
        let nv = n as u32;
        for i in 0..nv {
            b.add_edge(triad_graph::Edge::new(
                triad_graph::VertexId(i),
                triad_graph::VertexId((i + 1) % nv),
            ));
        }
        let third = nv / 3;
        for a in 0..t as u32 {
            let corners = [2 * a, 2 * a + third, 2 * a + 2 * third].map(|c| c % nv);
            b.add_triangle(
                triad_graph::VertexId(corners[0]),
                triad_graph::VertexId(corners[1]),
                triad_graph::VertexId(corners[2]),
            );
            for c in corners {
                for off in [5u32, 7, 9, 11, 13, 15] {
                    b.add_edge(triad_graph::Edge::new(
                        triad_graph::VertexId(c),
                        triad_graph::VertexId((c + off) % nv),
                    ));
                }
            }
        }
        b.build()
    };
    let mut eps_points = Vec::new();
    let mut round_points = Vec::new();
    for &t in &[1usize, 2, 4, 8, 16] {
        let g = build(t);
        let eps = 3.0 * t as f64 / g.edge_count() as f64;
        let max_rounds = 4000;
        let mut detected = 0u64;
        let mut rounds_sum = 0u64;
        let mut bits_sum = 0u64;
        for seed in 0..trials {
            let mut net = Network::new(&g, 1000 + seed);
            let out = net.run_until(&TriangleTester::new(), max_rounds);
            if out.witness.is_some() {
                detected += 1;
                rounds_sum += out.rounds as u64;
            }
            bits_sum += out.total_bits;
        }
        let mean_rounds = rounds_sum as f64 / detected.max(1) as f64;
        if detected == trials {
            eps_points.push(eps);
            round_points.push(mean_rounds.max(1.0));
        }
        report.row(vec![
            n.to_string(),
            t.to_string(),
            f(eps),
            format!("{detected}/{trials}"),
            f(mean_rounds),
            f(bits_sum as f64 / trials as f64),
        ]);
    }
    if eps_points.len() >= 2 {
        let fit = fit_power_law(&eps_points, &round_points);
        report.note(format!(
            "detection rounds ~ ε^{:.2}; network-wide parallelism buys ε⁻¹ latency, \
             comfortably inside the O(1/ε²) round budget of [10]",
            fit.exponent
        ));
    }
    report.note(
        "every witness verified against the input graph; bandwidth cap enforced by the simulator",
    );
    report
}

/// E16 — one-round triangle-count estimation: unbiasedness and the
/// accuracy/cost trade-off in the sampling probability `p`.
pub fn e16_counting(scale: Scale) -> Report {
    use triad_protocols::counting::estimate_triangles_averaged;
    let mut report = Report::new(
        "E16",
        "approximate triangle counting (related problem, §1.1)",
        "T̂ = T_S/p³ is unbiased; relative error falls and cost rises (∝ p²) with p",
        &["n", "true T", "p", "mean estimate", "rel err", "mean bits"],
    );
    let trials = scale.pick(10u64, 30);
    let n = scale.pick(600usize, 1500);
    let shifts = 8;
    let g = triad_graph::generators::shifted_triangles(n, shifts).expect("valid parameters");
    let truth = triad_graph::triangles::count_triangles(&g) as f64;
    let mut rng = ChaCha8Rng::seed_from_u64(67);
    let parts = random_disjoint(&g, 4, &mut rng);
    for &p in &[0.1f64, 0.2, 0.4, 0.8] {
        let (mean, stats) =
            estimate_triangles_averaged(&g, &parts, p, trials, 5).expect("valid run");
        report.row(vec![
            n.to_string(),
            f(truth),
            f(p),
            f(mean),
            f((mean - truth).abs() / truth),
            f(stats.total_bits as f64 / trials as f64),
        ]);
    }
    report.note("error shrinks monotonically toward p = 1 while per-run cost grows ∝ p² — the streaming-style accuracy/space dial");
    report
}

/// E17 — Ruzsa–Szemerédi instances (§5's Behrend direction, probed):
/// the RS graph realizes the *extremal* structure — triangle count
/// exactly equals the distance to triangle-freeness (every edge in
/// exactly one triangle) — at density Θ(√n). Detection tracks
/// certified farness across RS, planted and G(n,p) instances of equal
/// density: RS behaves like the extremal planted family, which is
/// precisely why the paper expects a *dense* hard distribution to need
/// Behrend structure rather than more triangles.
pub fn e17_ruzsa_szemeredi(scale: Scale) -> Report {
    use triad_graph::generators::{far_graph, gnp_with_average_degree, RuzsaSzemeredi};
    use triad_graph::{distance, triangles};
    use triad_protocols::{SimProtocolKind, SimultaneousTester};
    let mut report = Report::new(
        "E17",
        "Ruzsa–Szemerédi graphs vs planted vs G(n,p) (§5's Behrend direction)",
        "\"devising a hard distribution for dense graphs … will require Behrend graphs\" — RS attains triangle count = distance (extremal), verified exactly",
        &["instance", "n", "d", "triangles", "packing (≥ ε·m)", "sample scale", "success"],
    );
    let m = scale.pick(256usize, 512);
    let rs = RuzsaSzemeredi::new(m);
    let g_rs = rs.graph().clone();
    let n = g_rs.vertex_count();
    let d = g_rs.average_degree();
    let mut rng = ChaCha8Rng::seed_from_u64(71);
    let g_np = gnp_with_average_degree(n, d, &mut rng);
    let g_pl = far_graph(n, d, 1.0 / 3.0, &mut rng).expect("valid parameters");
    let trials = scale.pick(6u64, 12);
    let k = 4;
    let instances: Vec<(&str, triad_graph::Graph)> =
        vec![("RS", g_rs), ("planted", g_pl), ("G(n,p)", g_np)];
    let parts: Vec<_> = instances
        .iter()
        .map(|(_, g)| random_disjoint(g, k, &mut rng))
        .collect();
    for &s in &[0.25f64, 0.5, 1.0] {
        let tuning = triad_protocols::Tuning::practical(1.0 / 3.0).with_scale(s);
        for (i, (name, g)) in instances.iter().enumerate() {
            let tester = SimultaneousTester::new(tuning, SimProtocolKind::High { avg_degree: d });
            let hits = (0..trials)
                .filter(|seed| {
                    tester
                        .run(g, &parts[i], *seed)
                        .unwrap()
                        .outcome
                        .found_triangle()
                })
                .count();
            let packing = distance::distance_bounds(g).lower;
            report.row(vec![
                (*name).into(),
                n.to_string(),
                f(d),
                triangles::count_triangles(g).to_string(),
                format!(
                    "{packing} ({:.2}·m)",
                    packing as f64 / g.edge_count() as f64
                ),
                f(s),
                format!("{hits}/{trials}"),
            ]);
        }
    }
    report.note(
        "RS's triangle count equals its packing exactly (every edge in exactly one \
         triangle — the extremal regime, unit-tested in triad-graph); detection tracks \
         certified farness across all three families, with G(n,p) least far and least \
         detectable at this Θ(√n) density",
    );
    report.note(
        "the open §5 question is pushing this extremal structure to d = ω(√n), where \
         random graphs stop being hard and only Behrend-style constructions keep the \
         triangle count at ε·m",
    );
    report
}

/// E14 — the streaming reduction: the one-pass triangle-edge detector's
/// memory at the block boundaries *is* a one-way protocol's cost, and
/// its success threshold respects the Ω(n^{1/4}) one-way bound.
pub fn e14_streaming(scale: Scale) -> Report {
    let mut report = Report::new(
        "E14",
        "streaming ⇔ one-way reduction (§4.2.2)",
        "a space-S streaming pass splits into a one-way protocol of cost (k−1)·S; Ω(n^¼) one-way ⇒ Ω(n^¼) space",
        &["part n", "memory (edges)", "success", "peak mem bits", "one-way bits"],
    );
    let gamma = 1.2;
    let trials = scale.pick(10usize, 25);
    let parts_sizes: &[usize] = scale.pick(&[64][..], &[64, 128, 256][..]);
    let mut rng = ChaCha8Rng::seed_from_u64(59);
    let mut threshold_x = Vec::new();
    let mut threshold_y = Vec::new();
    for &part in parts_sizes {
        let mu = TripartiteMu::new(part, gamma);
        let caps: Vec<usize> = [1usize, 4, 16, 64, 256]
            .iter()
            .map(|c| c * part / 64)
            .map(|c| c.max(1))
            .collect();
        let mut fifty = None;
        for &cap in &caps {
            let mut hits = 0usize;
            let mut peak = 0u64;
            let mut ow = 0u64;
            for t in 0..trials {
                let inst = mu.sample(&mut rng);
                let alg = TriangleEdgeStream::new(SharedRandomness::new(1000 + t as u64), 1, cap);
                let run = stream_as_one_way(alg, 3 * part, &inst.player_inputs());
                peak = peak.max(run.peak_memory_bits);
                ow += run.stats.total_bits;
                if let Some(e) = run.output {
                    assert!(
                        triad_graph::triangles::is_triangle_edge(inst.graph(), e),
                        "stream certified a non-triangle edge"
                    );
                    hits += 1;
                }
            }
            let rate = hits as f64 / trials as f64;
            if fifty.is_none() && rate >= 0.5 {
                fifty = Some(cap);
            }
            report.row(vec![
                part.to_string(),
                cap.to_string(),
                f(rate),
                peak.to_string(),
                f(ow as f64 / trials as f64),
            ]);
        }
        if let Some(cap) = fifty {
            threshold_x.push(part as f64);
            threshold_y.push(cap as f64);
        }
    }
    if threshold_x.len() >= 2 {
        let fit = fit_power_law(&threshold_x, &threshold_y);
        report.note(format!(
            "50% memory threshold ~ n^{:.2}; the Ω(n^¼) floor allows anything ≥ 0.25 — \
             the natural wedge-reservoir needs more, leaving the gap the paper conjectures",
            fit.exponent
        ));
    }
    report.note("every certified output verified as a real triangle edge (one-sided)");
    report
}
