//! One function per experiment (E1–E12). Each returns a renderable
//! [`Report`]; the `reproduce` binary prints them all.
//!
//! Every experiment takes a [`Scale`]: `Quick` shrinks sweeps for smoke
//! runs and CI, `Full` is the configuration recorded in EXPERIMENTS.md.

mod blocks;
mod compare;
mod extensions;
mod info;
mod lower;
mod upper;

pub use blocks::e8_building_blocks;
pub use compare::{e10_model_variants, e7_vs_exact, e9_bucketing_ablation};
pub use extensions::{
    e13_h_freeness, e14_streaming, e15_congest, e16_counting, e17_ruzsa_szemeredi,
};
pub use info::e12_information_accounting;
pub use lower::{e11_mu_farness, e5_mu_budget_sweeps, e6_boolean_matching};
pub use upper::{e1_unrestricted, e2_sim_low, e3_sim_high, e4_oblivious};

use crate::table::Report;

/// Sweep size selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small sweeps (seconds) for smoke tests.
    Quick,
    /// The full sweeps recorded in EXPERIMENTS.md (minutes).
    Full,
}

impl Scale {
    /// Picks between quick and full values.
    pub fn pick<T: Copy>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// An experiment entry point: takes a [`Scale`], returns its report.
pub type Experiment = fn(Scale) -> Report;

/// Registry of all experiments in order.
pub fn all() -> Vec<(&'static str, Experiment)> {
    vec![
        ("e1", e1_unrestricted as Experiment),
        ("e2", e2_sim_low),
        ("e3", e3_sim_high),
        ("e4", e4_oblivious),
        ("e5", e5_mu_budget_sweeps),
        ("e6", e6_boolean_matching),
        ("e7", e7_vs_exact),
        ("e8", e8_building_blocks),
        ("e9", e9_bucketing_ablation),
        ("e10", e10_model_variants),
        ("e11", e11_mu_farness),
        ("e12", e12_information_accounting),
        ("e13", e13_h_freeness),
        ("e14", e14_streaming),
        ("e15", e15_congest),
        ("e16", e16_counting),
        ("e17", e17_ruzsa_szemeredi),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let reg = all();
        assert_eq!(reg.len(), 17);
        let ids: std::collections::HashSet<_> = reg.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), 17);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
