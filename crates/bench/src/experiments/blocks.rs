//! E8 — the §3.1 building blocks, measured.

use super::Scale;
use crate::table::{f, Report};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use triad_comm::{CostModel, Runtime, SharedRandomness};
use triad_graph::partition::{random_disjoint, with_duplication};
use triad_graph::{Edge, Graph, GraphBuilder, VertexId};
use triad_protocols::blocks::{approx_degree, approx_degree_no_duplication, random_edge};
use triad_protocols::Tuning;

fn star(n: usize, degree: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for i in 1..=degree {
        b.add_edge(Edge::new(VertexId(0), VertexId(i as u32)));
    }
    b.build()
}

/// E8 — Theorem 3.1 / Lemma 3.2 degree approximation (cost and accuracy,
/// with and without duplication) and random-edge uniformity.
pub fn e8_building_blocks(scale: Scale) -> Report {
    let mut report = Report::new(
        "E8",
        "building blocks (§3.1)",
        "degree α-approx in O(k·loglog d + k·log k·loglog k) bits under duplication (Thm 3.1); O(k·loglog d) without (Lemma 3.2)",
        &["block", "deg(v)", "k", "dup", "bits", "est/true"],
    );
    let tuning = Tuning::practical(0.2);
    let k = 6;
    let n = 100_000;
    let degrees: &[usize] = scale.pick(&[64, 4096][..], &[64, 512, 4096, 32768][..]);
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for &deg in degrees {
        let g = star(n, deg);
        for dup in [false, true] {
            let parts = if dup {
                with_duplication(&g, k, 0.5, &mut rng)
            } else {
                random_disjoint(&g, k, &mut rng)
            };
            let mut rt = Runtime::local(
                n,
                parts.shares(),
                SharedRandomness::new(deg as u64),
                CostModel::Coordinator,
            );
            let est = approx_degree(&mut rt, VertexId(0), &tuning);
            report.row(vec![
                "Thm 3.1 approx".into(),
                deg.to_string(),
                k.to_string(),
                if dup { "50%" } else { "0%" }.into(),
                rt.stats().total_bits.to_string(),
                f(est.value / deg as f64),
            ]);
            if !dup {
                let mut rt2 = Runtime::local(
                    n,
                    parts.shares(),
                    SharedRandomness::new(deg as u64),
                    CostModel::Coordinator,
                );
                let est2 = approx_degree_no_duplication(&mut rt2, VertexId(0), 3f64.sqrt());
                report.row(vec![
                    "Lemma 3.2 approx".into(),
                    deg.to_string(),
                    k.to_string(),
                    "0%".into(),
                    rt2.stats().total_bits.to_string(),
                    f(est2.value / deg as f64),
                ]);
            }
        }
    }
    report.note(
        "Thm 3.1 bits grow ~loglog in deg(v) and stay within a constant factor of the \
         no-duplication cost; every estimate lands within the α-window",
    );

    // Random-edge uniformity under duplication (χ² against uniform).
    let edges: Vec<Edge> = (0..8u32)
        .map(|i| Edge::new(VertexId(i), VertexId(i + 8)))
        .collect();
    // Edge 0 is held by all players; the rest by one each.
    let mut shares = vec![Vec::new(); 4];
    for (i, e) in edges.iter().enumerate() {
        shares[i % 4].push(*e);
        shares[(i + 1) % 4].push(edges[0]);
    }
    let draws = scale.pick(400u64, 2000);
    let mut counts: HashMap<Edge, u64> = HashMap::new();
    for seed in 0..draws {
        let mut rt = Runtime::local(
            16,
            &shares,
            SharedRandomness::new(seed),
            CostModel::Coordinator,
        );
        let e = random_edge(&mut rt).expect("non-empty input");
        *counts.entry(e).or_insert(0) += 1;
    }
    let expected = draws as f64 / edges.len() as f64;
    let chi2: f64 = edges
        .iter()
        .map(|e| {
            let c = *counts.get(e).unwrap_or(&0) as f64;
            (c - expected) * (c - expected) / expected
        })
        .sum();
    report.row(vec![
        "random edge χ²".into(),
        "-".into(),
        "4".into(),
        "dup'd".into(),
        f(chi2),
        format!("{} draws", draws),
    ]);
    report.note(format!(
        "χ² = {chi2:.1} over 7 degrees of freedom (95% quantile ≈ 14.1): the permutation \
         trick removes duplication bias from random-edge sampling"
    ));
    report
}
