//! E7, E9, E10: head-to-head comparisons and ablations.

use super::Scale;
use crate::table::{f, Report};
use crate::workloads::{clique_plus_path, mean_over_seeds, planted_far};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_comm::{CostModel, Payload, PlayerRequest, Runtime, SharedRandomness};
use triad_graph::partition::{random_disjoint, with_duplication};
use triad_graph::VertexId;
use triad_protocols::baseline::run_send_everything;
use triad_protocols::blocks::approx_degree;
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester};

const EPS: f64 = 0.2;

/// E7 — the §5 headline: property testing beats exact detection, with a
/// factor that grows with the input.
pub fn e7_vs_exact(scale: Scale) -> Report {
    let mut report = Report::new(
        "E7",
        "testers vs. exact detection",
        "exact triangle detection needs Ω(k·n·d) bits ([38]); testing needs Õ(k·√n) — the gap must widen with n",
        &["n", "exact bits", "unrestricted", "AlgLow", "oblivious", "best speedup"],
    );
    let tuning = Tuning::practical(EPS);
    let trials = scale.pick(2u64, 5);
    let d = 8.0;
    let k = 6;
    let ns: &[usize] = scale.pick(&[1000, 8000][..], &[1000, 8000, 64000, 256000][..]);
    let mut speedups = Vec::new();
    for &n in ns {
        let w = planted_far(n, d, EPS, k, 17);
        let exact = run_send_everything(&w.graph, &w.partition, 0)
            .unwrap()
            .stats
            .total_bits as f64;
        let unres = mean_over_seeds(trials, |s| {
            UnrestrictedTester::new(tuning)
                .run(&w.graph, &w.partition, s)
                .unwrap()
                .stats
                .total_bits
        });
        let low = mean_over_seeds(trials, |s| {
            SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: w.d })
                .run(&w.graph, &w.partition, s)
                .unwrap()
                .stats
                .total_bits
        });
        let obl = mean_over_seeds(trials, |s| {
            SimultaneousTester::new(tuning, SimProtocolKind::Oblivious)
                .run(&w.graph, &w.partition, s)
                .unwrap()
                .stats
                .total_bits
        });
        let best = low.min(unres).min(obl);
        speedups.push(exact / best);
        report.row(vec![
            n.to_string(),
            f(exact),
            f(unres),
            f(low),
            f(obl),
            format!("{:.1}×", exact / best),
        ]);
    }
    report.note(format!(
        "speedup grows monotonically with n ({}), as Ω(knd) vs Õ(k√n) predicts",
        speedups
            .iter()
            .map(|s| format!("{s:.0}×"))
            .collect::<Vec<_>>()
            .join(" → ")
    ));
    report
}

/// A uniform-sampling strawman: same candidate budget as the bucketed
/// protocol, but candidates drawn uniformly from V instead of from the
/// bucket suspect sets.
fn uniform_sampling_attempt(rt: &mut Runtime, tuning: &Tuning) -> bool {
    let n = rt.n();
    let candidates = tuning.candidate_target(n) * 3; // generous: all buckets' worth
    let shared = rt.shared();
    for c in 0..candidates {
        let v = VertexId((shared.value(0xE9, c as u64) % n as u64) as u32);
        let est = approx_degree(rt, v, tuning);
        if est.value < 2.0 {
            continue;
        }
        let p = tuning.edge_sample_probability(n, est.value / 3.0);
        let cap = tuning.edge_sample_cap(est.value * 3.0, p);
        let tag = rt.fresh_tag();
        let sampled = rt.gather_edges(PlayerRequest::IncidentEdgesSampled { v, tag, p, cap });
        if sampled.len() < 2 {
            continue;
        }
        for resp in rt.broadcast(PlayerRequest::FindClosingTriangle { edges: sampled }) {
            if matches!(resp, Payload::Triangle(Some(_))) {
                return true;
            }
        }
    }
    false
}

/// E9 — ablation: why bucketing? On an instance whose triangles hide in a
/// small high-degree clique, uniform vertex sampling at the same budget
/// almost always misses; the bucket suspect sets walk straight to it.
pub fn e9_bucketing_ablation(scale: Scale) -> Report {
    let mut report = Report::new(
        "E9",
        "bucketing ablation (§3.3's motivating adversary)",
        "\"a uniformly random vertex is not always likely to be full — a small dense subgraph may contain all the triangles\"",
        &["n", "clique", "bucketed success", "uniform success"],
    );
    let tuning = Tuning::practical(0.25);
    let trials = scale.pick(5u64, 15);
    let k = 4;
    let cases: &[(usize, usize)] = scale.pick(
        &[(4000, 18)][..],
        &[(4000, 18), (16000, 18), (64000, 18)][..],
    );
    for &(n, clique) in cases {
        let g = clique_plus_path(n, clique);
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let parts = random_disjoint(&g, k, &mut rng);
        let tester = UnrestrictedTester::new(tuning);
        let (bucketed, uniform) = triad_comm::pool::Pool::current()
            .ordered_map(trials as usize, |s| {
                let seed = s as u64;
                let hit_bucketed = tester
                    .run(&g, &parts, seed)
                    .unwrap()
                    .outcome
                    .found_triangle();
                let mut rt = Runtime::local(
                    n,
                    parts.shares(),
                    SharedRandomness::new(seed),
                    CostModel::Coordinator,
                );
                let hit_uniform = uniform_sampling_attempt(&mut rt, &tuning);
                (hit_bucketed, hit_uniform)
            })
            .into_iter()
            .fold((0u64, 0u64), |(b, u), (hb, hu)| {
                (b + u64::from(hb), u + u64::from(hu))
            });
        report.row(vec![
            n.to_string(),
            clique.to_string(),
            format!("{bucketed}/{trials}"),
            format!("{uniform}/{trials}"),
        ]);
    }
    report.note(
        "the uniform strawman's hit rate decays like (candidates·clique/n); the bucketed \
         search is n-independent because the clique owns its degree bucket",
    );
    report
}

/// E10 — model variants: blackboard vs coordinator charging, duplicated
/// vs disjoint inputs (Thm 3.23 and the no-duplication corollaries).
pub fn e10_model_variants(scale: Scale) -> Report {
    let mut report = Report::new(
        "E10",
        "model variants: blackboard and duplication",
        "blackboard saves the k-factor on posted edges (Thm 3.23); no-duplication inputs save a k-factor on sim protocols (Cor. 3.25/3.27)",
        &["variant", "n", "k", "dup", "bits", "vs reference"],
    );
    let tuning = Tuning::practical(EPS);
    let trials = scale.pick(2u64, 5);
    let n = scale.pick(2000usize, 8000);
    let d = 8.0;
    let k = 8;
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let g = triad_graph::generators::far_graph(n, d, EPS, &mut rng).unwrap();
    let disjoint = random_disjoint(&g, k, &mut rng);
    let duplicated = with_duplication(&g, k, 0.5, &mut rng);

    let run_unrestricted = |parts: &triad_graph::partition::Partition, model: CostModel| {
        mean_over_seeds(trials, |s| {
            UnrestrictedTester::new(tuning)
                .with_cost_model(model)
                .run(&g, parts, s)
                .unwrap()
                .stats
                .total_bits
        })
    };
    let coord_dup = run_unrestricted(&duplicated, CostModel::Coordinator);
    let board_dup = run_unrestricted(&duplicated, CostModel::Blackboard);
    report.row(vec![
        "unrestricted, coordinator".into(),
        n.to_string(),
        k.to_string(),
        "50%".into(),
        f(coord_dup),
        "1.00 (ref)".into(),
    ]);
    report.row(vec![
        "unrestricted, blackboard".into(),
        n.to_string(),
        k.to_string(),
        "50%".into(),
        f(board_dup),
        f(board_dup / coord_dup),
    ]);

    let sim = |parts: &triad_graph::partition::Partition| {
        mean_over_seeds(trials, |s| {
            SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d })
                .run(&g, parts, s)
                .unwrap()
                .stats
                .total_bits
        })
    };
    let sim_dup = sim(&duplicated);
    let sim_dis = sim(&disjoint);
    report.row(vec![
        "AlgLow, duplicated".into(),
        n.to_string(),
        k.to_string(),
        "50%".into(),
        f(sim_dup),
        "1.00 (ref)".into(),
    ]);
    report.row(vec![
        "AlgLow, disjoint".into(),
        n.to_string(),
        k.to_string(),
        "0%".into(),
        f(sim_dis),
        f(sim_dis / sim_dup),
    ]);
    report.note("blackboard ≤ coordinator on every run; disjoint inputs cut the duplicated AlgLow bill by the duplication factor");
    report
}
