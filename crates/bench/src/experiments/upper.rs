//! E1–E4: the upper-bound rows of Table 1, measured.

use super::Scale;
use crate::fit::fit_power_law;
use crate::table::{f, Report};
use crate::workloads::{mean_over_seeds, planted_far};
use triad_comm::pool::Pool;
use triad_comm::{CostModel, Runtime, SharedRandomness, Tally};
use triad_protocols::{
    PreparedInput, SimProtocolKind, SimultaneousTester, Tuning, UnrestrictedTester,
};

const EPS: f64 = 0.2;

/// Per-seed trial sums `(total bits, secondary metric, successes)`,
/// computed on the configured pool in seed order.
fn trial_sums<F>(trials: u64, per_seed: F) -> (u64, u64, u64)
where
    F: Fn(u64) -> (u64, u64, bool) + Sync,
{
    Pool::current()
        .ordered_map(trials as usize, |s| per_seed(s as u64))
        .into_iter()
        .fold((0, 0, 0), |(t, m, c), (total, metric, hit)| {
            (t + total, m + metric, c + u64::from(hit))
        })
}

/// E1 — Table 1 row 1: the unrestricted tester's cost,
/// `Õ(k·(nd)^{1/4} + k²)`.
///
/// Total bits include the `k²·polylog` candidate-filtering floor, so the
/// table splits out the *edge-sampling phase* (the `k·(nd)^{1/4}` term)
/// and fits its exponent against `nd`, and separately sweeps `k` to show
/// the near-linear player dependence.
pub fn e1_unrestricted(scale: Scale) -> Report {
    let mut report = Report::new(
        "E1",
        "unrestricted tester (Alg. 6)",
        "Õ(k·(nd)^¼ + k²) bits, one-sided error (Thm 3.20 / Cor. 3.21)",
        &["n", "d", "k", "total bits", "edge-phase bits", "success"],
    );
    let tuning = Tuning::practical(EPS);
    let tester = UnrestrictedTester::new(tuning);
    let trials = scale.pick(2u64, 4);
    let ns: &[usize] = scale.pick(&[500, 2000][..], &[1000, 4000, 16000, 64000][..]);
    let d = 8.0;
    let k = 6;
    let mut nds = Vec::new();
    let mut edge_bits = Vec::new();
    for &n in ns {
        let w = planted_far(n, d, EPS, k, 7);
        let input = PreparedInput::new(&w.graph, &w.partition).expect("planted workload is valid");
        let (totals, edges, found) = trial_sums(trials, |seed| {
            // Prepared players + counters-only Tally: seeds only re-roll
            // randomness, and the label query needs no event log.
            let mut rt = Runtime::<Tally>::prepared_with(
                n,
                input.shared_players(),
                SharedRandomness::new(seed),
                CostModel::Coordinator,
            );
            let hit = tester.run_on(&mut rt).found_triangle();
            let edge_bits = rt.recorder().bits_for_label("incident_sampled")
                + rt.recorder().bits_for_label("close_triangle");
            (rt.stats().total_bits, edge_bits, hit)
        });
        let mean_total = totals as f64 / trials as f64;
        let mean_edges = edges as f64 / trials as f64;
        nds.push(n as f64 * d);
        edge_bits.push(mean_edges.max(1.0));
        report.row(vec![
            n.to_string(),
            f(d),
            k.to_string(),
            f(mean_total),
            f(mean_edges),
            format!("{found}/{trials}"),
        ]);
    }
    let fit = fit_power_law(&nds, &edge_bits);
    report.note(format!(
        "edge-phase bits ~ (nd)^{:.2} (r² = {:.2}); paper predicts exponent ≤ 0.25 \
         (protocol stops at the first full bucket, so the planted workload sits below the worst case)",
        fit.exponent, fit.r_squared
    ));
    // k sweep at fixed n.
    let n = scale.pick(1000, 4000);
    let mut ks = Vec::new();
    let mut bits = Vec::new();
    for k in [3usize, 6, 12, 24] {
        let w = planted_far(n, d, EPS, k, 9);
        let input = PreparedInput::new(&w.graph, &w.partition).expect("planted workload is valid");
        let mean = mean_over_seeds(trials, |s| {
            tester.run_prepared_tally(&input, s).stats.total_bits
        });
        ks.push(k as f64);
        bits.push(mean);
    }
    let kfit = fit_power_law(&ks, &bits);
    report.note(format!(
        "total bits ~ k^{:.2} at n = {n} (r² = {:.2}); paper: between k¹ (sampling term) and k² (filter term)",
        kfit.exponent, kfit.r_squared
    ));
    report
}

/// E2 — Table 1 row 2, `d = O(√n)`: AlgLow at `Õ(k·√n)`.
pub fn e2_sim_low(scale: Scale) -> Report {
    let mut report = Report::new(
        "E2",
        "simultaneous tester, low degree (Alg. 8)",
        "Õ(k·√n) bits for d = O(√n), one round (Thm 3.26)",
        &["n", "d", "k", "total bits", "max player bits", "success"],
    );
    let tuning = Tuning::practical(EPS);
    let trials = scale.pick(3u64, 8);
    let ns: &[usize] = scale.pick(&[500, 4000][..], &[1000, 4000, 16000, 64000, 256000][..]);
    let d = 8.0;
    let k = 6;
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &n in ns {
        let w = planted_far(n, d, EPS, k, 3);
        let input = PreparedInput::new(&w.graph, &w.partition).expect("planted workload is valid");
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: d });
        let (totals, maxes, found) = trial_sums(trials, |seed| {
            let run = tester.run_prepared_tally(&input, seed).unwrap();
            (
                run.stats.total_bits,
                run.stats.max_player_sent_bits,
                run.outcome.found_triangle(),
            )
        });
        xs.push(n as f64);
        ys.push(totals as f64 / trials as f64);
        report.row(vec![
            n.to_string(),
            f(d),
            k.to_string(),
            f(totals as f64 / trials as f64),
            f(maxes as f64 / trials as f64),
            format!("{found}/{trials}"),
        ]);
    }
    let fit = fit_power_law(&xs, &ys);
    report.note(format!(
        "total bits ~ n^{:.2} (r² = {:.2}); paper predicts exponent 0.5 (√n, up to log factors)",
        fit.exponent, fit.r_squared
    ));
    report
}

/// E3 — Table 1 row 2, `d = Ω(√n)`: AlgHigh at `Õ(k·(nd)^{1/3})`.
pub fn e3_sim_high(scale: Scale) -> Report {
    let mut report = Report::new(
        "E3",
        "simultaneous tester, high degree (Alg. 7)",
        "Õ(k·(nd)^⅓) bits for d = Ω(√n), one round (Thm 3.24)",
        &["n", "d", "nd", "total bits", "success"],
    );
    let tuning = Tuning::practical(EPS);
    let trials = scale.pick(3u64, 8);
    let n = scale.pick(1024usize, 4096);
    let k = 6;
    let exps: &[f64] = &[0.5, 0.6, 0.7, 0.8];
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for &c in exps {
        let d = (n as f64).powf(c);
        let w = planted_far(n, d, EPS, k, 5);
        let input = PreparedInput::new(&w.graph, &w.partition).expect("planted workload is valid");
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::High { avg_degree: w.d });
        let (totals, _, found) = trial_sums(trials, |seed| {
            let run = tester.run_prepared_tally(&input, seed).unwrap();
            (run.stats.total_bits, 0, run.outcome.found_triangle())
        });
        let mean = totals as f64 / trials as f64;
        xs.push(n as f64 * w.d);
        ys.push(mean);
        report.row(vec![
            n.to_string(),
            f(w.d),
            f(n as f64 * w.d),
            f(mean),
            format!("{found}/{trials}"),
        ]);
    }
    let fit = fit_power_law(&xs, &ys);
    report.note(format!(
        "total bits ~ (nd)^{:.2} (r² = {:.2}); paper predicts exponent 1/3 ≈ 0.33",
        fit.exponent, fit.r_squared
    ));
    report
}

/// E4 — §3.4.3: the degree-oblivious protocol tracks the degree-aware one
/// within polylog factors, on both sides of the √n threshold.
pub fn e4_oblivious(scale: Scale) -> Report {
    let mut report = Report::new(
        "E4",
        "degree-oblivious simultaneous tester (Alg. 11)",
        "matches the degree-aware cost up to polylog(n, k) factors, without knowing d (Thm 3.32)",
        &[
            "n",
            "d",
            "aware bits",
            "oblivious bits",
            "ratio",
            "obl. success",
        ],
    );
    let tuning = Tuning::practical(EPS);
    let trials = scale.pick(3u64, 8);
    let k = 6;
    let cases: &[(usize, f64)] = scale.pick(
        &[(2000, 8.0), (1024, 64.0)][..],
        &[
            (4000, 8.0),
            (16000, 8.0),
            (64000, 8.0),
            (4096, 128.0),
            (16384, 256.0),
        ][..],
    );
    for &(n, d) in cases {
        let w = planted_far(n, d, EPS, k, 13);
        let aware_kind = if d * d >= n as f64 {
            SimProtocolKind::High { avg_degree: w.d }
        } else {
            SimProtocolKind::Low { avg_degree: w.d }
        };
        let aware = SimultaneousTester::new(tuning, aware_kind);
        let obl = SimultaneousTester::new(tuning, SimProtocolKind::Oblivious);
        let input = PreparedInput::new(&w.graph, &w.partition).expect("planted workload is valid");
        let aware_bits = mean_over_seeds(trials, |s| {
            aware
                .run_prepared_tally(&input, s)
                .unwrap()
                .stats
                .total_bits
        });
        let (obl_bits, _, found) = trial_sums(trials, |seed| {
            let run = obl.run_prepared_tally(&input, seed).unwrap();
            (run.stats.total_bits, 0, run.outcome.found_triangle())
        });
        let obl_mean = obl_bits as f64 / trials as f64;
        report.row(vec![
            n.to_string(),
            f(d),
            f(aware_bits),
            f(obl_mean),
            f(obl_mean / aware_bits),
            format!("{found}/{trials}"),
        ]);
    }
    report.note(
        "the oblivious/aware ratio stays bounded by a polylog factor across n and across \
         the low/high-degree regimes — the protocol never learns d",
    );
    report
}
