//! E5, E6, E11: the lower-bound rows of Table 1, probed empirically.

use super::Scale;
use crate::fit::fit_power_law;
use crate::table::{f, Report};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_graph::generators::TripartiteMu;
use triad_lowerbounds::{adversary, bhm, mu};

/// E5 — Table 1 rows 3–5: the triangle-edge task on μ. Budget-limited
/// protocol families collapse below their thresholds; every threshold
/// sits above the paper's floor.
pub fn e5_mu_budget_sweeps(scale: Scale) -> Report {
    let mut report = Report::new(
        "E5",
        "triangle-edge finding on the hard distribution μ",
        "Ω((nd)^⅓) bits simultaneous / Ω((nd)^⅙) one-way per player, d = Θ(√n) (Thm 4.1)",
        &[
            "part n",
            "budget (edges)",
            "uniform",
            "targeted",
            "one-way",
            "mean bits (1-way)",
        ],
    );
    let gamma = 1.2;
    let trials = scale.pick(10usize, 25);
    let parts: &[usize] = scale.pick(&[48][..], &[64, 128, 256][..]);
    let mut rng = ChaCha8Rng::seed_from_u64(31);
    for &part in parts {
        let dist = TripartiteMu::new(part, gamma);
        let budgets: Vec<usize> = [1usize, 4, 16, 64, 256, 1024]
            .iter()
            .map(|b| *b * part / 64)
            .map(|b| b.max(1))
            .collect();
        let uni = adversary::sweep(
            &dist,
            &budgets,
            trials,
            &mut rng,
            adversary::uniform_sketch_attempt,
        );
        let tgt = adversary::sweep(
            &dist,
            &budgets,
            trials,
            &mut rng,
            adversary::targeted_sketch_attempt,
        );
        let ow = adversary::sweep(
            &dist,
            &budgets,
            trials,
            &mut rng,
            adversary::one_way_vee_attempt,
        );
        for i in 0..budgets.len() {
            report.row(vec![
                part.to_string(),
                budgets[i].to_string(),
                f(uni[i].success_rate),
                f(tgt[i].success_rate),
                f(ow[i].success_rate),
                f(ow[i].mean_bits),
            ]);
        }
        let floor = (3.0 * part as f64 * 2.0 * gamma * (part as f64).sqrt()).cbrt();
        report.note(format!(
            "part n = {part}: one-way 50% threshold at budget {:?} edges; simultaneous bound floor ≈ {:.0} edges",
            adversary::threshold_budget(&ow, 0.5),
            floor
        ));
    }
    report.note(
        "interaction helps (one-way ≥ targeted ≥ uniform at every budget) and no family \
         crosses below the proven floor — the empirical face of the §4.2 bounds",
    );
    // Lemma 4.17: extend the hardness to lower average degrees by
    // embedding a μ core into a padded vertex set. The padded instance's
    // (n·d')^{1/6}/(n·d')^{1/3} floors equal the core's by construction;
    // the attempts run on the core's blocks verbatim (padding adds only
    // isolated vertices).
    let n_padded = scale.pick(2000usize, 6000);
    for &d_target in &[2.0f64, 4.0] {
        let q = triad_lowerbounds::embedding::core_part_size(n_padded, d_target, gamma);
        if 3 * q > n_padded {
            continue;
        }
        let core_dist = TripartiteMu::new(q, gamma);
        let budgets = [q / 8, q / 2, 2 * q];
        let ow = adversary::sweep(
            &core_dist,
            &budgets,
            trials,
            &mut rng,
            adversary::one_way_vee_attempt,
        );
        let floor = (n_padded as f64 * d_target).powf(1.0 / 3.0);
        report.note(format!(
            "Lemma 4.17 embedding: padded (n = {n_padded}, d' = {d_target}) ⇒ core part q = {q}; \
             one-way success at budgets {:?} = {:?}; padded floor (nd')^⅓ ≈ {:.0} edges",
            budgets,
            ow.iter().map(|p| p.success_rate).collect::<Vec<_>>(),
            floor
        ));
    }
    report
}

/// E6 — Table 1 row 6: Boolean Matching ⇒ Ω(√n) one-way for d = Θ(1).
pub fn e6_boolean_matching(scale: Scale) -> Report {
    let mut report = Report::new(
        "E6",
        "Boolean-Matching reduction, constant degree",
        "Ω(√n) one-way bits for testing triangle-freeness at d = Θ(1) (Thm 4.16)",
        &[
            "pairs n",
            "revealed",
            "informed (meas)",
            "informed (pred)",
            "success",
        ],
    );
    let trials = scale.pick(40usize, 150);
    let ns: &[usize] = scale.pick(&[128, 512][..], &[128, 512, 2048, 8192][..]);
    let mut rng = ChaCha8Rng::seed_from_u64(37);
    let mut threshold_ns = Vec::new();
    let mut thresholds = Vec::new();
    for &n in ns {
        let sqrt_n = (n as f64).sqrt();
        let budgets: Vec<usize> = [0.5, 1.0, 2.0, 4.0, 8.0]
            .iter()
            .map(|m| (m * sqrt_n).round() as usize)
            .collect();
        let pts = bhm::sweep(n, &budgets, trials, &mut rng);
        for p in &pts {
            report.row(vec![
                n.to_string(),
                p.budget.to_string(),
                f(p.informed_rate),
                f(bhm::predicted_informed_rate(n, p.budget)),
                f(p.success_rate),
            ]);
        }
        if let Some(t) = pts.iter().find(|p| p.informed_rate >= 0.5) {
            threshold_ns.push(n as f64);
            thresholds.push(t.budget as f64);
        }
    }
    if threshold_ns.len() >= 2 {
        let fit = fit_power_law(&threshold_ns, &thresholds);
        report.note(format!(
            "50%-informed threshold ~ n^{:.2} (r² = {:.2}); the birthday paradox predicts \
             exponent 0.5 — the Ω(√n) bound is tight for this family",
            fit.exponent, fit.r_squared
        ));
    }
    report.note(
        "the reduction graph dichotomy (AllZero ⇒ n disjoint triangles, AllOne ⇒ \
         triangle-free) is property-tested in tests/properties.rs over random instances",
    );
    report
}

/// E11 — Lemma 4.5: a μ sample is Ω(1)-far with probability ≥ 1/2.
pub fn e11_mu_farness(scale: Scale) -> Report {
    let mut report = Report::new(
        "E11",
        "farness of the hard distribution μ",
        "for small γ, a μ sample is Ω(1)-far from triangle-free w.p. ≥ 1/2 (Lemma 4.5)",
        &[
            "part n",
            "γ",
            "ε tested",
            "certified-far fraction",
            "mean packing",
            "mean edges",
        ],
    );
    let trials = scale.pick(10usize, 40);
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let cases: &[(usize, f64)] = scale.pick(
        &[(64, 1.2)][..],
        &[(64, 0.6), (64, 1.2), (128, 1.2), (256, 1.2)][..],
    );
    for &(part, gamma) in cases {
        let dist = TripartiteMu::new(part, gamma);
        let eps = 0.05;
        let rep = mu::verify_farness(&dist, eps, trials, &mut rng);
        report.row(vec![
            part.to_string(),
            f(gamma),
            f(eps),
            f(rep.far_fraction),
            f(rep.mean_packing),
            f(rep.mean_edges),
        ]);
    }
    report.note("certified-far fraction ≥ 1/2 throughout, matching the lemma (the certificate is one-sided: greedy packing only under-counts)");
    report
}
