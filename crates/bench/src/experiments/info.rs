//! E12 — exact information accounting for capped messages (§4.1/§4.2).

use super::Scale;
use crate::table::{f, Report};
use triad_lowerbounds::info::{exact_information, lemma_4_3_slack};

/// E12 — the inequality chain `Σ_e I(X_e; M) ≤ I(X; M) = H(M) ≤ |M|`
/// computed exactly (by enumeration) for capped-sketch message functions
/// over iid edge indicators, plus Lemma 4.3 verified on a grid.
pub fn e12_information_accounting(scale: Scale) -> Report {
    let mut report = Report::new(
        "E12",
        "information accounting of capped sketches",
        "super-additivity: |Π| ≥ I(Π;E) ≥ Σ_e I(Π;X_e) (Lemma 4.2/4.6); D(q‖p) ≥ q−2p for p<1/2 (Lemma 4.3)",
        &["message fn", "L", "p", "H(M)", "Σ I(X_i;M)", "slack"],
    );
    let len = scale.pick(10usize, 14);
    let p = 0.2;
    // "Send the indices of the first ≤ cap present edges" — the shape of
    // every capped sketch in the paper's protocols.
    for cap in [1usize, 2, 4] {
        let rep = exact_information(len, p, move |x| {
            let mut out: Vec<u8> = Vec::new();
            for (i, b) in x.iter().enumerate() {
                if *b {
                    out.push(i as u8);
                    if out.len() >= cap {
                        break;
                    }
                }
            }
            out
        });
        let sum: f64 = rep.per_bit.iter().sum();
        report.row(vec![
            format!("first-{cap} sketch"),
            len.to_string(),
            f(p),
            f(rep.message_entropy),
            f(sum),
            f(rep.superadditivity_slack()),
        ]);
    }
    // The REAL AlgLow message function, analyzed exactly: a player whose
    // input is drawn as iid Bernoulli indicators over the L potential
    // edges of a tiny vertex set. Lemma 4.6's chain must hold for the
    // genuine protocol, not just toy sketches.
    {
        use triad_comm::{PlayerState, SharedRandomness};
        use triad_graph::{Edge, VertexId};
        let n_small = 6usize;
        let pairs: Vec<Edge> = (0..n_small as u32)
            .flat_map(|a| {
                ((a + 1)..n_small as u32).map(move |b| Edge::new(VertexId(a), VertexId(b)))
            })
            .take(len)
            .collect();
        let shared = SharedRandomness::new(99);
        let alg = triad_protocols::simultaneous::AlgLow::new(
            triad_protocols::Tuning::practical(0.3),
            2.0,
        );
        let pairs_for_fn = pairs.clone();
        let rep = exact_information(pairs.len(), p, move |x| {
            let edges: Vec<Edge> = pairs_for_fn
                .iter()
                .zip(x)
                .filter(|(_, present)| **present)
                .map(|(e, _)| *e)
                .collect();
            let player = PlayerState::new(0, n_small, &edges);
            use triad_comm::SimultaneousProtocol;
            let mut out: Vec<Edge> = alg.message(&player, &shared).edges().collect();
            out.sort_unstable();
            out
        });
        let sum: f64 = rep.per_bit.iter().sum();
        report.row(vec![
            "AlgLow message".into(),
            pairs.len().to_string(),
            f(p),
            f(rep.message_entropy),
            f(sum),
            f(rep.superadditivity_slack()),
        ]);
    }

    // Parity: the canonical strict-superadditivity case.
    let rep = exact_information(len, 0.5, |x| x.iter().filter(|b| **b).count() % 2 == 0);
    let sum: f64 = rep.per_bit.iter().sum();
    report.row(vec![
        "parity".into(),
        len.to_string(),
        f(0.5),
        f(rep.message_entropy),
        f(sum),
        f(rep.superadditivity_slack()),
    ]);
    report.note("slack ≥ 0 in every row: super-additivity verified exactly, strict for parity");

    let mut min_slack = f64::INFINITY;
    for qi in 1..100 {
        for pi in 1..50 {
            min_slack = min_slack.min(lemma_4_3_slack(qi as f64 / 100.0, pi as f64 / 100.0));
        }
    }
    report.note(format!(
        "Lemma 4.3 grid check (q, p ∈ (0,1)×(0,½), step 0.01): min D(q‖p) − (q−2p) = {min_slack:.3} ≥ 0"
    ));
    report
}
