//! Scheduler saturation microbench — the `sessions` row of
//! `BENCH_runtime.json` and the engine behind `triad bench --sessions`.
//!
//! The workload is many independent query sessions (triangle-free
//! bipartite inputs, so no early exit shortens any of them) submitted
//! to one [`SessionBatch`] and driven over worker pools of 1, 2, 4 and
//! 8 threads. The measured quantity is throughput — **queries per
//! second** — at each worker count; the results themselves (verdicts,
//! stats, tally totals) are asserted identical across every worker
//! count while timing, so a throughput number can never be reported
//! for a schedule that changed an answer. Sessions cycle over a small
//! set of distinct inputs, so the run also exercises the shared
//! prepared-input cache (hits are asserted). Wall-clock numbers are
//! machine-dependent — not byte-diffable; see `docs/RUNTIME.md`
//! ("Sessions and scheduling").

use crate::experiments::Scale;
use crate::runtime::bipartite_workload;
use std::time::Instant;
use triad_comm::{Pool, Recorder};
use triad_protocols::session::{SessionBatch, SessionSpec, SessionTester};
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};

/// The worker counts every saturation sweep measures.
pub const SESSION_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// A measured session-throughput sweep: queries/sec at each worker
/// count of [`SESSION_WORKER_COUNTS`], plus the workload geometry.
#[derive(Debug, Clone)]
pub struct SessionSaturation {
    /// Number of sessions in the batch.
    pub sessions: usize,
    /// Amplification repetitions per session (all run: the inputs are
    /// triangle-free).
    pub reps: u32,
    /// Distinct (graph, partition) inputs the sessions cycle over.
    pub distinct_inputs: usize,
    /// Vertices per input graph.
    pub vertices: usize,
    /// Edges of the first input graph (all are generated alike).
    pub edges: usize,
    /// Players per session.
    pub players: usize,
    /// Queries/sec at each worker count, aligned with
    /// [`SESSION_WORKER_COUNTS`].
    pub qps: [f64; 4],
    /// Workers actually used at each sweep point: the requested count
    /// clamped to the machine's available parallelism
    /// ([`Pool::clamped`]). Oversubscribing a CPU-bound scoped pool
    /// only adds context-switch overhead — on a single-core runner the
    /// old unclamped 8-worker pool measured *slower* than 1 worker —
    /// so the sweep never runs more workers than cores and records
    /// what it ran.
    pub effective_workers: [usize; 4],
    /// Total bits across all sessions (agreed on by every worker
    /// count — asserted while timing).
    pub total_bits: u64,
    /// Prepared-input cache hits of one batch run
    /// (`sessions - distinct_inputs`).
    pub cache_hits: usize,
}

impl SessionSaturation {
    /// Throughput at 8 workers over throughput at 1 worker.
    pub fn saturation_speedup(&self) -> f64 {
        self.qps[3] / self.qps[0].max(1e-9)
    }

    /// The row's JSON object (`"protocol":"scheduler-sessions"` keeps
    /// it greppable next to the per-protocol timing rows).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str("\"protocol\":\"scheduler-sessions\",");
        s.push_str(&format!("\"sessions\":{},", self.sessions));
        s.push_str(&format!("\"repetitions\":{},", self.reps));
        s.push_str(&format!("\"distinct_inputs\":{},", self.distinct_inputs));
        s.push_str(&format!("\"vertices\":{},", self.vertices));
        s.push_str(&format!("\"edges\":{},", self.edges));
        s.push_str(&format!("\"players\":{},", self.players));
        for ((w, qps), eff) in SESSION_WORKER_COUNTS
            .iter()
            .zip(self.qps)
            .zip(self.effective_workers)
        {
            s.push_str(&format!("\"qps_{w}\":{qps:.1},"));
            s.push_str(&format!("\"effective_workers_{w}\":{eff},"));
        }
        s.push_str(&format!("\"total_bits\":{},", self.total_bits));
        s.push_str(&format!("\"cache_hits\":{},", self.cache_hits));
        s.push_str(&format!(
            "\"saturation_speedup\":{:.3}",
            self.saturation_speedup()
        ));
        s.push('}');
        s
    }
}

/// A comparable digest of one session's result: verdict, bits, and the
/// stats triple — everything the equality assertion needs without
/// holding the tallies alive.
type SessionDigest = (bool, u64, u64, u64, u64);

fn digest(results: &triad_protocols::SessionResults) -> Vec<SessionDigest> {
    results
        .iter()
        .map(|r| {
            let run = r.as_ref().expect("saturation workload is valid");
            (
                run.outcome.found_triangle(),
                run.transcript.total_bits().get(),
                run.stats.total_bits,
                run.stats.messages,
                run.stats.rounds,
            )
        })
        .collect()
}

/// Runs the saturation sweep: `sessions` sessions over
/// [`SESSION_WORKER_COUNTS`] worker pools, returning queries/sec per
/// worker count.
///
/// # Panics
///
/// Panics if any worker count produces different results than the
/// single-worker schedule — a scheduler determinism bug, not a
/// measurement problem.
pub fn session_saturation(scale: Scale, sessions: usize) -> SessionSaturation {
    let sessions = sessions.max(1);
    let (n, d, k) = scale.pick((400, 6.0, 4), (1000, 8.0, 4));
    let reps = scale.pick(2, 4);
    let distinct = 3.min(sessions);
    let inputs: Vec<_> = (0..distinct)
        .map(|i| bipartite_workload(n, d, k, 7 + i as u64))
        .collect();
    let tester = SessionTester::Simultaneous(SimultaneousTester::new(
        Tuning::practical(0.2),
        SimProtocolKind::Low { avg_degree: d },
    ));

    let mut batch = SessionBatch::new();
    for s in 0..sessions {
        let (g, parts) = &inputs[s % distinct];
        batch.submit(SessionSpec {
            graph: g,
            partition: parts,
            tester: tester.clone(),
            seed: 1000 + s as u64,
            reps,
        });
    }

    let mut qps = [0.0f64; 4];
    let mut effective_workers = [1usize; 4];
    let mut reference: Option<Vec<SessionDigest>> = None;
    let mut cache_hits = 0;
    for (i, &workers) in SESSION_WORKER_COUNTS.iter().enumerate() {
        // Clamped to available parallelism: an oversubscribed pool
        // measures scheduler thrash, not scheduler throughput (the
        // results are identical either way — only wall-clock differs).
        let pool = Pool::clamped(workers);
        effective_workers[i] = pool.threads();
        let start = Instant::now();
        let results = batch.run(&pool);
        let secs = start.elapsed().as_secs_f64();
        qps[i] = sessions as f64 / secs.max(1e-9);
        cache_hits = results.cache_hits;
        assert_eq!(results.cache_misses, distinct, "one build per input");
        let d = digest(&results);
        match &reference {
            Some(r) => assert_eq!(r, &d, "results diverged at {workers} workers"),
            None => reference = Some(d),
        }
    }
    let reference = reference.expect("at least one worker count ran");
    SessionSaturation {
        sessions,
        reps,
        distinct_inputs: distinct,
        vertices: n,
        edges: inputs[0].0.edge_count(),
        players: k,
        qps,
        effective_workers,
        total_bits: reference.iter().map(|d| d.2).sum(),
        cache_hits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_sweep_runs_and_agrees() {
        let s = session_saturation(Scale::Quick, 8);
        assert_eq!(s.sessions, 8);
        assert_eq!(s.distinct_inputs, 3);
        assert_eq!(s.cache_hits, 5);
        assert!(s.total_bits > 0);
        assert!(s.qps.iter().all(|&q| q > 0.0));
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        for (req, eff) in SESSION_WORKER_COUNTS.iter().zip(s.effective_workers) {
            assert_eq!(eff, (*req).min(hw), "sweep pools must be clamped");
        }
        let json = s.to_json();
        assert!(json.contains("\"protocol\":\"scheduler-sessions\""));
        for w in SESSION_WORKER_COUNTS {
            assert!(json.contains(&format!("\"qps_{w}\":")), "{json}");
            assert!(
                json.contains(&format!("\"effective_workers_{w}\":")),
                "{json}"
            );
        }
    }

    #[test]
    fn tiny_batches_are_clamped_sanely() {
        let s = session_saturation(Scale::Quick, 1);
        assert_eq!(s.sessions, 1);
        assert_eq!(s.distinct_inputs, 1);
        assert_eq!(s.cache_hits, 0);
    }
}
