//! Standard workloads for the experiments.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_graph::generators::{dense_core, far_graph, DenseCore};
use triad_graph::partition::{random_disjoint, Partition};
use triad_graph::Graph;

/// A graph + partition instance with its parameters.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Vertex count.
    pub n: usize,
    /// Target average degree.
    pub d: f64,
    /// Number of players.
    pub k: usize,
    /// The input graph (ε-far from triangle-free by construction).
    pub graph: Graph,
    /// The players' shares.
    pub partition: Partition,
}

/// A certified ε-far planted workload with a disjoint random partition.
pub fn planted_far(n: usize, d: f64, epsilon: f64, k: usize, seed: u64) -> Workload {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = far_graph(n, d, epsilon, &mut rng).expect("valid far-graph parameters");
    let partition = random_disjoint(&graph, k, &mut rng);
    Workload {
        n,
        d: graph.average_degree(),
        k,
        graph,
        partition,
    }
}

/// The §3.4.2 dense-core adversarial workload.
pub fn dense_core_workload(n: usize, hubs: usize, k: usize, seed: u64) -> (DenseCore, Workload) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let dc = dense_core(n, hubs, &mut rng).expect("valid dense-core parameters");
    let graph = dc.graph().clone();
    let partition = random_disjoint(&graph, k, &mut rng);
    let d = graph.average_degree();
    (
        dc,
        Workload {
            n,
            d,
            k,
            graph,
            partition,
        },
    )
}

/// The E9 ablation instance: all triangles confined to a small
/// high-degree clique on the first `clique` vertices, the remainder a
/// triangle-free path — the "small dense subgraph contains all the
/// triangles" adversary of §3.3's narrative.
pub fn clique_plus_path(n: usize, clique: usize) -> Graph {
    use triad_graph::{Edge, GraphBuilder, VertexId};
    let mut b = GraphBuilder::new(n);
    for a in 0..clique as u32 {
        for c in (a + 1)..clique as u32 {
            b.add_edge(Edge::new(VertexId(a), VertexId(c)));
        }
    }
    for i in clique as u32..(n as u32 - 1) {
        b.add_edge(Edge::new(VertexId(i), VertexId(i + 1)));
    }
    b.build()
}

/// Mean over `trials` seeds of a per-run u64 metric.
///
/// Seeds are sharded across the configured thread pool
/// ([`triad_comm::pool::Pool::current`]); per-seed metrics are summed in
/// seed order, so the result is identical at any thread count.
pub fn mean_over_seeds<F: Fn(u64) -> u64 + Sync>(trials: u64, f: F) -> f64 {
    mean_over_seeds_with(&triad_comm::pool::Pool::current(), trials, f)
}

/// [`mean_over_seeds`] on an explicit pool.
pub fn mean_over_seeds_with<F: Fn(u64) -> u64 + Sync>(
    pool: &triad_comm::pool::Pool,
    trials: u64,
    f: F,
) -> f64 {
    pool.ordered_map(trials as usize, |s| f(s as u64))
        .into_iter()
        .sum::<u64>() as f64
        / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_workload_is_consistent() {
        let w = planted_far(300, 6.0, 0.2, 4, 1);
        assert_eq!(w.graph.vertex_count(), 300);
        assert_eq!(w.partition.players(), 4);
        assert!(w.partition.covers(&w.graph));
        assert!((w.d - 6.0).abs() < 1.5);
    }

    #[test]
    fn dense_core_workload_has_hubs() {
        let (dc, w) = dense_core_workload(200, 3, 4, 2);
        assert_eq!(dc.hubs().len(), 3);
        assert!(w.partition.covers(&w.graph));
    }

    #[test]
    fn mean_over_seeds_averages() {
        assert_eq!(mean_over_seeds(4, |s| s), 1.5);
    }

    #[test]
    fn mean_over_seeds_is_thread_count_invariant() {
        use triad_comm::pool::Pool;
        let metric = |s: u64| s.wrapping_mul(0x9E37_79B9).rotate_left(7);
        let serial = mean_over_seeds_with(&Pool::serial(), 33, metric);
        for threads in [2, 8] {
            let par = mean_over_seeds_with(&Pool::new(threads), 33, metric);
            assert_eq!(par.to_bits(), serial.to_bits(), "threads = {threads}");
        }
    }
}
