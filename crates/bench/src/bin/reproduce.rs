//! Regenerates every experiment (E1–E17) and prints its table.
//!
//! ```text
//! reproduce [--quick] [--markdown] [--threads N] [--json-dir DIR]
//!           [--graph-file FILE.csr] [e1 e5 ...]
//! ```
//!
//! With no experiment ids, all seventeen run in order. `--quick` shrinks
//! the sweeps (seconds instead of minutes); `--markdown` emits the
//! EXPERIMENTS.md table format; `--threads N` sizes the deterministic
//! worker pool (default: `TRIAD_THREADS` or the machine's parallelism —
//! output is byte-identical at every thread count, see
//! `docs/PARALLELISM.md`); `--json-dir DIR` additionally writes the
//! standard cost suite as `DIR/BENCH_costs.json` (the schema of
//! `docs/OBSERVABILITY.md`), diffable across revisions, plus the
//! naive-vs-kernel triangle timings as `DIR/BENCH_kernels.json`
//! (wall-clock, machine-dependent — see `docs/KERNELS.md`), plus the
//! amplified-sweep recorder/prepared-input timings as
//! `DIR/BENCH_runtime.json` (see `docs/RUNTIME.md`), plus the
//! deterministic fault-injection matrix as `DIR/BENCH_chaos.json`
//! (byte-diffable — see `docs/FAULTS.md`).
//!
//! `--graph-file FILE.csr` (with `--json-dir`) appends an out-of-core
//! row to `BENCH_kernels.json`: the forward and pool-parallel kernels
//! plus one prepared protocol run timed over the mapped binary CSR
//! container of `docs/IO.md`, with peak-RSS / owned-allocation evidence
//! that the run stayed on borrowed slices. Write the container first
//! with `triad gen … --format csr` (see `EXPERIMENTS.md`).

use triad_bench::chaos::{chaos_suite, reconnect_suite, write_chaos_json};
use triad_bench::experiments::{all, Scale};
use triad_bench::kernels::{kernel_suite, write_kernels_json};
use triad_bench::report::{standard_suite, write_bench_json};
use triad_bench::runtime::{runtime_suite, write_runtime_json};
use triad_bench::sessions::session_saturation;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let value_of = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} needs an argument");
                std::process::exit(1);
            })
        })
    };
    let json_dir = value_of("--json-dir");
    if let Some(raw) = value_of("--threads") {
        match raw.parse::<usize>() {
            Ok(n) if n > 0 => triad_comm::pool::set_threads(n),
            _ => {
                eprintln!("--threads needs a positive integer, got `{raw}`");
                std::process::exit(1);
            }
        }
    }
    let graph_file = value_of("--graph-file");
    let value_flags = ["--json-dir", "--threads", "--graph-file"];
    let wanted: Vec<String> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !a.starts_with("--")
                && !args
                    .get(i.wrapping_sub(1))
                    .is_some_and(|prev| value_flags.contains(&prev.as_str()))
        })
        .map(|(_, a)| a.to_lowercase())
        .collect();
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let registry = all();
    let mut ran = 0;
    for (id, run) in &registry {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let started = std::time::Instant::now();
        let report = run(scale);
        if markdown {
            print!("{}", report.to_markdown());
        } else {
            print!("{}", report.to_text());
            println!("  [{:.1}s]\n", started.elapsed().as_secs_f64());
        }
        ran += 1;
    }
    if let Some(dir) = json_dir {
        let reports = standard_suite(scale);
        match write_bench_json(std::path::Path::new(&dir), "costs", &reports) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_costs.json to {dir}: {e}");
                std::process::exit(1);
            }
        }
        let mut timings = kernel_suite(scale);
        if let Some(path) = &graph_file {
            let path = std::path::Path::new(path);
            let store = match triad_graph::CsrStore::open(path) {
                Ok(store) => store,
                Err(e) => {
                    eprintln!("failed to open --graph-file {}: {e}", path.display());
                    std::process::exit(1);
                }
            };
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("graph");
            timings.push(triad_bench::kernels::time_store_workload(
                &format!("store-{stem}"),
                &store,
                1,
                &triad_comm::pool::Pool::current(),
            ));
        }
        match write_kernels_json(std::path::Path::new(&dir), &timings) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_kernels.json to {dir}: {e}");
                std::process::exit(1);
            }
        }
        let sweeps = runtime_suite(scale);
        let sessions = session_saturation(scale, if quick { 8 } else { 64 });
        match write_runtime_json(std::path::Path::new(&dir), &sweeps, Some(&sessions)) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_runtime.json to {dir}: {e}");
                std::process::exit(1);
            }
        }
        let cells = chaos_suite(scale);
        let reconnect = reconnect_suite(scale);
        match write_chaos_json(std::path::Path::new(&dir), &cells, &reconnect) {
            Ok(path) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write BENCH_chaos.json to {dir}: {e}");
                std::process::exit(1);
            }
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s) {wanted:?}; available: e1..e17");
        std::process::exit(1);
    }
}
