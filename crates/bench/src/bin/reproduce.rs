//! Regenerates every experiment (E1–E12) and prints its table.
//!
//! ```text
//! reproduce [--quick] [--markdown] [e1 e5 ...]
//! ```
//!
//! With no experiment ids, all twelve run in order. `--quick` shrinks the
//! sweeps (seconds instead of minutes); `--markdown` emits the
//! EXPERIMENTS.md table format.

use triad_bench::experiments::{all, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let markdown = args.iter().any(|a| a == "--markdown");
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let registry = all();
    let mut ran = 0;
    for (id, run) in &registry {
        if !wanted.is_empty() && !wanted.iter().any(|w| w == id) {
            continue;
        }
        let started = std::time::Instant::now();
        let report = run(scale);
        if markdown {
            print!("{}", report.to_markdown());
        } else {
            print!("{}", report.to_text());
            println!("  [{:.1}s]\n", started.elapsed().as_secs_f64());
        }
        ran += 1;
    }
    if ran == 0 {
        eprintln!("unknown experiment id(s) {wanted:?}; available: e1..e12");
        std::process::exit(1);
    }
}
