//! Log-log regression: estimate the exponent `b` in `y ≈ a·x^b`.

/// Result of a power-law fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// The fitted exponent `b`.
    pub exponent: f64,
    /// The fitted prefactor `a`.
    pub prefactor: f64,
    /// Coefficient of determination in log space.
    pub r_squared: f64,
}

/// Least-squares fit of `ln y = ln a + b·ln x`.
///
/// # Panics
///
/// Panics unless `xs` and `ys` have equal length ≥ 2 and all values are
/// positive.
pub fn fit_power_law(xs: &[f64], ys: &[f64]) -> PowerFit {
    assert_eq!(xs.len(), ys.len(), "mismatched sample lengths");
    assert!(xs.len() >= 2, "need at least two samples");
    assert!(
        xs.iter().chain(ys).all(|v| *v > 0.0),
        "power-law fit needs positive data"
    );
    assert!(
        xs.iter()
            .any(|x| (x - xs[0]).abs() > f64::EPSILON * xs[0].abs()),
        "power-law fit needs at least two distinct x values"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let sxy: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let sxx: f64 = lx.iter().map(|x| (x - mx) * (x - mx)).sum();
    let b = sxy / sxx;
    let a = (my - b * mx).exp();
    let ss_tot: f64 = ly.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = lx
        .iter()
        .zip(&ly)
        .map(|(x, y)| {
            let pred = a.ln() + b * x;
            (y - pred) * (y - pred)
        })
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    PowerFit {
        exponent: b,
        prefactor: a,
        r_squared: r2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_power_law_recovered() {
        let xs = [10.0f64, 100.0, 1000.0, 10000.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| 3.0 * x.powf(0.5)).collect();
        let fit = fit_power_law(&xs, &ys);
        assert!((fit.exponent - 0.5).abs() < 1e-9);
        assert!((fit.prefactor - 3.0).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn noisy_fit_is_close() {
        let xs = [16.0f64, 64.0, 256.0, 1024.0, 4096.0];
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x): (usize, &f64)| x.powf(1.0 / 3.0) * (1.0 + 0.05 * i as f64))
            .collect();
        let fit = fit_power_law(&xs, &ys);
        assert!((fit.exponent - 1.0 / 3.0).abs() < 0.05, "{fit:?}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_data() {
        let _ = fit_power_law(&[1.0, 2.0], &[0.0, 1.0]);
    }
}
