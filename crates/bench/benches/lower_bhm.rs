//! E6 bench target: Boolean-Matching instances, the graph reduction, and
//! the index-sketch protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_graph::generators::{BmInstance, BmSide};
use triad_lowerbounds::bhm;

fn bench_lower_bhm(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_lower_bhm");
    group.sample_size(10);
    for &n in &[512usize, 4096] {
        group.bench_with_input(BenchmarkId::new("reduction_graph", n), &n, |b, &n| {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            b.iter(|| {
                let inst = BmInstance::sample(n, BmSide::AllZero, &mut rng);
                inst.reduction_graph().edge_count()
            });
        });
        group.bench_with_input(BenchmarkId::new("index_sketch", n), &n, |b, &n| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            let inst = BmInstance::sample(n, BmSide::AllOne, &mut rng);
            let budget = 2 * (n as f64).sqrt() as usize;
            b.iter(|| bhm::index_sketch_attempt(&inst, budget, &mut rng).bits);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lower_bhm);
criterion_main!(benches);
