//! E14 bench target: the one-pass triangle-edge detector and the
//! streaming → one-way reduction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_comm::streaming::{run_stream, stream_as_one_way};
use triad_comm::SharedRandomness;
use triad_graph::generators::TripartiteMu;
use triad_lowerbounds::streaming::TriangleEdgeStream;

fn bench_streaming(c: &mut Criterion) {
    let mut group = c.benchmark_group("e14_streaming");
    group.sample_size(10);
    let mu = TripartiteMu::new(128, 1.2);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let inst = mu.sample(&mut rng);
    for &cap in &[32usize, 256] {
        group.bench_with_input(BenchmarkId::new("single_pass", cap), &cap, |b, &cap| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let alg = TriangleEdgeStream::new(SharedRandomness::new(seed), 1, cap);
                run_stream(alg, 384, inst.graph().edges().iter().copied()).peak_memory_bits
            });
        });
        group.bench_with_input(BenchmarkId::new("as_one_way", cap), &cap, |b, &cap| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let alg = TriangleEdgeStream::new(SharedRandomness::new(seed), 1, cap);
                stream_as_one_way(alg, 384, &inst.player_inputs())
                    .stats
                    .total_bits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_streaming);
criterion_main!(benches);
