//! E4 bench target: the degree-oblivious tester (Algorithm 11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triad_bench::workloads::planted_far;
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};

fn bench_oblivious(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_oblivious");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    for &(n, d) in &[(4000usize, 8.0f64), (4096, 128.0)] {
        let w = planted_far(n, d, 0.2, 6, 13);
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::Oblivious);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_d{d}")),
            &w,
            |b, w| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    tester
                        .run(&w.graph, &w.partition, seed)
                        .unwrap()
                        .stats
                        .total_bits
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_oblivious);
criterion_main!(benches);
