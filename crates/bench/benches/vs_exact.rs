//! E7 bench target: the exact send-everything baseline vs the testers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triad_bench::workloads::planted_far;
use triad_protocols::baseline::run_send_everything;
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};

fn bench_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_vs_exact");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    let w = planted_far(8000, 8.0, 0.2, 6, 17);
    group.bench_with_input(BenchmarkId::from_parameter("exact"), &w, |b, w| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            run_send_everything(&w.graph, &w.partition, seed)
                .unwrap()
                .stats
                .total_bits
        });
    });
    let tester = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: w.d });
    group.bench_with_input(BenchmarkId::from_parameter("alg_low"), &w, |b, w| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            tester
                .run(&w.graph, &w.partition, seed)
                .unwrap()
                .stats
                .total_bits
        });
    });
    group.finish();
}

criterion_group!(benches, bench_vs_exact);
criterion_main!(benches);
