//! E1 bench target: the unrestricted tester (Algorithm 6) end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triad_bench::workloads::planted_far;
use triad_protocols::{Tuning, UnrestrictedTester};

fn bench_unrestricted(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_unrestricted");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    for &n in &[1000usize, 4000, 16000] {
        let w = planted_far(n, 8.0, 0.2, 6, 7);
        let tester = UnrestrictedTester::new(tuning);
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                tester
                    .run(&w.graph, &w.partition, seed)
                    .unwrap()
                    .stats
                    .total_bits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_unrestricted);
criterion_main!(benches);
