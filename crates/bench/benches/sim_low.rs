//! E2 bench target: AlgLow (Algorithm 8), one round at `d = O(√n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triad_bench::workloads::planted_far;
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};

fn bench_sim_low(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_sim_low");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    for &n in &[1000usize, 8000, 64000] {
        let w = planted_far(n, 8.0, 0.2, 6, 3);
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::Low { avg_degree: w.d });
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                tester
                    .run(&w.graph, &w.partition, seed)
                    .unwrap()
                    .stats
                    .total_bits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_low);
criterion_main!(benches);
