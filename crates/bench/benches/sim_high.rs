//! E3 bench target: AlgHigh (Algorithm 7), one round at `d = Ω(√n)`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use triad_bench::workloads::planted_far;
use triad_protocols::{SimProtocolKind, SimultaneousTester, Tuning};

fn bench_sim_high(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_sim_high");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    let n = 4096usize;
    for &exp in &[0.5f64, 0.65, 0.8] {
        let d = (n as f64).powf(exp);
        let w = planted_far(n, d, 0.2, 6, 5);
        let tester = SimultaneousTester::new(tuning, SimProtocolKind::High { avg_degree: w.d });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("d=n^{exp}")),
            &w,
            |b, w| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    tester
                        .run(&w.graph, &w.partition, seed)
                        .unwrap()
                        .stats
                        .total_bits
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sim_high);
criterion_main!(benches);
