//! E15 bench target: the CONGEST simulator under the probe tester and
//! the distributed counter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_congest::{counting, network::Network, triangle::TriangleTester};
use triad_graph::generators::far_graph;

fn bench_congest(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_congest");
    group.sample_size(10);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    for &n in &[1000usize, 4000] {
        let g = far_graph(n, 8.0, 0.2, &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("tester", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                Network::new(g, seed)
                    .run_until(&TriangleTester::new(), 50)
                    .rounds
            });
        });
        group.bench_with_input(BenchmarkId::new("counter_20it", n), &g, |b, g| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                counting::estimate_triangles(g, 20, seed).estimate
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_congest);
criterion_main!(benches);
