//! E8 bench target: building blocks — degree approximation and unbiased
//! random edges.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_comm::{CostModel, Runtime, SharedRandomness};
use triad_graph::partition::with_duplication;
use triad_graph::{Edge, GraphBuilder, VertexId};
use triad_protocols::blocks::{approx_degree, random_edge};
use triad_protocols::Tuning;

fn bench_blocks(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_blocks");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    let n = 100_000;
    for &deg in &[512usize, 32768] {
        let mut b = GraphBuilder::new(n);
        for i in 1..=deg {
            b.add_edge(Edge::new(VertexId(0), VertexId(i as u32)));
        }
        let g = b.build();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let parts = with_duplication(&g, 6, 0.5, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("approx_degree", deg),
            &parts,
            |bch, parts| {
                let mut seed = 0u64;
                bch.iter(|| {
                    seed += 1;
                    let mut rt = Runtime::local(
                        n,
                        parts.shares(),
                        SharedRandomness::new(seed),
                        CostModel::Coordinator,
                    );
                    approx_degree(&mut rt, VertexId(0), &tuning).value
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("random_edge", deg),
            &parts,
            |bch, parts| {
                let mut seed = 0u64;
                bch.iter(|| {
                    seed += 1;
                    let mut rt = Runtime::local(
                        n,
                        parts.shares(),
                        SharedRandomness::new(seed),
                        CostModel::Coordinator,
                    );
                    random_edge(&mut rt)
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_blocks);
criterion_main!(benches);
