//! E5/E11 bench target: the μ distribution — sampling, farness
//! certification, and budget-limited triangle-edge attempts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_graph::generators::TripartiteMu;
use triad_graph::triangles;
use triad_lowerbounds::adversary;

fn bench_lower_mu(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_lower_mu");
    group.sample_size(10);
    let mu = TripartiteMu::new(128, 1.2);
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let inst = mu.sample(&mut rng);
    group.bench_function("sample_mu_128", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| mu.sample(&mut rng).graph().edge_count())
    });
    group.bench_function("greedy_packing", |b| {
        b.iter(|| triangles::greedy_triangle_packing(inst.graph()).len())
    });
    for &budget in &[32usize, 256] {
        group.bench_with_input(
            BenchmarkId::new("one_way_vee", budget),
            &budget,
            |b, &budget| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    adversary::one_way_vee_attempt(&inst, budget, seed)
                        .stats
                        .total_bits
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lower_mu);
criterion_main!(benches);
