//! E10 bench target: the same protocol under different charging models
//! and partition regimes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_comm::CostModel;
use triad_graph::generators::far_graph;
use triad_graph::partition::{random_disjoint, with_duplication};
use triad_protocols::{Tuning, UnrestrictedTester};

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_variants");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let g = far_graph(4000, 8.0, 0.2, &mut rng).unwrap();
    let disjoint = random_disjoint(&g, 8, &mut rng);
    let duplicated = with_duplication(&g, 8, 0.5, &mut rng);
    for (name, parts, model) in [
        ("coordinator_disjoint", &disjoint, CostModel::Coordinator),
        (
            "coordinator_duplicated",
            &duplicated,
            CostModel::Coordinator,
        ),
        ("blackboard_duplicated", &duplicated, CostModel::Blackboard),
    ] {
        let tester = UnrestrictedTester::new(tuning).with_cost_model(model);
        group.bench_with_input(BenchmarkId::from_parameter(name), parts, |b, parts| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                tester.run(&g, parts, seed).unwrap().stats.total_bits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variants);
criterion_main!(benches);
