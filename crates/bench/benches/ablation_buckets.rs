//! E9 bench target: bucketed full-vertex search on the clique-plus-path
//! adversary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_bench::workloads::clique_plus_path;
use triad_graph::partition::random_disjoint;
use triad_protocols::{Tuning, UnrestrictedTester};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_ablation_buckets");
    group.sample_size(10);
    let tuning = Tuning::practical(0.25);
    for &n in &[4000usize, 16000] {
        let g = clique_plus_path(n, 18);
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let parts = random_disjoint(&g, 4, &mut rng);
        let tester = UnrestrictedTester::new(tuning);
        group.bench_with_input(BenchmarkId::from_parameter(n), &parts, |b, parts| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                tester
                    .run(&g, parts, seed)
                    .unwrap()
                    .outcome
                    .found_triangle()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
