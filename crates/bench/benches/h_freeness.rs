//! E13 bench target: one-round H-freeness testing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use triad_graph::generators::planted_copies;
use triad_graph::partition::random_disjoint;
use triad_graph::subgraphs::Pattern;
use triad_protocols::subgraphs::run_h_freeness;
use triad_protocols::Tuning;

fn bench_h_freeness(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_h_freeness");
    group.sample_size(10);
    let tuning = Tuning::practical(0.2);
    let n = 2000;
    for (name, pattern, copies) in [
        ("K3", Pattern::triangle(), 260),
        ("K4", Pattern::clique(4), 200),
        ("C5", Pattern::cycle(5), 160),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let g = planted_copies(n, &pattern, copies, n / 8, &mut rng).unwrap();
        let parts = random_disjoint(&g, 5, &mut rng);
        let d = g.average_degree();
        group.bench_with_input(BenchmarkId::from_parameter(name), &parts, |b, parts| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                run_h_freeness(tuning, pattern.clone(), &g, parts, d, seed)
                    .unwrap()
                    .stats
                    .total_bits
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_h_freeness);
criterion_main!(benches);
