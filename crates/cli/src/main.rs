//! `triad` — generate, partition, inspect and test graphs from the
//! command line.
//!
//! ```text
//! triad gen --kind far --n 2000 --d 8 --eps 0.2 --seed 1 --out g.el
//! triad partition --graph g.el --k 6 --scheme random --seed 2 --out shares/p
//! triad info --graph g.el
//! triad test --graph g.el --shares shares/p --protocol low --eps 0.2 --seed 3
//! ```

use triad_cli::{run, CliError};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => print!("{output}"),
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{}", triad_cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
